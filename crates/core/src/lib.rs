//! # wanpred
//!
//! A production-quality Rust reproduction of *Vazhkudai, Schopf & Foster,
//! "Predicting the Performance of Wide Area Data Transfers" (IPPS 2002)*:
//! log-based prediction of wide-area bulk-transfer throughput for replica
//! selection in Data Grids.
//!
//! This facade crate re-exports the whole workspace and adds the
//! [`framework::PredictiveFramework`] convenience API wiring the paper's
//! three elements — instrumentation, predictors, delivery — into one
//! object.
//!
//! ## Workspace map
//!
//! | crate | role |
//! |-------|------|
//! | [`simnet`] | fluid-flow discrete-event WAN simulator (the testbed substrate) |
//! | [`storage`] | disk/contention/volume/cache models |
//! | [`logfmt`] | ULM transfer logs (Figure 3 schema) |
//! | [`gridftp`] | the instrumented transfer service |
//! | [`predict`] | the 30-predictor suite and evaluation framework |
//! | [`nws`] | NWS-style probes and forecasters (Figures 1–2 comparison) |
//! | [`infod`] | MDS-like GRIS/GIIS delivery infrastructure |
//! | [`replica`] | prediction-driven replica selection |
//! | [`testbed`] | ANL/ISI/LBL campaigns and per-figure computation |
//!
//! ## Quickstart
//!
//! ```
//! use wanpred_core::prelude::*;
//!
//! // Simulate a short measurement campaign on the paper's testbed...
//! let cfg = CampaignConfig {
//!     seed: MasterSeed(7),
//!     duration: SimDuration::from_days(2),
//!     probes: false,
//!     ..CampaignConfig::august(7)
//! };
//! let result = run_campaign(&cfg);
//!
//! // ...and evaluate the paper's predictor suite over the LBL log.
//! let (reports, _suite) = evaluate_log(result.log(Pair::LblAnl), EvalOptions::default());
//! assert_eq!(reports.len(), 30);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod framework;

pub use framework::{evaluate_log, PredictiveFramework, DEFAULT_REGISTRATION_TTL};

pub use wanpred_gridftp as gridftp;
pub use wanpred_infod as infod;
pub use wanpred_logfmt as logfmt;
pub use wanpred_nws as nws;
pub use wanpred_predict as predict;
pub use wanpred_replica as replica;
pub use wanpred_simnet as simnet;
pub use wanpred_storage as storage;
pub use wanpred_testbed as testbed;

/// One-stop imports for applications.
pub mod prelude {
    pub use crate::framework::{evaluate_log, PredictiveFramework};
    pub use wanpred_gridftp::{
        CompletedTransfer, ServerConfig, TransferKind, TransferManager, TransferRequest,
    };
    pub use wanpred_infod::{parse_filter, Dn, Entry, Giis, Gris, Registration, Schema};
    pub use wanpred_logfmt::{Operation, TransferLog, TransferRecord, TransferRecordBuilder};
    pub use wanpred_predict::prelude::*;
    pub use wanpred_replica::{
        Broker, GiisPerfSource, PhysicalReplica, ReplicaCatalog, Selection, SelectionPolicy,
    };
    pub use wanpred_simnet::prelude::*;
    pub use wanpred_storage::{DiskSpec, FileCatalog, StorageServer};
    pub use wanpred_testbed::{
        build_testbed, fig01_02, fig07, fig08_11, fig12_13, fig14_21, run_campaign, CampaignConfig,
        CampaignResult, Pair, Table, WorkloadConfig,
    };
}
