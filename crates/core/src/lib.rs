//! # wanpred
//!
//! A production-quality Rust reproduction of *Vazhkudai, Schopf & Foster,
//! "Predicting the Performance of Wide Area Data Transfers" (IPPS 2002)*:
//! log-based prediction of wide-area bulk-transfer throughput for replica
//! selection in Data Grids.
//!
//! This facade crate re-exports the whole workspace and adds the
//! [`framework::PredictiveFramework`] convenience API wiring the paper's
//! three elements — instrumentation, predictors, delivery — into one
//! object.
//!
//! ## Workspace map
//!
//! | crate | role |
//! |-------|------|
//! | [`simnet`] | fluid-flow discrete-event WAN simulator (the testbed substrate) |
//! | [`storage`] | disk/contention/volume/cache models |
//! | [`logfmt`] | ULM transfer logs (Figure 3 schema) |
//! | [`gridftp`] | the instrumented transfer service |
//! | [`predict`] | the 30-predictor suite and evaluation framework |
//! | [`nws`] | NWS-style probes and forecasters (Figures 1–2 comparison) |
//! | [`infod`] | MDS-like GRIS/GIIS delivery infrastructure |
//! | [`replica`] | prediction-driven replica selection |
//! | [`testbed`] | ANL/ISI/LBL campaigns and per-figure computation |
//!
//! ## Quickstart
//!
//! ```
//! use wanpred_core::prelude::*;
//!
//! // Simulate a short measurement campaign on the paper's testbed,
//! // with the deterministic metrics pipeline switched on...
//! let cfg = CampaignConfig::builder(7)
//!     .duration_days(2)
//!     .probes(false)
//!     .obs(ObsSink::enabled())
//!     .build();
//! let result = run_campaign(&cfg);
//!
//! // ...evaluate the paper's predictor suite over the LBL log...
//! let eval = Evaluation::builder().build();
//! let reports = eval.run_log(result.log(Pair::LblAnl));
//! assert_eq!(reports.len(), 30);
//!
//! // ...and dump the campaign's metrics snapshot.
//! let metrics = result.metrics.as_ref().expect("obs was enabled");
//! assert!(metrics.counter("campaign.transfers") > 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod framework;

pub use framework::{PredictiveFramework, DEFAULT_REGISTRATION_TTL};

pub use wanpred_gridftp as gridftp;
pub use wanpred_infod as infod;
pub use wanpred_logfmt as logfmt;
pub use wanpred_nws as nws;
pub use wanpred_obs as obs;
pub use wanpred_predict as predict;
pub use wanpred_replica as replica;
pub use wanpred_simnet as simnet;
pub use wanpred_storage as storage;
pub use wanpred_testbed as testbed;

/// One-stop imports for applications.
pub mod prelude {
    pub use crate::framework::PredictiveFramework;
    pub use wanpred_gridftp::{
        CompletedTransfer, ServerConfig, TransferKind, TransferManager, TransferRequest,
    };
    pub use wanpred_infod::{
        parse_filter, Dn, Entry, Giis, Gris, InquiryRequest, InquiryResponse, InquiryService,
        Registration, Schema, ServeConfig, ShardedServer,
    };
    pub use wanpred_logfmt::{Operation, TransferLog, TransferRecord, TransferRecordBuilder};
    pub use wanpred_obs::{ObsSink, Snapshot};
    pub use wanpred_predict::prelude::*;
    pub use wanpred_replica::{
        Broker, CoallocEvent, CoallocPolicy, CoallocRequest, CoallocSource, Coallocator,
        CompletedCoalloc, GiisPerfSource, NoPerfInfo, PhysicalReplica, ReplicaCatalog, Selection,
        SelectionPolicy, TopKSelection,
    };
    pub use wanpred_simnet::prelude::*;
    pub use wanpred_storage::{DiskSpec, FileCatalog, StorageServer};
    pub use wanpred_testbed::{
        build_testbed, fig01_02, fig07, fig08_11, fig12_13, fig14_21, run_campaign,
        CampaignBuilder, CampaignConfig, CampaignResult, CoallocSummary, Pair, Table,
        WorkloadConfig,
    };
}
