//! The end-to-end predictive framework: the paper's three elements wired
//! together behind one API.
//!
//! 1. **Instrumentation** — transfer logs come from `wanpred-gridftp`
//!    servers (or from disk via `wanpred-logfmt`).
//! 2. **Prediction** — the Figure 4 predictor suite from
//!    `wanpred-predict`.
//! 3. **Delivery** — logs are digested by per-server information
//!    providers into a GRIS each, soft-state-registered into one GIIS,
//!    and consumed by the replica broker.
//!
//! [`PredictiveFramework`] owns the GIIS and the replica catalog; callers
//! publish server logs and ask replica-selection questions.

use std::sync::Arc;

use wanpred_infod::{Dn, Giis, GridFtpPerfProvider, Gris, ProviderConfig, Registration};
use wanpred_logfmt::TransferLog;
use wanpred_replica::{
    Broker, GiisPerfSource, PhysicalReplica, ReplicaCatalog, ReplicaError, Selection,
    SelectionPolicy,
};

/// Default soft-state registration lifetime for published servers.
pub const DEFAULT_REGISTRATION_TTL: u64 = 600;

/// The assembled framework.
pub struct PredictiveFramework {
    giis: Arc<Giis>,
    catalog: ReplicaCatalog,
    registration_ttl: u64,
}

impl Default for PredictiveFramework {
    fn default() -> Self {
        Self::new()
    }
}

impl PredictiveFramework {
    /// An empty framework with a fresh GIIS.
    pub fn new() -> Self {
        PredictiveFramework {
            giis: Arc::new(Giis::new("wanpred")),
            catalog: ReplicaCatalog::new(),
            registration_ttl: DEFAULT_REGISTRATION_TTL,
        }
    }

    /// Handle to the underlying GIIS (for direct
    /// [`InquiryService`](wanpred_infod::InquiryService) inquiries —
    /// the GIIS synchronizes internally, no wrapping lock needed).
    pub fn giis(&self) -> Arc<Giis> {
        self.giis.clone()
    }

    /// The replica catalog.
    pub fn catalog(&self) -> &ReplicaCatalog {
        &self.catalog
    }

    /// Mutable replica catalog access.
    pub fn catalog_mut(&mut self) -> &mut ReplicaCatalog {
        &mut self.catalog
    }

    /// Publish a server's transfer log: builds the information provider
    /// and a GRIS for the site, and registers it with the GIIS at
    /// `now_unix`. Re-publishing the same host replaces (renews) its
    /// registration.
    pub fn publish_server_log(
        &mut self,
        host: &str,
        address: &str,
        log: TransferLog,
        now_unix: u64,
    ) {
        let provider = GridFtpPerfProvider::from_snapshot(ProviderConfig::new(host, address), log);
        let mut gris = Gris::new(Dn::parse("o=grid").expect("constant dn"));
        gris.register_provider(Box::new(provider));
        self.giis.register_service(
            Registration {
                id: host.to_string(),
                ttl_secs: self.registration_ttl,
            },
            Arc::new(gris),
            now_unix,
        );
    }

    /// Renew a published server's registration (soft-state keep-alive).
    pub fn renew_server(&mut self, host: &str, now_unix: u64) -> bool {
        self.giis.renew(host, now_unix)
    }

    /// Register a replica of a logical file.
    pub fn register_replica(
        &mut self,
        lfn: &str,
        replica: PhysicalReplica,
    ) -> Result<(), ReplicaError> {
        self.catalog.register(lfn, replica)
    }

    /// Select the best replica of `lfn` for a client, using the
    /// prediction-driven policy.
    pub fn select_replica(
        &mut self,
        client_addr: &str,
        lfn: &str,
        now_unix: u64,
    ) -> Result<Selection, ReplicaError> {
        self.select_replica_with(
            client_addr,
            lfn,
            &mut SelectionPolicy::predicted_bandwidth(),
            now_unix,
        )
    }

    /// Select under an explicit policy (baselines for comparisons).
    pub fn select_replica_with(
        &mut self,
        client_addr: &str,
        lfn: &str,
        policy: &mut SelectionPolicy,
        now_unix: u64,
    ) -> Result<Selection, ReplicaError> {
        let replicas = self.catalog.lookup(lfn)?.to_vec();
        let mut broker = Broker::new(GiisPerfSource::new(self.giis.clone()));
        broker.select(client_addr, &replicas, policy, now_unix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wanpred_logfmt::{Operation, TransferRecordBuilder};
    use wanpred_predict::prelude::*;

    fn log_at(host: &str, kbs: f64, n: usize) -> TransferLog {
        let mut log = TransferLog::new();
        for i in 0..n as u64 {
            let secs = 102_400_000.0 / (kbs * 1_000.0);
            log.append(
                TransferRecordBuilder::new()
                    .source("140.221.65.69")
                    .host(host)
                    .file_name("/home/ftp/vazhkuda/100MB")
                    .file_size(102_400_000)
                    .volume("/home/ftp")
                    .start_unix(1_000_000 + i * 600)
                    .end_unix(1_000_000 + i * 600 + secs as u64)
                    .total_time_s(secs)
                    .streams(8)
                    .tcp_buffer(1_000_000)
                    .operation(Operation::Read)
                    .build()
                    .unwrap(),
            );
        }
        log
    }

    fn replica(host: &str) -> PhysicalReplica {
        PhysicalReplica {
            host: host.into(),
            path: "/home/ftp/vazhkuda/100MB".into(),
            size: 102_400_000,
        }
    }

    #[test]
    fn publish_and_select_end_to_end() {
        let mut fw = PredictiveFramework::new();
        fw.publish_server_log(
            "dpsslx04.lbl.gov",
            "131.243.2.11",
            log_at("dpsslx04.lbl.gov", 8_000.0, 20),
            2_000_000,
        );
        fw.publish_server_log(
            "jet.isi.edu",
            "128.9.160.11",
            log_at("jet.isi.edu", 3_000.0, 20),
            2_000_000,
        );
        fw.register_replica("lfn://x", replica("dpsslx04.lbl.gov"))
            .unwrap();
        fw.register_replica("lfn://x", replica("jet.isi.edu"))
            .unwrap();
        let sel = fw
            .select_replica("140.221.65.69", "lfn://x", 2_000_000)
            .unwrap();
        assert_eq!(sel.replica().host, "dpsslx04.lbl.gov");
    }

    #[test]
    fn unknown_lfn_is_an_error() {
        let mut fw = PredictiveFramework::new();
        assert!(matches!(
            fw.select_replica("x", "lfn://nope", 0),
            Err(ReplicaError::UnknownLfn(_))
        ));
    }

    #[test]
    fn registrations_expire_without_renewal() {
        let mut fw = PredictiveFramework::new();
        fw.publish_server_log("h1.a.b", "1.1.1.1", log_at("h1.a.b", 9_000.0, 20), 0);
        fw.register_replica("lfn://x", replica("h1.a.b")).unwrap();
        // Within ttl: informed choice.
        let sel = fw.select_replica("140.221.65.69", "lfn://x", 100).unwrap();
        assert!(sel.scores[0].predicted_kbs.is_some());
        // Past ttl without renewal: no information, but still a choice.
        let sel = fw
            .select_replica("140.221.65.69", "lfn://x", DEFAULT_REGISTRATION_TTL + 1)
            .unwrap();
        assert!(sel.scores[0].predicted_kbs.is_none());
    }

    #[test]
    fn renewal_keeps_information_alive() {
        let mut fw = PredictiveFramework::new();
        fw.publish_server_log("h1.a.b", "1.1.1.1", log_at("h1.a.b", 9_000.0, 20), 0);
        fw.register_replica("lfn://x", replica("h1.a.b")).unwrap();
        assert!(fw.renew_server("h1.a.b", 500));
        let sel = fw.select_replica("140.221.65.69", "lfn://x", 900).unwrap();
        assert!(sel.scores[0].predicted_kbs.is_some());
        assert!(!fw.renew_server("unknown.host", 0));
    }

    #[test]
    fn default_evaluation_runs_the_thirty_suite() {
        let log = log_at("h", 5_000.0, 40);
        let eval = Evaluation::builder().build();
        let reports = eval.run_log(&log);
        assert_eq!(eval.predictors().len(), 30);
        assert_eq!(reports.len(), 30);
        // Constant series: every answering predictor is exact.
        for r in &reports {
            if let Some(m) = r.mape() {
                assert!(m < 1e-9, "{} {m}", r.name);
            }
        }
    }
}
