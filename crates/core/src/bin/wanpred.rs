//! `wanpred` — command-line interface to the predictive framework.
//!
//! ```text
//! wanpred campaign --month august --seed 42 --days 14 --out DIR
//!     simulate a measurement campaign; writes <pair>.ulm logs and
//!     <pair>-probes.csv probe series into DIR
//! wanpred evaluate --log FILE [--training 15] [--class 10mb|100mb|500mb|1gb]
//!                  [--predictor NAME ...]
//!     replay a predictor suite over a ULM log, print error tables; the
//!     default suite is the paper's 30 variants, or name predictors
//!     explicitly (paper convention: AVG25, MED5, AR10d, LV, AVG15hr+C)
//! wanpred predict --log FILE --size-mb N [--now UNIX]
//!     one prediction for the next transfer of the given size
//! wanpred provider --log FILE --host NAME --address IP [--now UNIX]
//!     print the information provider's LDIF for a log
//! wanpred select --replica FILE:HOST ... --size-mb N --client ADDR [--now UNIX]
//!     broker decision across several servers' logs
//! ```
//!
//! Every subcommand works on the paper's ULM `Keyword=Value` log format
//! (what the `campaign` subcommand and the instrumented servers emit).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use wanpred_core::infod::{to_ldif_document, GridFtpPerfProvider, ProviderConfig};
use wanpred_core::prelude::*;
use wanpred_core::testbed::Table;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "campaign" => cmd_campaign(rest),
        "evaluate" => cmd_evaluate(rest),
        "predict" => cmd_predict(rest),
        "provider" => cmd_provider(rest),
        "select" => cmd_select(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("wanpred: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  wanpred campaign --month august|december [--seed N] [--days N] [--out DIR]
  wanpred evaluate --log FILE [--training N] [--class 10mb|100mb|500mb|1gb]
                   [--predictor NAME ...]
  wanpred predict  --log FILE --size-mb N [--now UNIX]
  wanpred provider --log FILE --host NAME --address IP [--now UNIX]
  wanpred select   --replica FILE:HOST [--replica FILE:HOST ...]
                   --size-mb N --client ADDR [--now UNIX]";

/// Minimal `--key value` argument map with flag support.
struct Args<'a> {
    raw: &'a [String],
}

impl<'a> Args<'a> {
    fn new(raw: &'a [String]) -> Self {
        Args { raw }
    }

    fn get(&self, key: &str) -> Option<&'a str> {
        self.raw
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.raw.get(i + 1))
            .map(String::as_str)
    }

    fn get_all(&self, key: &str) -> Vec<&'a str> {
        let mut out = Vec::new();
        let mut i = 0;
        while i + 1 < self.raw.len() {
            if self.raw[i] == key {
                out.push(self.raw[i + 1].as_str());
                i += 2;
            } else {
                i += 1;
            }
        }
        out
    }

    fn require(&self, key: &str) -> Result<&'a str, String> {
        self.get(key).ok_or_else(|| format!("missing {key}"))
    }

    fn parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad value for {key}: {v}")),
        }
    }
}

fn load_log(path: &str) -> Result<TransferLog, String> {
    TransferLog::load_ulm(Path::new(path)).map_err(|e| format!("loading {path}: {e}"))
}

fn default_now(log: &TransferLog) -> u64 {
    log.records().iter().map(|r| r.end_unix).max().unwrap_or(0) + 1
}

fn cmd_campaign(raw: &[String]) -> Result<(), String> {
    let args = Args::new(raw);
    let seed: u64 = args.parse("--seed", 42)?;
    let days: u64 = args.parse("--days", 14)?;
    let out: PathBuf = PathBuf::from(args.get("--out").unwrap_or("."));
    let mut cfg = match args.get("--month").unwrap_or("august") {
        "august" => CampaignConfig::august(seed),
        "december" => CampaignConfig::december(seed),
        other => return Err(format!("unknown month {other:?} (august|december)")),
    };
    cfg.duration = SimDuration::from_days(days);

    eprintln!("simulating {days}-day campaign (seed {seed})...");
    let result = run_campaign(&cfg);
    std::fs::create_dir_all(&out).map_err(|e| format!("creating {}: {e}", out.display()))?;
    for pair in Pair::ALL {
        let name = pair.label().to_ascii_lowercase();
        let log_path = out.join(format!("{name}.ulm"));
        result
            .log(pair)
            .save_ulm(&log_path)
            .map_err(|e| format!("writing {}: {e}", log_path.display()))?;
        let probes_path = out.join(format!("{name}-probes.csv"));
        let mut csv = String::from("unix,mbps\n");
        for p in result.probes(pair) {
            csv.push_str(&format!(
                "{},{:.4}\n",
                result.epoch_unix + p.at.as_secs(),
                p.bandwidth_mbs()
            ));
        }
        std::fs::write(&probes_path, csv)
            .map_err(|e| format!("writing {}: {e}", probes_path.display()))?;
        println!(
            "{}: {} transfers -> {}, {} probes -> {}",
            pair.label(),
            result.log(pair).len(),
            log_path.display(),
            result.probes(pair).len(),
            probes_path.display()
        );
    }
    Ok(())
}

fn cmd_evaluate(raw: &[String]) -> Result<(), String> {
    let args = Args::new(raw);
    let log = load_log(args.require("--log")?)?;
    let training: usize = args.parse("--training", 15)?;
    let class = match args.get("--class") {
        None => None,
        Some(label) => {
            Some(SizeClass::parse_label(label).ok_or_else(|| format!("unknown class {label:?}"))?)
        }
    };
    let names = args.get_all("--predictor");
    let suite = if names.is_empty() {
        full_suite()
    } else {
        names
            .iter()
            .map(|n| {
                predictor_by_name(n)
                    .ok_or_else(|| format!("unknown predictor {n:?} (try AVG25, AR10d, LV+C)"))
            })
            .collect::<Result<Vec<_>, String>>()?
    };
    let eval = Evaluation::builder()
        .suite(suite)
        .training(training)
        .build();
    let reports = eval.run_log(&log);
    let title = match class {
        Some(c) => format!("{} transfers, {} class", log.len(), c.label()),
        None => format!("{} transfers, all classes", log.len()),
    };
    let mut table = Table::new(title).headers([
        "predictor",
        "MAPE %",
        "median err %",
        "p90 err %",
        "answered",
    ]);
    for (r, p) in reports.iter().zip(eval.predictors()) {
        let (mape, p50, p90, n) = match class {
            Some(c) => (
                r.mape_for_class(c),
                r.error_percentile_for_class(c, 50.0),
                r.error_percentile_for_class(c, 90.0),
                r.count_for_class(c),
            ),
            None => (
                r.mape(),
                r.error_percentile(50.0),
                r.error_percentile(90.0),
                r.outcomes.len(),
            ),
        };
        let fmt = |v: Option<f64>| v.map(|m| format!("{m:.1}")).unwrap_or("-".into());
        table.row([
            p.name().to_string(),
            fmt(mape),
            fmt(p50),
            fmt(p90),
            n.to_string(),
        ]);
    }
    println!("{}", table.render());
    Ok(())
}

fn cmd_predict(raw: &[String]) -> Result<(), String> {
    let args = Args::new(raw);
    let log = load_log(args.require("--log")?)?;
    let size_mb: u64 = args
        .require("--size-mb")?
        .parse()
        .map_err(|_| "bad --size-mb".to_string())?;
    let size = size_mb * PAPER_MB;
    let now: u64 = args.parse("--now", default_now(&log))?;

    let mut obs = observations_from_log(&log);
    sort_by_time(&mut obs);
    let class = SizeClass::of_bytes(size);
    println!(
        "history: {} transfers ({} in the {} class)",
        obs.len(),
        filter_class(&obs, class).len(),
        class.label()
    );
    let mut table = Table::new(format!("predictions for a {size_mb} MB transfer"))
        .headers(["predictor", "KB/s"]);
    for p in full_suite() {
        if let Some(v) = p.predict(&obs, now, size) {
            table.row([p.name().to_string(), format!("{v:.0}")]);
        }
    }
    println!("{}", table.render());

    let mut selector = DynamicSelector::new(full_suite(), 15);
    for o in &obs {
        selector.observe(*o);
    }
    if let Some((name, v)) = selector.predict(now, size) {
        println!("dynamic selection: {name} -> {v:.0} KB/s");
    }
    Ok(())
}

fn cmd_provider(raw: &[String]) -> Result<(), String> {
    let args = Args::new(raw);
    let log = load_log(args.require("--log")?)?;
    let host = args.require("--host")?;
    let address = args.require("--address")?;
    let now: u64 = args.parse("--now", default_now(&log))?;
    let provider = GridFtpPerfProvider::from_snapshot(ProviderConfig::new(host, address), log);
    print!("{}", to_ldif_document(&provider.build_entries(now)));
    Ok(())
}

fn cmd_select(raw: &[String]) -> Result<(), String> {
    let args = Args::new(raw);
    let specs = args.get_all("--replica");
    if specs.is_empty() {
        return Err("need at least one --replica FILE:HOST".to_string());
    }
    let size_mb: u64 = args
        .require("--size-mb")?
        .parse()
        .map_err(|_| "bad --size-mb".to_string())?;
    let size = size_mb * PAPER_MB;
    let client = args.require("--client")?;

    let mut fw = PredictiveFramework::new();
    let mut now = 0u64;
    for spec in &specs {
        let (file, host) = spec
            .rsplit_once(':')
            .ok_or_else(|| format!("--replica must be FILE:HOST, got {spec:?}"))?;
        let log = load_log(file)?;
        now = now.max(default_now(&log));
        fw.publish_server_log(host, host, log, 0);
        fw.register_replica(
            "lfn://cli",
            PhysicalReplica {
                host: host.to_string(),
                path: format!("/data/{size_mb}MB"),
                size,
            },
        )
        .map_err(|e| e.to_string())?;
    }
    let now: u64 = args.parse("--now", now)?;
    // Registration happened at 0; refresh so the soft state is live at
    // the query time.
    for spec in &specs {
        let (_, host) = spec.rsplit_once(':').expect("validated above");
        fw.renew_server(host, now);
    }
    let sel = fw
        .select_replica(client, "lfn://cli", now)
        .map_err(|e| e.to_string())?;
    for (i, s) in sel.scores.iter().enumerate() {
        let marker = if i == sel.chosen { "-> " } else { "   " };
        println!(
            "{marker}{:<24} {}",
            s.replica.host,
            s.predicted_kbs
                .map(|p| format!("{p:.0} KB/s predicted"))
                .unwrap_or_else(|| "no information".to_string())
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::Args;

    fn v(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn args_get_and_require() {
        let raw = v(&["--log", "a.ulm", "--size-mb", "100"]);
        let a = Args::new(&raw);
        assert_eq!(a.get("--log"), Some("a.ulm"));
        assert_eq!(a.require("--size-mb").unwrap(), "100");
        assert!(a.require("--client").is_err());
    }

    #[test]
    fn args_parse_with_default() {
        let raw = v(&["--days", "7"]);
        let a = Args::new(&raw);
        assert_eq!(a.parse("--days", 14u64).unwrap(), 7);
        assert_eq!(a.parse("--seed", 42u64).unwrap(), 42);
        let raw = v(&["--days", "x"]);
        assert!(Args::new(&raw).parse("--days", 14u64).is_err());
    }

    #[test]
    fn args_get_all_collects_repeats() {
        let raw = v(&["--replica", "a:h1", "--x", "1", "--replica", "b:h2"]);
        let a = Args::new(&raw);
        assert_eq!(a.get_all("--replica"), vec!["a:h1", "b:h2"]);
        assert!(a.get_all("--nope").is_empty());
    }
}
