//! Property tests for predictor invariants.

use proptest::prelude::*;
use wanpred_predict::prelude::*;

fn arb_history() -> impl Strategy<Value = Vec<Observation>> {
    prop::collection::vec((0u64..1_000_000, 0.1f64..1e6, 1u64..2_000_000_000), 1..80).prop_map(
        |mut v| {
            v.sort_by_key(|(t, _, _)| *t);
            v.into_iter()
                .map(|(t, bw, size)| Observation {
                    at_unix: t,
                    bandwidth_kbs: bw,
                    file_size: size,
                    streams: 1,
                    tcp_buffer: 0,
                })
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Mean and median predictions always lie within the range of the
    /// windowed history they saw.
    #[test]
    fn mean_median_bounded_by_history(h in arb_history(), now in 0u64..2_000_000) {
        let lo = h.iter().map(|o| o.bandwidth_kbs).fold(f64::INFINITY, f64::min);
        let hi = h.iter().map(|o| o.bandwidth_kbs).fold(f64::NEG_INFINITY, f64::max);
        for p in [
            MeanPredictor::new(Window::All),
            MeanPredictor::new(Window::LastN(5)),
            MeanPredictor::new(Window::LastSeconds(100_000)),
        ] {
            if let Some(v) = p.predict(&h, now) {
                prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "{} out of [{lo},{hi}]", v);
            }
        }
        for p in [MedianPredictor::new(Window::All), MedianPredictor::new(Window::LastN(15))] {
            if let Some(v) = p.predict(&h, now) {
                prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
            }
        }
    }

    /// Every paper predictor returns a finite positive prediction on any
    /// non-empty positive-valued history (AR included, thanks to the
    /// fallback and clamp).
    #[test]
    fn paper_suite_total_on_positive_history(h in arb_history()) {
        let now = h.last().unwrap().at_unix + 1;
        for p in paper_predictors() {
            if let Some(v) = p.predict(&h, now) {
                prop_assert!(v.is_finite() && v > 0.0, "{} produced {v}", p.name());
            }
        }
        // Predictors with non-temporal windows must answer.
        prop_assert!(LastValue::new().predict(&h, now).is_some());
        prop_assert!(MeanPredictor::new(Window::All).predict(&h, now).is_some());
    }

    /// A classified variant equals its base predictor run on the
    /// class-filtered history.
    #[test]
    fn classified_equals_filtered(h in arb_history(), target_size in 1u64..2_000_000_000) {
        let now = h.last().unwrap().at_unix + 1;
        let class = SizeClass::of_bytes(target_size);
        let filtered = filter_class(&h, class);
        let base = MeanPredictor::new(Window::LastN(5));
        let wrapped = NamedPredictor::new(Box::new(MeanPredictor::new(Window::LastN(5))), true);
        prop_assert_eq!(wrapped.predict(&h, now, target_size), base.predict(&filtered, now));
    }

    /// Replay bookkeeping: answered + declined equals the number of
    /// targets for every predictor.
    #[test]
    fn evaluate_accounts_for_every_target(h in arb_history(), training in 0usize..30) {
        let suite = full_suite();
        let reports = Evaluation::replay(
            &h,
            &suite,
            EvalEngine::Naive,
            EvalOptions { training },
            &wanpred_obs::ObsSink::disabled(),
        );
        let targets = h.len().saturating_sub(training);
        for r in &reports {
            prop_assert_eq!(r.outcomes.len() + r.declined, targets, "{}", &r.name);
        }
    }

    /// Relative tallies: every compared target awards at least one best
    /// and one worst, and percentages are within [0, 100].
    #[test]
    fn relative_percentages_sane(h in arb_history()) {
        let suite = paper_suite(false);
        let rel = relative_performance(&h, &suite, EvalOptions { training: 5 }, None);
        for r in &rel {
            prop_assert!((0.0..=100.0 + 1e-9).contains(&r.best_pct));
            prop_assert!((0.0..=100.0 + 1e-9).contains(&r.worst_pct));
        }
        if rel[0].targets > 0 {
            let sum_best: f64 = rel.iter().map(|r| r.best_pct).sum();
            let sum_worst: f64 = rel.iter().map(|r| r.worst_pct).sum();
            prop_assert!(sum_best >= 100.0 - 1e-6);
            prop_assert!(sum_worst >= 100.0 - 1e-6);
        }
    }

    /// Size classes partition the byte space: exactly one class matches
    /// any size.
    #[test]
    fn size_classes_partition(bytes in any::<u64>()) {
        let matches = SizeClass::ALL
            .iter()
            .filter(|c| {
                let (lo, hi) = c.byte_range();
                bytes >= lo && bytes < hi
            })
            .count();
        // u64::MAX itself falls outside the half-open top range; of_bytes
        // still assigns it to the top class.
        if bytes == u64::MAX {
            prop_assert_eq!(SizeClass::of_bytes(bytes), SizeClass::C1GB);
        } else {
            prop_assert_eq!(matches, 1);
            let (lo, hi) = SizeClass::of_bytes(bytes).byte_range();
            prop_assert!(bytes >= lo && bytes < hi);
        }
    }
}
