//! Differential property test: the incremental replay engine is a
//! drop-in replacement for the naive evaluator.
//!
//! For arbitrary irregular histories — bursty arrival gaps (including
//! gaps that empty every temporal window), mixed and single size
//! classes, occasional zero-bandwidth (dead) transfers — every
//! [`PredictorReport`] from the incremental engine must match the naive
//! oracle's: same answered/declined split per target, and predictions
//! within a 1e-9 relative tolerance (the incremental sums reassociate
//! floating-point additions; medians and count-window means are in
//! fact bit-identical).

use proptest::prelude::*;
use wanpred_obs::ObsSink;
use wanpred_predict::prelude::*;

/// An irregular replay log. Gaps span 1 s to ~11 days, so temporal
/// windows (5 h … 10 d) are sometimes saturated and sometimes empty;
/// roughly one bandwidth in twelve is a dead transfer (0 KB/s). Stream
/// counts and TCP buffers vary (or are held constant when
/// `single_class` pins everything), so the regression covariates see
/// both well-posed and degenerate designs.
fn arb_series() -> impl Strategy<Value = Vec<Observation>> {
    (
        prop::collection::vec(
            (
                1u64..1_000_000,
                0.1f64..20_000.0,
                0usize..7,
                0u8..12,
                1u32..9,
                0usize..4,
            ),
            0..120,
        ),
        proptest::arbitrary::any::<bool>(),
    )
        .prop_map(|(raw, single_class)| {
            let sizes_mb = [2u64, 25, 100, 150, 400, 750, 1000];
            let buffers = [0u64, 64 * 1024, 1_000_000, 16_000_000];
            let mut t = 1_000_000_000u64;
            raw.into_iter()
                .map(|(gap, bw, size_idx, dead, streams, buf_idx)| {
                    t += gap;
                    Observation {
                        at_unix: t,
                        bandwidth_kbs: if dead == 0 { 0.0 } else { bw },
                        file_size: if single_class {
                            100 * PAPER_MB
                        } else {
                            sizes_mb[size_idx] * PAPER_MB
                        },
                        streams: if single_class { 8 } else { streams },
                        tcp_buffer: if single_class {
                            1_000_000
                        } else {
                            buffers[buf_idx]
                        },
                    }
                })
                .collect()
        })
}

fn assert_close(name: &str, a: f64, b: f64) {
    let tol = 1e-9 * a.abs().max(b.abs()).max(1.0);
    assert!((a - b).abs() <= tol, "{name}: naive {a} vs incremental {b}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn incremental_replay_matches_naive_oracle(series in arb_series(), training in 0usize..25) {
        // The extended suite = the paper's 30 plus the regression
        // family, so the differential oracle also covers the Gram-fit
        // predictors (and their windowed-mean fallback paths).
        let suite = extended_suite();
        let opts = EvalOptions { training };
        let naive =
            Evaluation::replay(&series, &suite, EvalEngine::Naive, opts, &ObsSink::disabled());
        let inc = Evaluation::replay(
            &series,
            &suite,
            EvalEngine::Incremental,
            opts,
            &ObsSink::disabled(),
        );
        prop_assert_eq!(naive.len(), inc.len());
        for (n, i) in naive.iter().zip(&inc) {
            prop_assert_eq!(&n.name, &i.name);
            prop_assert_eq!(n.declined, i.declined, "{} declined", n.name);
            prop_assert_eq!(n.outcomes.len(), i.outcomes.len(), "{} outcomes", n.name);
            for (a, b) in n.outcomes.iter().zip(&i.outcomes) {
                prop_assert_eq!(a.at_unix, b.at_unix, "{}", n.name);
                prop_assert_eq!(a.class, b.class, "{}", n.name);
                prop_assert_eq!(a.measured, b.measured, "{}", n.name);
                assert_close(&n.name, a.predicted, b.predicted);
            }
            // Aggregates agree too (both `None` or both close).
            match (n.mape(), i.mape()) {
                (None, None) => {}
                (Some(x), Some(y)) => assert_close(&n.name, x, y),
                (x, y) => panic!("{} mape mismatch: {:?} vs {:?}", n.name, x, y),
            }
        }
    }
}
