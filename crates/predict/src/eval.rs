//! Replay evaluation of predictors against a transfer log (§6.2).
//!
//! The evaluator walks the observation series in time order. Once the
//! training set (15 values, §6.1) is in the log, every subsequent
//! transfer becomes a prediction target: each predictor sees the history
//! strictly before the target and its absolute percentage error
//! `|measured − predicted| / measured × 100` is recorded, grouped by the
//! target's file-size class. Relative performance (Figures 14–21) tallies
//! how often each predictor was the best or the worst on a transfer.

use serde::{Deserialize, Serialize};

use crate::classify::SizeClass;
use crate::observation::Observation;
use crate::registry::NamedPredictor;
use crate::stats;

/// Evaluation options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvalOptions {
    /// Number of log values that must exist before predictions begin
    /// (the paper's 15-value training set — counted over the *whole* log,
    /// not per class, exactly as §6.1 specifies).
    pub training: usize,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions { training: 15 }
    }
}

/// One prediction attempt on one target transfer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictionOutcome {
    /// Target transfer start time.
    pub at_unix: u64,
    /// Measured bandwidth (KB/s).
    pub measured: f64,
    /// Predicted bandwidth (KB/s).
    pub predicted: f64,
    /// The target's size class.
    pub class: SizeClass,
}

impl PredictionOutcome {
    /// Absolute percentage error of this prediction. `None` when the
    /// measured bandwidth is zero: a percentage of nothing is
    /// undefined, and every error aggregate in this crate (MAPE,
    /// percentiles, RMSPE, relative tallies) shares this convention by
    /// excluding such targets rather than propagating an infinity into
    /// sorts and means.
    pub fn abs_pct_error(&self) -> Option<f64> {
        // tidy: allow(float-eq): 0.0 is the exact "no measurement" sentinel this convention is built on
        if self.measured == 0.0 {
            return None;
        }
        Some((self.measured - self.predicted).abs() / self.measured.abs() * 100.0)
    }
}

/// All outcomes of one predictor over a replay.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PredictorReport {
    /// Predictor display name.
    pub name: String,
    /// One outcome per target the predictor could answer.
    pub outcomes: Vec<PredictionOutcome>,
    /// Targets the predictor declined (insufficient windowed history).
    pub declined: usize,
}

impl PredictorReport {
    /// Mean absolute percentage error over all answered targets.
    pub fn mape(&self) -> Option<f64> {
        let pairs: Vec<(f64, f64)> = self
            .outcomes
            .iter()
            .map(|o| (o.measured, o.predicted))
            .collect();
        stats::mape(&pairs)
    }

    /// Mean absolute percentage error over targets of one size class.
    pub fn mape_for_class(&self, class: SizeClass) -> Option<f64> {
        let pairs: Vec<(f64, f64)> = self
            .outcomes
            .iter()
            .filter(|o| o.class == class)
            .map(|o| (o.measured, o.predicted))
            .collect();
        stats::mape(&pairs)
    }

    /// Number of answered targets in a class.
    pub fn count_for_class(&self, class: SizeClass) -> usize {
        self.outcomes.iter().filter(|o| o.class == class).count()
    }

    /// The `p`-th percentile of the absolute percentage errors (e.g.
    /// `50.0` = median error, `90.0` = tail error). NWS-style systems
    /// report such error estimates next to every forecast so consumers
    /// can weigh predictions; `None` when nothing was answered.
    pub fn error_percentile(&self, p: f64) -> Option<f64> {
        let errs: Vec<f64> = self
            .outcomes
            .iter()
            .filter_map(PredictionOutcome::abs_pct_error)
            .collect();
        stats::percentile(&errs, p)
    }

    /// The `p`-th error percentile over targets of one size class.
    pub fn error_percentile_for_class(&self, class: SizeClass, p: f64) -> Option<f64> {
        let errs: Vec<f64> = self
            .outcomes
            .iter()
            .filter(|o| o.class == class)
            .filter_map(PredictionOutcome::abs_pct_error)
            .collect();
        stats::percentile(&errs, p)
    }

    /// Root-mean-square percentage error (penalizes large misses harder
    /// than MAPE; useful when a broker cares about worst cases).
    pub fn rmspe(&self) -> Option<f64> {
        let sq: Vec<f64> = self
            .outcomes
            .iter()
            .filter_map(|o| o.abs_pct_error().map(|e| e * e))
            .collect();
        stats::mean(&sq).map(f64::sqrt)
    }
}

/// The naive slice-based replay core: every prediction is derived from
/// the full history prefix, exactly as §6.2 describes. Entry point for
/// callers is [`crate::evaluation::Evaluation`] with
/// [`EvalEngine::Naive`](crate::evaluation::EvalEngine::Naive).
pub(crate) fn naive_replay(
    series: &[Observation],
    predictors: &[NamedPredictor],
    opts: EvalOptions,
) -> Vec<PredictorReport> {
    let mut reports: Vec<PredictorReport> = predictors
        .iter()
        .map(|p| PredictorReport {
            name: p.name().to_string(),
            outcomes: Vec::new(),
            declined: 0,
        })
        .collect();

    for i in opts.training..series.len() {
        let target = &series[i];
        let history = &series[..i];
        let class = SizeClass::of_bytes(target.file_size);
        for (p, report) in predictors.iter().zip(&mut reports) {
            match p.predict(history, target.at_unix, target.file_size) {
                Some(pred) => report.outcomes.push(PredictionOutcome {
                    at_unix: target.at_unix,
                    measured: target.bandwidth_kbs,
                    predicted: pred,
                    class,
                }),
                None => report.declined += 1,
            }
        }
    }
    reports
}

/// Relative best/worst tallies for one predictor (Figures 14–21).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelativeReport {
    /// Predictor display name.
    pub name: String,
    /// Percentage of targets on which this predictor had the (possibly
    /// tied) lowest absolute error.
    pub best_pct: f64,
    /// Percentage of targets on which it had the (possibly tied) highest
    /// absolute error.
    pub worst_pct: f64,
    /// Number of targets considered.
    pub targets: usize,
}

/// Compute best/worst percentages over a replay, optionally restricted to
/// one size class. Only targets every predictor answered are compared
/// (so the tallies are over a common denominator, as in the paper's
/// per-class figures). Ties within `tie_eps` relative error are awarded
/// to all tied predictors.
pub fn relative_performance(
    series: &[Observation],
    predictors: &[NamedPredictor],
    opts: EvalOptions,
    class: Option<SizeClass>,
) -> Vec<RelativeReport> {
    let mut best = vec![0usize; predictors.len()];
    let mut worst = vec![0usize; predictors.len()];
    let mut targets = 0usize;
    let tie_eps = 1e-9;

    for i in opts.training..series.len() {
        let target = &series[i];
        // tidy: allow(float-eq): mirrors abs_pct_error's exact zero-measurement sentinel
        if target.bandwidth_kbs == 0.0 {
            continue;
        }
        if let Some(c) = class {
            if SizeClass::of_bytes(target.file_size) != c {
                continue;
            }
        }
        let history = &series[..i];
        let mut errs = Vec::with_capacity(predictors.len());
        let mut all_answered = true;
        for p in predictors {
            match p.predict(history, target.at_unix, target.file_size) {
                Some(pred) => {
                    errs.push((target.bandwidth_kbs - pred).abs() / target.bandwidth_kbs);
                }
                None => {
                    all_answered = false;
                    break;
                }
            }
        }
        if !all_answered {
            continue;
        }
        targets += 1;
        let lo = errs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = errs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for (j, &e) in errs.iter().enumerate() {
            if e <= lo + tie_eps {
                best[j] += 1;
            }
            if e >= hi - tie_eps {
                worst[j] += 1;
            }
        }
    }

    predictors
        .iter()
        .enumerate()
        .map(|(j, p)| RelativeReport {
            name: p.name().to_string(),
            best_pct: if targets == 0 {
                0.0
            } else {
                best[j] as f64 / targets as f64 * 100.0
            },
            worst_pct: if targets == 0 {
                0.0
            } else {
                worst[j] as f64 / targets as f64 * 100.0
            },
            targets,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::PAPER_MB;
    use crate::last::LastValue;
    use crate::mean::MeanPredictor;
    use crate::registry::{full_suite, paper_suite, NamedPredictor};
    use crate::window::Window;

    fn evaluate(
        series: &[Observation],
        predictors: &[NamedPredictor],
        opts: EvalOptions,
    ) -> Vec<PredictorReport> {
        crate::evaluation::Evaluation::replay(
            series,
            predictors,
            crate::evaluation::EvalEngine::Naive,
            opts,
            &wanpred_obs::ObsSink::disabled(),
        )
    }

    fn flat_series(n: usize, bw: f64) -> Vec<Observation> {
        (0..n)
            .map(|i| Observation {
                at_unix: 1_000_000 + i as u64 * 600,
                bandwidth_kbs: bw,
                file_size: 100 * PAPER_MB,
                streams: 1,
                tcp_buffer: 0,
            })
            .collect()
    }

    #[test]
    fn perfect_predictors_on_constant_series() {
        let series = flat_series(40, 5_000.0);
        let reports = evaluate(&series, &full_suite(), EvalOptions::default());
        for r in &reports {
            // Temporal windows cover the whole series (10-minute gaps), so
            // every predictor answers every target and is exact.
            assert_eq!(r.outcomes.len(), 25, "{}", r.name);
            assert!(r.mape().unwrap() < 1e-9, "{} mape", r.name);
        }
    }

    #[test]
    fn training_set_is_honored() {
        let series = flat_series(20, 1.0);
        let reports = evaluate(&series, &paper_suite(false), EvalOptions { training: 15 });
        assert_eq!(reports[0].outcomes.len(), 5);
        let reports = evaluate(&series, &paper_suite(false), EvalOptions { training: 19 });
        assert_eq!(reports[0].outcomes.len(), 1);
        let reports = evaluate(&series, &paper_suite(false), EvalOptions { training: 20 });
        assert_eq!(reports[0].outcomes.len(), 0);
    }

    #[test]
    fn outcome_error_formula() {
        let o = PredictionOutcome {
            at_unix: 0,
            measured: 200.0,
            predicted: 150.0,
            class: SizeClass::C10MB,
        };
        assert!((o.abs_pct_error().unwrap() - 25.0).abs() < 1e-12);
        let zero = PredictionOutcome {
            at_unix: 0,
            measured: 0.0,
            predicted: 150.0,
            class: SizeClass::C10MB,
        };
        assert_eq!(zero.abs_pct_error(), None);
    }

    #[test]
    fn mape_per_class_separates() {
        // Alternate classes with different predictability.
        let mut series = Vec::new();
        for i in 0..60 {
            let small = i % 2 == 0;
            series.push(Observation {
                at_unix: 1_000 + i as u64,
                bandwidth_kbs: if small {
                    // noisy small transfers
                    if i % 4 == 0 {
                        100.0
                    } else {
                        300.0
                    }
                } else {
                    5_000.0 // perfectly stable large transfers
                },
                file_size: if small { PAPER_MB } else { 1000 * PAPER_MB },
                streams: 1,
                tcp_buffer: 0,
            });
        }
        let preds = paper_suite(true);
        let reports = evaluate(&series, &preds, EvalOptions::default());
        let lv = reports.iter().find(|r| r.name == "LV+C").unwrap();
        let huge = lv.mape_for_class(SizeClass::C1GB).unwrap();
        let small = lv.mape_for_class(SizeClass::C10MB).unwrap();
        assert!(huge < 1e-9, "stable class exactly predicted: {huge}");
        assert!(small > 20.0, "noisy class poorly predicted: {small}");
    }

    #[test]
    fn error_percentiles_and_rmspe() {
        let mk = |measured: f64, predicted: f64| PredictionOutcome {
            at_unix: 0,
            measured,
            predicted,
            class: SizeClass::C10MB,
        };
        let report = PredictorReport {
            name: "t".into(),
            // Errors: 10%, 20%, 30%, 40%.
            outcomes: vec![
                mk(100.0, 90.0),
                mk(100.0, 80.0),
                mk(100.0, 70.0),
                mk(100.0, 60.0),
            ],
            declined: 0,
        };
        assert!((report.error_percentile(0.0).unwrap() - 10.0).abs() < 1e-9);
        assert!((report.error_percentile(100.0).unwrap() - 40.0).abs() < 1e-9);
        assert!((report.error_percentile(50.0).unwrap() - 25.0).abs() < 1e-9);
        // RMSPE = sqrt((100+400+900+1600)/4) = sqrt(750).
        assert!((report.rmspe().unwrap() - 750.0f64.sqrt()).abs() < 1e-9);
        // RMSPE >= MAPE always (Jensen).
        assert!(report.rmspe().unwrap() >= report.mape().unwrap());
        let empty = PredictorReport {
            name: "e".into(),
            outcomes: vec![],
            declined: 3,
        };
        assert_eq!(empty.error_percentile(50.0), None);
        assert_eq!(empty.rmspe(), None);
        // Class-filtered percentile only sees its class.
        assert_eq!(
            report.error_percentile_for_class(SizeClass::C10MB, 100.0),
            report.error_percentile(100.0)
        );
        assert_eq!(
            report.error_percentile_for_class(SizeClass::C1GB, 50.0),
            None
        );
    }

    #[test]
    fn zero_bandwidth_observation_keeps_error_aggregates_finite() {
        // Regression: a dead transfer (0 KB/s) in the replay used to
        // contribute an infinite percentage error to the percentile
        // sort. The shared convention now excludes it everywhere.
        let mut series = flat_series(40, 5_000.0);
        series[20].bandwidth_kbs = 0.0;
        let reports = evaluate(&series, &full_suite(), EvalOptions::default());
        for r in &reports {
            // The zero-measured target is still predicted (history is
            // non-empty) — it is the *aggregates* that must skip it.
            assert_eq!(r.outcomes.len(), 25, "{}", r.name);
            for p in [0.0, 50.0, 90.0, 100.0] {
                let e = r.error_percentile(p).unwrap();
                assert!(e.is_finite(), "{} p{}: {}", r.name, p, e);
            }
            assert!(r.rmspe().unwrap().is_finite(), "{}", r.name);
            assert!(r.mape().unwrap().is_finite(), "{}", r.name);
        }
    }

    #[test]
    fn relative_tallies_sum_sensibly() {
        // Two predictors with opposite behaviour on an alternating series:
        // LV is perfect when values repeat; AVG lags.
        let mut series = Vec::new();
        for i in 0..50 {
            series.push(Observation {
                at_unix: 1_000 + i as u64,
                bandwidth_kbs: if i < 25 { 100.0 } else { 900.0 },
                file_size: 100 * PAPER_MB,
                streams: 1,
                tcp_buffer: 0,
            });
        }
        let preds = vec![
            NamedPredictor::new(Box::new(LastValue::new()), false),
            NamedPredictor::new(Box::new(MeanPredictor::new(Window::All)), false),
        ];
        let rel = relative_performance(&series, &preds, EvalOptions::default(), None);
        assert_eq!(rel.len(), 2);
        assert_eq!(rel[0].targets, 35);
        // Every target has a best and a worst; with 2 predictors,
        // best% + worst% >= 100 for each... actually each target awards
        // exactly one best and one worst (or both to both if tied).
        let total_best: f64 = rel.iter().map(|r| r.best_pct).sum();
        assert!(total_best >= 100.0 - 1e-9);
        // LV should dominate on this regime-switching series.
        assert!(rel[0].best_pct > rel[1].best_pct, "{rel:?}");
    }

    #[test]
    fn relative_class_filter_restricts_targets() {
        let mut series = flat_series(40, 100.0);
        // Make ten of them 1 GB targets.
        for o in series.iter_mut().skip(30) {
            o.file_size = 1000 * PAPER_MB;
        }
        let preds = paper_suite(false);
        let rel = relative_performance(
            &series,
            &preds,
            EvalOptions::default(),
            Some(SizeClass::C1GB),
        );
        assert_eq!(rel[0].targets, 10);
    }

    #[test]
    fn zero_measured_targets_are_skipped_in_relative() {
        let mut series = flat_series(20, 100.0);
        series[17].bandwidth_kbs = 0.0;
        let preds = vec![NamedPredictor::new(Box::new(LastValue::new()), false)];
        let rel = relative_performance(&series, &preds, EvalOptions::default(), None);
        assert_eq!(rel[0].targets, 4);
    }
}
