//! Descriptive statistics shared by predictors, the evaluation framework
//! and the information provider (min/avg/max bandwidth attributes in the
//! Figure 6 LDIF output).

/// Arithmetic mean; `None` for empty input.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Median with the paper's §4.1 convention: for an ordered list of `t`
/// values, odd `t` takes the middle value; even `t` averages the two
/// middle values. `None` for empty input.
pub fn median(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let t = v.len();
    if t % 2 == 1 {
        Some(v[t / 2])
    } else {
        Some((v[t / 2 - 1] + v[t / 2]) / 2.0)
    }
}

/// Population variance; `None` for empty input.
pub fn variance(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Standard deviation; `None` for empty input.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Minimum; `None` for empty input.
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().reduce(f64::min)
}

/// Maximum; `None` for empty input.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().reduce(f64::max)
}

/// Linear interpolated percentile `p` in `[0, 100]`; `None` for empty
/// input.
///
/// Inputs must be finite (no NaN — the sort would panic). Callers that
/// derive errors from measurements share one convention: targets with a
/// zero measurement have *no* percentage error and are excluded before
/// ranking (see `PredictionOutcome::abs_pct_error` and [`mape`]), so no
/// infinities reach this function either.
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    if v.len() == 1 {
        return v.first().copied();
    }
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(v[lo] + (v[hi] - v[lo]) * frac)
}

/// Ordinary-least-squares fit of `y = a + b x` over paired samples.
/// Returns `(a, b)`; `None` if fewer than two pairs or `x` is degenerate
/// (zero variance, which would make `b` unidentifiable).
pub fn ols(x: &[f64], y: &[f64]) -> Option<(f64, f64)> {
    assert_eq!(x.len(), y.len());
    let n = x.len();
    if n < 2 {
        return None;
    }
    let mx = mean(x)?;
    let my = mean(y)?;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for (xi, yi) in x.iter().zip(y) {
        sxx += (xi - mx) * (xi - mx);
        sxy += (xi - mx) * (yi - my);
    }
    if sxx < 1e-12 * (1.0 + mx * mx) * n as f64 {
        return None;
    }
    let b = sxy / sxx;
    let a = my - b * mx;
    Some((a, b))
}

/// Mean absolute percentage error of predictions vs measurements,
/// skipping pairs with zero measurement (the paper's §6.2 error formula,
/// averaged). `None` if no valid pairs.
pub fn mape(pairs: &[(f64, f64)]) -> Option<f64> {
    let errs: Vec<f64> = pairs
        .iter()
        // tidy: allow(float-eq): exact zero-measurement sentinel, same convention as eval::abs_pct_error
        .filter(|(measured, _)| *measured != 0.0)
        .map(|(measured, predicted)| (measured - predicted).abs() / measured.abs() * 100.0)
        .collect();
    mean(&errs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_median_basics() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(median(&[]), None);
        assert_eq!(median(&[5.0]), Some(5.0));
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
    }

    #[test]
    fn order_statistics_survive_nan() {
        // Regression: these sorts used partial_cmp().expect(..) and
        // aborted the replay when a fault-injected log produced a NaN
        // bandwidth. total_cmp orders NaN last instead of panicking.
        assert!(median(&[1.0, f64::NAN, 2.0]).is_some());
        assert!(percentile(&[4.0, f64::NAN, 1.0], 50.0).is_some());
    }

    #[test]
    fn median_resists_outliers() {
        let m = median(&[10.0, 11.0, 9.0, 10.5, 1e9]).unwrap();
        assert!((m - 10.5).abs() < 1e-9);
    }

    #[test]
    fn variance_and_std() {
        assert_eq!(variance(&[1.0, 1.0, 1.0]), Some(0.0));
        let v = variance(&[2.0, 4.0]).unwrap();
        assert!((v - 1.0).abs() < 1e-12);
        assert!((std_dev(&[2.0, 4.0]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_max() {
        assert_eq!(min(&[3.0, 1.0, 2.0]), Some(1.0));
        assert_eq!(max(&[3.0, 1.0, 2.0]), Some(3.0));
        assert_eq!(min(&[]), None);
    }

    #[test]
    fn percentiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 100.0), Some(5.0));
        assert_eq!(percentile(&xs, 50.0), Some(3.0));
        assert_eq!(percentile(&xs, 25.0), Some(2.0));
        assert_eq!(percentile(&[7.0], 99.0), Some(7.0));
    }

    #[test]
    fn ols_recovers_exact_line() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y: Vec<f64> = x.iter().map(|v| 2.0 + 0.5 * v).collect();
        let (a, b) = ols(&x, &y).unwrap();
        assert!((a - 2.0).abs() < 1e-9);
        assert!((b - 0.5).abs() < 1e-9);
    }

    #[test]
    fn ols_degenerate_x_is_none() {
        assert_eq!(ols(&[3.0, 3.0, 3.0], &[1.0, 2.0, 3.0]), None);
        assert_eq!(ols(&[1.0], &[1.0]), None);
    }

    #[test]
    fn mape_skips_zero_measurements() {
        let m = mape(&[(100.0, 90.0), (0.0, 50.0), (200.0, 210.0)]).unwrap();
        // (10% + 5%) / 2 = 7.5%
        assert!((m - 7.5).abs() < 1e-9);
        assert_eq!(mape(&[(0.0, 1.0)]), None);
    }
}
