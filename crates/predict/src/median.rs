//! Median-based predictors (§4.1): `MED`, `MED5/15/25`.
//!
//! Useful when the history contains randomly occurring asymmetric
//! outliers, at the cost of jitterier forecasts than means (the paper's
//! §6.2 indeed observes median predictors "varying more").

use crate::observation::Observation;
use crate::predictor::{values, Predictor, PredictorSpec};
use crate::stats;
use crate::window::Window;

/// Median predictor over a history window.
#[derive(Debug, Clone)]
pub struct MedianPredictor {
    name: String,
    window: Window,
}

impl MedianPredictor {
    /// Median over the given window; named `MED` + window suffix.
    pub fn new(window: Window) -> Self {
        MedianPredictor {
            name: format!("MED{}", window.name_suffix()),
            window,
        }
    }

    /// The window in use.
    pub fn window(&self) -> Window {
        self.window
    }
}

impl Predictor for MedianPredictor {
    fn name(&self) -> &str {
        &self.name
    }

    fn predict(&self, history: &[Observation], now: u64) -> Option<f64> {
        let sel = self.window.select(history, now);
        stats::median(&values(sel))
    }

    fn spec(&self) -> Option<PredictorSpec> {
        Some(PredictorSpec::Median(self.window))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::testutil::history;

    #[test]
    fn med_all_name_and_value() {
        let p = MedianPredictor::new(Window::All);
        assert_eq!(p.name(), "MED");
        let h = history(&[1.0, 100.0, 2.0]);
        assert_eq!(p.predict(&h, 0), Some(2.0));
    }

    #[test]
    fn med5_window() {
        let p = MedianPredictor::new(Window::LastN(5));
        assert_eq!(p.name(), "MED5");
        let h = history(&[1e9, 1e9, 1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(p.predict(&h, 0), Some(3.0));
    }

    #[test]
    fn even_count_averages_middles() {
        let p = MedianPredictor::new(Window::All);
        let h = history(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(p.predict(&h, 0), Some(2.5));
    }

    #[test]
    fn outlier_rejection_vs_mean() {
        use crate::mean::MeanPredictor;
        let h = history(&[10.0, 10.5, 9.5, 10.2, 1e6]);
        let med = MedianPredictor::new(Window::All).predict(&h, 0).unwrap();
        let avg = MeanPredictor::new(Window::All).predict(&h, 0).unwrap();
        assert!(med < 11.0, "median stays near the mode");
        assert!(avg > 1e5, "mean dragged by the outlier");
    }

    #[test]
    fn empty_is_none() {
        assert_eq!(MedianPredictor::new(Window::All).predict(&[], 0), None);
    }
}
