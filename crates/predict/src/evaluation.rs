//! The unified evaluation front door.
//!
//! Historically this crate grew three ways to replay a predictor suite
//! against a log: a naive slice-based walk (`crate::eval`), a rolling
//! fast path (`crate::incremental`), and `wanpred_core::evaluate_log`
//! (log extraction plus the full suite). They differed only in engine
//! choice and input preparation, so every caller re-assembled the same
//! plumbing. [`Evaluation`] collapses them: pick a suite, an engine,
//! options and an optional [`ObsSink`], then [`run`](Evaluation::run)
//! a series or [`run_log`](Evaluation::run_log) a whole transfer log.
//! The old free-function entry points have been removed.
//!
//! ```
//! use wanpred_predict::prelude::*;
//!
//! let series: Vec<Observation> = (0..40)
//!     .map(|i| Observation {
//!         at_unix: 1_000 + i * 600,
//!         bandwidth_kbs: 4_000.0,
//!         file_size: 100 * PAPER_MB,
//! streams: 1,
//! tcp_buffer: 0,
//!     })
//!     .collect();
//! let eval = Evaluation::builder().suite(paper_suite(false)).build();
//! let reports = eval.run(&series);
//! assert_eq!(reports.len(), 15);
//! assert!(reports[0].mape().unwrap() < 1e-9);
//! ```

use wanpred_logfmt::{LogError, TransferLog};
use wanpred_obs::{names, ObsSink};

use crate::eval::{naive_replay, EvalOptions, PredictorReport};
use crate::incremental::incremental_replay;
use crate::observation::{observations_from_log, observations_from_ulm, sort_by_time, Observation};
use crate::registry::{full_suite, NamedPredictor};

/// Which replay engine scores the suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalEngine {
    /// The slice-based reference evaluator: every prediction is derived
    /// from the full history prefix. Quadratic in the log length but
    /// trivially auditable against the paper's §6.2 description.
    Naive,
    /// The rolling-state engine: per-predictor state carried forward
    /// through the replay, fanned across threads. Near-linear, and
    /// equivalent to [`EvalEngine::Naive`] within floating-point
    /// reassociation (exact for medians and count-window means).
    #[default]
    Incremental,
}

/// A configured predictor evaluation: suite + engine + options + sink.
///
/// Build one with [`Evaluation::builder`], then replay it over as many
/// series or logs as needed — the value is immutable and reusable.
#[derive(Debug)]
pub struct Evaluation {
    predictors: Vec<NamedPredictor>,
    engine: EvalEngine,
    opts: EvalOptions,
    obs: ObsSink,
}

impl Evaluation {
    /// Start building an evaluation. Defaults: the full 30-variant
    /// paper suite, the incremental engine, [`EvalOptions::default`]
    /// (15-value training set), observability disabled.
    pub fn builder() -> EvaluationBuilder {
        EvaluationBuilder {
            predictors: None,
            engine: EvalEngine::default(),
            opts: EvalOptions::default(),
            obs: ObsSink::disabled(),
        }
    }

    /// The suite this evaluation replays, in report order.
    pub fn predictors(&self) -> &[NamedPredictor] {
        &self.predictors
    }

    /// Consume the evaluation, yielding the suite (callers that pair
    /// reports with predictors, e.g. for live prediction after a
    /// replay, take ownership this way).
    pub fn into_predictors(self) -> Vec<NamedPredictor> {
        self.predictors
    }

    /// Replay options.
    pub fn options(&self) -> EvalOptions {
        self.opts
    }

    /// The configured engine.
    pub fn engine(&self) -> EvalEngine {
        self.engine
    }

    /// Replay a time-ordered series through the configured suite.
    ///
    /// The series must be sorted by `at_unix`; use
    /// [`crate::observation::sort_by_time`] if unsure (or
    /// [`run_log`](Evaluation::run_log), which sorts for you).
    pub fn run(&self, series: &[Observation]) -> Vec<PredictorReport> {
        Self::replay(series, &self.predictors, self.engine, self.opts, &self.obs)
    }

    /// Extract the observation series from a transfer log, sort it by
    /// start time, and [`run`](Evaluation::run) it.
    pub fn run_log(&self, log: &TransferLog) -> Vec<PredictorReport> {
        let mut series = observations_from_log(log);
        sort_by_time(&mut series);
        self.run(&series)
    }

    /// Parse a ULM document straight into observations (the zero-copy
    /// ingest path, [`observations_from_ulm`]), sort by start time, and
    /// [`run`](Evaluation::run) it. Produces reports identical to
    /// loading the document into a [`TransferLog`] first and calling
    /// [`run_log`](Evaluation::run_log), without materialising the log.
    pub fn run_ulm(&self, doc: &str) -> Result<Vec<PredictorReport>, LogError> {
        let mut series = observations_from_ulm(doc)?;
        sort_by_time(&mut series);
        Ok(self.run(&series))
    }

    /// The borrowed-suite core every entry point funnels through:
    /// replay `series` with `engine`, then emit `predict.eval.*`
    /// metrics to `obs`.
    ///
    /// Metrics are emitted sequentially *after* the (possibly
    /// parallel) replay, so same-seed runs produce byte-identical
    /// snapshots regardless of thread scheduling.
    pub fn replay(
        series: &[Observation],
        predictors: &[NamedPredictor],
        engine: EvalEngine,
        opts: EvalOptions,
        obs: &ObsSink,
    ) -> Vec<PredictorReport> {
        let reports = match engine {
            EvalEngine::Naive => naive_replay(series, predictors, opts),
            EvalEngine::Incremental => incremental_replay(series, predictors, opts),
        };
        if obs.is_enabled() {
            obs.gauge(names::PREDICT_EVAL_PREDICTORS, predictors.len() as f64);
            obs.inc_by(
                names::PREDICT_EVAL_TARGETS,
                series.len().saturating_sub(opts.training) as u64,
            );
            let predictions: u64 = reports.iter().map(|r| r.outcomes.len() as u64).sum();
            let declined: u64 = reports.iter().map(|r| r.declined as u64).sum();
            obs.inc_by(names::PREDICT_EVAL_PREDICTIONS, predictions);
            obs.inc_by(names::PREDICT_EVAL_DECLINED, declined);
            if let (Some(first), Some(last)) = (series.first(), series.last()) {
                // The replay span covers the series' own time range:
                // evaluation is an offline walk over history, so its
                // "duration" is the span of log time it replayed.
                obs.span_enter(names::PREDICT_EVAL_REPLAY, first.at_unix * 1_000_000);
                obs.span_exit(names::PREDICT_EVAL_REPLAY, last.at_unix * 1_000_000);
            }
        }
        reports
    }
}

/// Builder for [`Evaluation`]; see [`Evaluation::builder`].
#[derive(Debug)]
pub struct EvaluationBuilder {
    predictors: Option<Vec<NamedPredictor>>,
    engine: EvalEngine,
    opts: EvalOptions,
    obs: ObsSink,
}

impl EvaluationBuilder {
    /// Use this predictor suite (replaces any previous selection).
    pub fn suite(mut self, predictors: Vec<NamedPredictor>) -> Self {
        self.predictors = Some(predictors);
        self
    }

    /// Append a single predictor to the suite (starting from empty if
    /// no suite was set yet).
    pub fn predictor(mut self, p: NamedPredictor) -> Self {
        self.predictors.get_or_insert_with(Vec::new).push(p);
        self
    }

    /// Select the replay engine.
    pub fn engine(mut self, engine: EvalEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Set all evaluation options at once.
    pub fn options(mut self, opts: EvalOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Set the training-set size (the paper's 15-value default).
    pub fn training(mut self, training: usize) -> Self {
        self.opts.training = training;
        self
    }

    /// Emit `predict.eval.*` metrics to this sink during replays.
    pub fn obs(mut self, sink: ObsSink) -> Self {
        self.obs = sink;
        self
    }

    /// Finish the builder. An unset suite defaults to the paper's full
    /// 30-variant suite ([`full_suite`]).
    pub fn build(self) -> Evaluation {
        Evaluation {
            predictors: self.predictors.unwrap_or_else(full_suite),
            engine: self.engine,
            opts: self.opts,
            obs: self.obs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::PAPER_MB;
    use crate::mean::EwmaPredictor;
    use crate::registry::paper_suite;
    use wanpred_logfmt::sample_record;

    fn series(n: usize) -> Vec<Observation> {
        (0..n)
            .map(|i| Observation {
                at_unix: 1_000 + i as u64 * 300,
                bandwidth_kbs: 2_000.0 + (i as f64 * 17.3) % 400.0,
                file_size: 100 * PAPER_MB,
                streams: 1,
                tcp_buffer: 0,
            })
            .collect()
    }

    #[test]
    fn defaults_are_full_suite_incremental() {
        let eval = Evaluation::builder().build();
        assert_eq!(eval.predictors().len(), 30);
        assert_eq!(eval.engine(), EvalEngine::Incremental);
        assert_eq!(eval.options().training, 15);
    }

    #[test]
    fn engines_agree_on_reports() {
        let s = series(60);
        let naive = Evaluation::builder()
            .suite(paper_suite(false))
            .engine(EvalEngine::Naive)
            .build()
            .run(&s);
        let inc = Evaluation::builder()
            .suite(paper_suite(false))
            .engine(EvalEngine::Incremental)
            .build()
            .run(&s);
        assert_eq!(naive.len(), inc.len());
        for (n, i) in naive.iter().zip(&inc) {
            assert_eq!(n.name, i.name);
            assert_eq!(n.outcomes.len(), i.outcomes.len());
            assert_eq!(n.declined, i.declined);
        }
    }

    #[test]
    fn single_predictor_and_training_override() {
        let s = series(25);
        let reports = Evaluation::builder()
            .predictor(NamedPredictor::new(
                Box::new(EwmaPredictor::new(0.5)),
                false,
            ))
            .training(20)
            .build()
            .run(&s);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].outcomes.len() + reports[0].declined, 5);
    }

    #[test]
    fn run_log_sorts_before_replaying() {
        let mut log = TransferLog::new();
        // Deliberately out of order; 20 records, 600 s apart.
        for i in (0..20u64).rev() {
            let mut r = sample_record();
            r.start_unix = 1_000 + i * 600;
            r.end_unix = r.start_unix + 4;
            log.append(r);
        }
        let reports = Evaluation::builder()
            .suite(paper_suite(false))
            .training(15)
            .build()
            .run_log(&log);
        // 5 targets after training; a constant-bandwidth log is exact.
        assert_eq!(reports[0].outcomes.len(), 5);
        assert!(reports[0].mape().unwrap() < 1e-9);
    }

    #[test]
    fn run_ulm_matches_run_log() {
        let mut log = TransferLog::new();
        for i in 0..25u64 {
            let mut r = sample_record();
            r.start_unix = 1_000 + i * 600;
            r.end_unix = r.start_unix + 4;
            r.total_time_s = 3.5 + (i as f64 * 0.37) % 2.0;
            log.append(r);
        }
        let eval = Evaluation::builder().suite(paper_suite(false)).build();
        let via_log = eval.run_log(&log);
        let via_ulm = eval.run_ulm(&log.to_ulm_string()).expect("own encoding");
        assert_eq!(via_log.len(), via_ulm.len());
        for (a, b) in via_log.iter().zip(&via_ulm) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.outcomes, b.outcomes);
            assert_eq!(a.declined, b.declined);
        }
        assert!(eval.run_ulm("definitely not ULM\n").is_err());
    }

    #[test]
    fn replay_emits_metrics_to_sink() {
        let sink = ObsSink::enabled();
        let s = series(40);
        let eval = Evaluation::builder()
            .suite(paper_suite(false))
            .obs(sink.clone())
            .build();
        let reports = eval.run(&s);
        let snap = sink.snapshot();
        assert_eq!(snap.counter(names::PREDICT_EVAL_TARGETS), 25);
        let predictions: u64 = reports.iter().map(|r| r.outcomes.len() as u64).sum();
        let declined: u64 = reports.iter().map(|r| r.declined as u64).sum();
        assert_eq!(snap.counter(names::PREDICT_EVAL_PREDICTIONS), predictions);
        assert_eq!(snap.counter(names::PREDICT_EVAL_DECLINED), declined);
        assert_eq!(snap.gauge(names::PREDICT_EVAL_PREDICTORS), Some(15.0));
        let h = snap.histogram(names::PREDICT_EVAL_REPLAY).unwrap();
        assert_eq!(h.count, 1);
        // 39 gaps of 300 s, in microseconds.
        assert_eq!(h.sum, 39 * 300 * 1_000_000);
    }

    #[test]
    fn disabled_sink_emits_nothing() {
        let eval = Evaluation::builder().suite(paper_suite(false)).build();
        let _ = eval.run(&series(40));
        // Nothing to assert on the sink itself (it is null); the point
        // is that the replay ran without a registry allocation.
        assert!(!ObsSink::disabled().is_enabled());
    }

    #[test]
    fn into_predictors_round_trips_the_suite() {
        let eval = Evaluation::builder().suite(paper_suite(true)).build();
        let suite = eval.into_predictors();
        assert_eq!(suite.len(), 15);
        assert!(suite.iter().all(|p| p.is_classified()));
    }
}
