//! Auto-regressive predictors (§4.1): the paper's degenerate ARIMA,
//!
//! ```text
//! Y_t = a + b * Y_{t-1}
//! ```
//!
//! with `a` and `b` fit by ordinary least squares over past occurrences
//! (the shock term dropped, as the paper states). The paper notes the
//! technique formally wants ≥ 50 equally spaced measurements — which its
//! logs do not provide — and evaluates it anyway over 5- and 10-day
//! temporal windows (`AR5d`, `AR10d`) plus the full history (`AR`). We
//! implement the same predictors with an explicit small-sample guard:
//! below [`ArPredictor::MIN_POINTS`] usable pairs (or with a degenerate
//! regressor) the predictor falls back to the windowed mean rather than
//! extrapolating a meaningless line.

use crate::observation::Observation;
use crate::predictor::{values, Predictor, PredictorSpec};
use crate::stats;
use crate::window::Window;

/// AR(1) predictor over a history window.
#[derive(Debug, Clone)]
pub struct ArPredictor {
    name: String,
    window: Window,
}

impl ArPredictor {
    /// Minimum number of observations (hence `MIN_POINTS - 1` regression
    /// pairs) before the OLS fit is trusted.
    pub const MIN_POINTS: usize = 4;

    /// AR(1) over the given window; named `AR` + window suffix.
    pub fn new(window: Window) -> Self {
        ArPredictor {
            name: format!("AR{}", window.name_suffix()),
            window,
        }
    }

    /// The window in use.
    pub fn window(&self) -> Window {
        self.window
    }

    /// Fit `(a, b)` on the windowed series, if well-posed.
    pub fn fit(&self, history: &[Observation], now: u64) -> Option<(f64, f64)> {
        let sel = self.window.select(history, now);
        if sel.len() < Self::MIN_POINTS {
            return None;
        }
        let v = values(sel);
        let x = &v[..v.len() - 1];
        // tidy: allow(panic-path): sel.len() >= MIN_POINTS (4) is checked above, so v is non-empty
        let y = &v[1..];
        stats::ols(x, y)
    }
}

impl Predictor for ArPredictor {
    fn name(&self) -> &str {
        &self.name
    }

    fn predict(&self, history: &[Observation], now: u64) -> Option<f64> {
        let sel = self.window.select(history, now);
        match (self.fit(history, now), sel.last()) {
            (Some((a, b)), Some(newest)) => {
                // Negative bandwidth is physically meaningless; clamp to a
                // tiny positive floor so percentage errors stay defined.
                Some((a + b * newest.bandwidth_kbs).max(1e-6))
            }
            // Small or degenerate sample: fall back to the windowed mean,
            // as NWS-style systems do rather than refusing to forecast
            // (`mean` is `None` on an empty window, so the empty case
            // still declines).
            _ => stats::mean(&values(sel)),
        }
    }

    fn spec(&self) -> Option<PredictorSpec> {
        Some(PredictorSpec::Ar(self.window))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::testutil::{history, timed_history};

    #[test]
    fn names_match_paper() {
        assert_eq!(ArPredictor::new(Window::All).name(), "AR");
        assert_eq!(
            ArPredictor::new(Window::LastSeconds(5 * 86_400)).name(),
            "AR5d"
        );
        assert_eq!(
            ArPredictor::new(Window::LastSeconds(10 * 86_400)).name(),
            "AR10d"
        );
    }

    #[test]
    fn recovers_exact_ar1_process() {
        // y_{t} = 10 + 0.5 y_{t-1}, converging to 20.
        let mut v = vec![4.0];
        for _ in 0..20 {
            let prev = *v.last().unwrap();
            v.push(10.0 + 0.5 * prev);
        }
        let h = history(&v);
        let p = ArPredictor::new(Window::All);
        let (a, b) = p.fit(&h, 0).unwrap();
        assert!((a - 10.0).abs() < 1e-6, "a={a}");
        assert!((b - 0.5).abs() < 1e-6, "b={b}");
        let last = *v.last().unwrap();
        let pred = p.predict(&h, 0).unwrap();
        assert!((pred - (10.0 + 0.5 * last)).abs() < 1e-6);
    }

    #[test]
    fn small_sample_falls_back_to_mean() {
        let h = history(&[2.0, 4.0, 6.0]); // 3 < MIN_POINTS
        let p = ArPredictor::new(Window::All);
        assert!(p.fit(&h, 0).is_none());
        assert_eq!(p.predict(&h, 0), Some(4.0));
    }

    #[test]
    fn constant_series_falls_back_to_mean() {
        // Zero variance in the regressor: OLS is degenerate.
        let h = history(&[5.0; 30]);
        let p = ArPredictor::new(Window::All);
        assert!(p.fit(&h, 0).is_none());
        assert_eq!(p.predict(&h, 0), Some(5.0));
    }

    #[test]
    fn prediction_clamped_positive() {
        // A steeply decreasing series can extrapolate negative.
        let h = history(&[100.0, 50.0, 10.0, 1.0, 0.5, 0.1]);
        let p = ArPredictor::new(Window::All);
        let pred = p.predict(&h, 0).unwrap();
        assert!(pred > 0.0);
    }

    #[test]
    fn temporal_window_restricts_fit() {
        // Old regime (huge values) outside the window; fit sees only the
        // recent flat regime and predicts near it.
        let mut pairs = Vec::new();
        for i in 0..10 {
            pairs.push((i * 100, 1e6));
        }
        for i in 0..10 {
            pairs.push((10_000 + i * 100, 50.0 + (i % 2) as f64));
        }
        let h = timed_history(&pairs);
        let p = ArPredictor::new(Window::LastSeconds(2_000));
        let pred = p.predict(&h, 11_000).unwrap();
        assert!(pred < 100.0, "pred {pred} should ignore the old regime");
    }

    #[test]
    fn empty_history_is_none() {
        let p = ArPredictor::new(Window::All);
        assert_eq!(p.predict(&[], 0), None);
    }
}
