//! # wanpred-predict
//!
//! The paper's core contribution: log-based predictors of wide-area bulk
//! transfer throughput, and the framework that evaluates them.
//!
//! * [`observation`] — the `(time, bandwidth, file size)` series extracted
//!   from GridFTP transfer logs.
//! * [`window`] — context-insensitive history filters (§4.2): all data,
//!   last *N* values, last *T* time.
//! * [`mean`], [`median`], [`last`], [`arima`] — the estimator families
//!   of §4.1.
//! * [`classify`] — context-sensitive file-size classification (§4.3).
//! * [`registry`] — Figure 4's 15 predictors and the 30-variant suite.
//! * [`eval`] — replay evaluation: absolute percentage error per size
//!   class (Figures 8–13) and relative best/worst tallies (Figures
//!   14–21).
//! * [`incremental`] — the incremental replay engine: per-predictor
//!   rolling state (running sums, order statistics, OLS accumulators)
//!   replacing the naive evaluator's per-target recomputation.
//! * [`evaluation`] — the unified front door: [`Evaluation::builder`]
//!   selects suite, engine (naive or incremental), options and an
//!   observability sink.
//! * [`regression`] — covariate regression (file size, stream count,
//!   buffer size, time of day), the follow-up paper's technique.
//! * [`selection`] — NWS-style dynamic predictor selection (the paper's
//!   §7 future work, implemented as an extension).
//! * [`tournament`] — per-pair online tournament: rolling-MAPE ranking
//!   over a candidate suite, serving the current winner.
//! * [`hybrid`] — probe-assisted prediction and cold-start cross-path
//!   extrapolation (the rest of §7, implemented as extensions).
//! * [`seasonal`] — hour-of-day context filtering, a companion to the
//!   file-size classification for diurnal paths (extension).
//! * [`stats`] — shared descriptive statistics.
//!
//! ## Quick example
//!
//! ```
//! use wanpred_predict::prelude::*;
//!
//! // A toy history: bandwidth ramping from 1000 to 1450 KB/s.
//! let history: Vec<Observation> = (0..10)
//!     .map(|i| Observation::new(1_000_000 + i * 3_600, 1_000.0 + 50.0 * i as f64, 100 * PAPER_MB))
//!     .collect();
//!
//! let avg5 = MeanPredictor::new(Window::LastN(5));
//! let p = avg5.predict(&history, 1_000_000 + 11 * 3_600).unwrap();
//! assert_eq!(p, 1_350.0); // mean of the last five values
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arima;
pub mod classify;
pub mod eval;
pub mod evaluation;
pub mod hybrid;
pub mod incremental;
pub mod last;
pub mod mean;
pub mod median;
pub mod observation;
pub mod predictor;
pub mod registry;
pub mod regression;
pub mod seasonal;
pub mod selection;
pub mod stats;
pub mod tournament;
pub mod window;

/// Convenient glob-import of the crate's main types.
pub mod prelude {
    pub use crate::arima::ArPredictor;
    pub use crate::classify::{filter_class, SizeClass, PAPER_MB};
    pub use crate::eval::{
        relative_performance, EvalOptions, PredictionOutcome, PredictorReport, RelativeReport,
    };
    pub use crate::evaluation::{EvalEngine, Evaluation, EvaluationBuilder};
    pub use crate::hybrid::{
        probe_at, recent_probe_mean, ConditionScaled, FittedRegression, ProbePoint, ProbeRegression,
    };
    pub use crate::last::LastValue;
    pub use crate::mean::{EwmaPredictor, MeanPredictor};
    pub use crate::median::MedianPredictor;
    pub use crate::observation::{
        observations_from_log, observations_from_ulm, sort_by_time, Observation,
    };
    pub use crate::predictor::{Predictor, PredictorSpec};
    pub use crate::registry::{
        extended_suite, full_suite, paper_predictors, paper_suite, predictor_by_name,
        predictor_for_spec, regression_predictors, regression_suite, NamedPredictor,
    };
    pub use crate::regression::{RegKind, RegressionPredictor};
    pub use crate::seasonal::SeasonalPredictor;
    pub use crate::selection::DynamicSelector;
    pub use crate::tournament::{
        replay_tournament, PairTournament, Tournament, TournamentOptions, TournamentReport,
    };
    pub use crate::window::{paper as paper_windows, Window};
}

pub use prelude::*;
