//! Time-of-day context filtering — a natural companion to the paper's
//! file-size classification (§4.3).
//!
//! Wide-area load is strongly diurnal (the very reason the paper's
//! controlled experiments ran 6 pm–8 am), so a transfer at 7 pm is
//! better predicted by *previous evenings* than by this morning's
//! congested samples. [`SeasonalPredictor`] restricts the history to
//! observations whose local hour-of-day falls within ± `half_width`
//! hours of the prediction instant (wrapping midnight) before applying a
//! base estimator. Composes with file-size classification through
//! [`crate::registry::NamedPredictor`], giving doubly-conditioned
//! variants.

use crate::observation::Observation;
use crate::predictor::Predictor;

/// Hour-of-day context wrapper around any base predictor.
pub struct SeasonalPredictor<P> {
    name: String,
    inner: P,
    /// Seconds either side of the target's time-of-day to accept.
    half_width_secs: u64,
    /// Seconds to subtract from Unix time to get local time (the
    /// campaign epochs are local midnights, so 0 there; real logs need
    /// their zone offset).
    utc_offset_secs: u64,
}

impl<P: Predictor> SeasonalPredictor<P> {
    /// Wrap `inner`, accepting history within ± `half_width_hours` of
    /// the prediction instant's time of day.
    pub fn new(inner: P, half_width_hours: u64) -> Self {
        assert!(
            (1..=12).contains(&half_width_hours),
            "half width must be 1..=12 hours"
        );
        SeasonalPredictor {
            name: format!("{}@±{half_width_hours}h", inner.name()),
            inner,
            half_width_secs: half_width_hours * 3_600,
            utc_offset_secs: 0,
        }
    }

    /// Set the UTC→local offset applied before extracting hour-of-day.
    pub fn with_utc_offset(mut self, secs: u64) -> Self {
        self.utc_offset_secs = secs;
        self
    }

    /// Seconds-of-day for a timestamp under the configured offset.
    fn second_of_day(&self, unix: u64) -> u64 {
        unix.wrapping_sub(self.utc_offset_secs) % 86_400
    }

    /// Circular distance between two seconds-of-day.
    fn circular_distance(a: u64, b: u64) -> u64 {
        let d = a.abs_diff(b);
        d.min(86_400 - d)
    }
}

impl<P: Predictor> Predictor for SeasonalPredictor<P> {
    fn name(&self) -> &str {
        &self.name
    }

    fn predict(&self, history: &[Observation], now: u64) -> Option<f64> {
        let target_tod = self.second_of_day(now);
        let filtered: Vec<Observation> = history
            .iter()
            .filter(|o| {
                Self::circular_distance(self.second_of_day(o.at_unix), target_tod)
                    <= self.half_width_secs
            })
            .copied()
            .collect();
        self.inner.predict(&filtered, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mean::MeanPredictor;
    use crate::window::Window;

    fn obs(at: u64, bw: f64) -> Observation {
        Observation::new(at, bw, 1)
    }

    /// History with a clean day/night split: 1000 KB/s at 03:00, 100 KB/s
    /// at 15:00, across several days.
    fn diurnal_history() -> Vec<Observation> {
        let mut h = Vec::new();
        for day in 0..5u64 {
            h.push(obs(day * 86_400 + 3 * 3_600, 1_000.0));
            h.push(obs(day * 86_400 + 15 * 3_600, 100.0));
        }
        h
    }

    #[test]
    fn filters_to_matching_hours() {
        let h = diurnal_history();
        let p = SeasonalPredictor::new(MeanPredictor::new(Window::All), 2);
        // Predicting at 03:30 on day 6: only the night samples apply.
        let night = p.predict(&h, 6 * 86_400 + 3 * 3_600 + 1_800).unwrap();
        assert_eq!(night, 1_000.0);
        // At 15:30: only the afternoon samples.
        let day = p.predict(&h, 6 * 86_400 + 15 * 3_600 + 1_800).unwrap();
        assert_eq!(day, 100.0);
        // The unconditioned mean mixes both regimes.
        let plain = MeanPredictor::new(Window::All).predict(&h, 0).unwrap();
        assert_eq!(plain, 550.0);
    }

    #[test]
    fn wraps_midnight() {
        // Samples at 23:30; prediction at 00:30 with ±2h must see them.
        let h: Vec<Observation> = (0..4)
            .map(|d| obs(d * 86_400 + 23 * 3_600 + 1_800, 777.0))
            .collect();
        let p = SeasonalPredictor::new(MeanPredictor::new(Window::All), 2);
        assert_eq!(p.predict(&h, 5 * 86_400 + 1_800), Some(777.0));
        // With ±1h at 02:30 the 23:30 samples are out of range.
        let narrow = SeasonalPredictor::new(MeanPredictor::new(Window::All), 1);
        assert_eq!(narrow.predict(&h, 5 * 86_400 + 2 * 3_600 + 1_800), None);
    }

    #[test]
    fn utc_offset_shifts_the_clock() {
        // Samples at 03:00 UTC = 22:00 local (UTC-5).
        let h: Vec<Observation> = (0..3).map(|d| obs(d * 86_400 + 3 * 3_600, 5.0)).collect();
        let p =
            SeasonalPredictor::new(MeanPredictor::new(Window::All), 1).with_utc_offset(5 * 3_600);
        // Predicting at 22:10 local (03:10 UTC): matches.
        assert_eq!(p.predict(&h, 4 * 86_400 + 3 * 3_600 + 600), Some(5.0));
    }

    #[test]
    fn empty_window_declines() {
        let h = diurnal_history();
        let p = SeasonalPredictor::new(MeanPredictor::new(Window::All), 1);
        // 09:00 has no samples within +-1h.
        assert_eq!(p.predict(&h, 6 * 86_400 + 9 * 3_600), None);
    }

    #[test]
    fn name_reflects_wrapping() {
        let p = SeasonalPredictor::new(MeanPredictor::new(Window::LastN(5)), 3);
        assert_eq!(p.name(), "AVG5@±3h");
    }

    #[test]
    #[should_panic]
    fn rejects_excessive_width() {
        let _ = SeasonalPredictor::new(MeanPredictor::new(Window::All), 13);
    }

    #[test]
    fn circular_distance_symmetry() {
        assert_eq!(
            SeasonalPredictor::<MeanPredictor>::circular_distance(100, 86_300),
            200
        );
        assert_eq!(
            SeasonalPredictor::<MeanPredictor>::circular_distance(86_300, 100),
            200
        );
        assert_eq!(
            SeasonalPredictor::<MeanPredictor>::circular_distance(0, 43_200),
            43_200
        );
    }
}
