//! Mean-based predictors (§4.1): arithmetic average over a windowed
//! portion of history — `AVG`, `AVG5/15/25`, `AVG5hr/15hr/25hr`.

use crate::observation::Observation;
use crate::predictor::{values, Predictor, PredictorSpec};
use crate::stats;
use crate::window::Window;

/// Arithmetic-mean predictor over a history window.
#[derive(Debug, Clone)]
pub struct MeanPredictor {
    name: String,
    window: Window,
}

impl MeanPredictor {
    /// Mean over the given window; the name follows the paper's
    /// convention (`AVG` + window suffix).
    pub fn new(window: Window) -> Self {
        MeanPredictor {
            name: format!("AVG{}", window.name_suffix()),
            window,
        }
    }

    /// The window in use.
    pub fn window(&self) -> Window {
        self.window
    }
}

impl Predictor for MeanPredictor {
    fn name(&self) -> &str {
        &self.name
    }

    fn predict(&self, history: &[Observation], now: u64) -> Option<f64> {
        let sel = self.window.select(history, now);
        stats::mean(&values(sel))
    }

    fn spec(&self) -> Option<PredictorSpec> {
        Some(PredictorSpec::Mean(self.window))
    }
}

/// Exponentially weighted moving average — not one of the paper's 15, but
/// a natural member of the mean family used in the extension experiments
/// (the NWS forecaster suite includes several EWMA gains).
#[derive(Debug, Clone)]
pub struct EwmaPredictor {
    name: String,
    alpha: f64,
}

impl EwmaPredictor {
    /// EWMA with gain `alpha` in `(0, 1]`: higher alpha weights recent
    /// values more.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha in (0,1]");
        EwmaPredictor {
            name: format!("EWMA{:02}", (alpha * 100.0).round() as u32),
            alpha,
        }
    }
}

impl Predictor for EwmaPredictor {
    fn name(&self) -> &str {
        &self.name
    }

    fn predict(&self, history: &[Observation], _now: u64) -> Option<f64> {
        let mut it = history.iter();
        let first = it.next()?;
        let mut est = first.bandwidth_kbs;
        for o in it {
            est = self.alpha * o.bandwidth_kbs + (1.0 - self.alpha) * est;
        }
        Some(est)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::testutil::{history, timed_history};

    #[test]
    fn avg_all_is_total_mean() {
        let h = history(&[1.0, 2.0, 3.0, 4.0]);
        let p = MeanPredictor::new(Window::All);
        assert_eq!(p.name(), "AVG");
        assert_eq!(p.predict(&h, 2_000), Some(2.5));
    }

    #[test]
    fn avg5_uses_last_five() {
        let h = history(&[100.0, 100.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        let p = MeanPredictor::new(Window::LastN(5));
        assert_eq!(p.name(), "AVG5");
        assert_eq!(p.predict(&h, 2_000), Some(3.0));
    }

    #[test]
    fn avg_hours_window_by_time() {
        let h = timed_history(&[(0, 100.0), (3_600, 10.0), (7_200, 20.0)]);
        let p = MeanPredictor::new(Window::LastSeconds(2 * 3_600));
        // now = 7_201; cutoff = 1; keeps the 3600 and 7200 samples.
        assert_eq!(p.predict(&h, 7_201), Some(15.0));
    }

    #[test]
    fn empty_windowed_history_is_none() {
        let h = timed_history(&[(0, 100.0)]);
        let p = MeanPredictor::new(Window::LastSeconds(10));
        assert_eq!(p.predict(&h, 1_000), None);
        assert_eq!(p.predict(&[], 0), None);
    }

    #[test]
    fn ewma_weights_recent_values() {
        let h = history(&[10.0, 10.0, 10.0, 100.0]);
        let fast = EwmaPredictor::new(0.9).predict(&h, 0).unwrap();
        let slow = EwmaPredictor::new(0.1).predict(&h, 0).unwrap();
        assert!(fast > 90.0);
        assert!(slow < 30.0);
    }

    #[test]
    fn ewma_single_value_is_identity() {
        let h = history(&[42.0]);
        assert_eq!(EwmaPredictor::new(0.5).predict(&h, 0), Some(42.0));
    }

    #[test]
    #[should_panic]
    fn ewma_rejects_zero_alpha() {
        let _ = EwmaPredictor::new(0.0);
    }
}
