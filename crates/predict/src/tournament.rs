//! Per-pair online tournament: a self-tuning meta-predictor that races a
//! candidate suite and serves whichever predictor currently wins.
//!
//! Where [`crate::selection::DynamicSelector`] ranks candidates by their
//! *all-time* running error, the tournament scores each candidate over a
//! rolling window of its most recent errors
//! ([`RollingMape`](crate::selection::RollingMape)), so a predictor that
//! was good last week but mistracks the current regime loses its lead
//! within one window. The candidate pool defaults to the paper's 30
//! variants plus the regression family in both flavours
//! ([`extended_suite`](crate::registry::extended_suite)).
//!
//! ## Selection rule
//!
//! Every scored target updates two leaderboards: a **global** one over
//! all targets and a **per-size-class** one over targets of the same
//! class (the paper's §4.3 insight — the best predictor differs per
//! size regime — applied to meta-selection). Class boards see only a
//! fraction of the stream, so their scores are shrunk toward the
//! candidate's global score with [`TournamentOptions::class_prior`]
//! pseudo-observations: an immature class board defers to the global
//! ranking, a mature one overrides it. Until any board has evidence,
//! the seeded incumbent ([`TournamentOptions::seed_champion`], the
//! paper's recommended classified median by default) is served. A
//! prediction is served by the target's class leader, falling back to
//! the global leader and then the global ranking when unavailable. On
//! every board the leader is the candidate minimizing
//! `(rolling MAPE, name)`:
//!
//! * candidates that have not scored inside the window rank below every
//!   scored one (their error is treated as `+inf`);
//! * equal errors break ties by **lexicographic candidate name** — the
//!   stable, documented rule shared with the dynamic selector, so the
//!   winner never depends on suite registration order; a sitting leader
//!   keeps its seat on an exact tie (a challenger must be strictly
//!   better, by [`TournamentOptions::min_lead`] relative margin);
//! * `total_cmp` keeps the order total; non-finite errors never enter
//!   the windows in the first place (the `RollingMape` NaN guard).
//!
//! Leadership changes are counted ([`Tournament::switches`]) and surface
//! through the obs layer (`predict.tournament.*`) when replayed or wired
//! into the replica broker. Grid paths are independent — each
//! source/destination pair gets its own tournament via
//! [`PairTournament`], matching the paper's per-pair evaluation.

use std::collections::BTreeMap;

use wanpred_obs::{names, ObsSink};

use crate::classify::SizeClass;
use crate::eval::{EvalOptions, PredictionOutcome, PredictorReport};
use crate::observation::Observation;
use crate::registry::{extended_suite, NamedPredictor};
use crate::selection::RollingMape;

/// Tuning knobs for a [`Tournament`].
#[derive(Debug, Clone, Copy)]
pub struct TournamentOptions {
    /// Observations absorbed before [`replay_tournament`] starts
    /// *reporting* predictions (the paper's 15-value training set, same
    /// default as [`EvalOptions`](crate::eval::EvalOptions)). The
    /// tournament itself scores candidates from the first observation
    /// they can predict — the training prefix is unscored in reports
    /// but not unlearned, so the leaderboard is already informed when
    /// reporting begins.
    pub training: usize,
    /// Rolling-error window per candidate on the global leaderboard:
    /// how many recent scored predictions the ranking considers.
    pub window: usize,
    /// Rolling-error window on the per-size-class leaderboards. Class
    /// boards see only same-class targets — a fraction of the stream —
    /// and the small regimes are far noisier, so they need a longer
    /// memory than the global board to rank candidates stably.
    pub class_window: usize,
    /// Leadership hysteresis: the relative rolling-MAPE improvement a
    /// challenger must show over the incumbent before taking the lead
    /// (`0.1` = 10% better). Damps noise-driven switching; `0.0`
    /// switches on any improvement.
    pub min_lead: f64,
    /// Hierarchical shrinkage for the per-class leaderboards, in
    /// pseudo-observations: a candidate's class score is its class
    /// errors blended with `class_prior` virtual samples at its
    /// *global* rolling MAPE. An immature class board (few same-class
    /// targets) therefore defers to the global ranking, and a mature
    /// one overrides it — without this, the first handful of targets
    /// in a noisy size class crowns essentially random leaders. `0.0`
    /// disables the blend.
    pub class_prior: f64,
    /// Name of the candidate seeded as every board's initial leader —
    /// the incumbent served before the boards have evidence, instead of
    /// whichever candidate scored luckily first. Defaults to the
    /// paper's overall recommendation (the classified median, `MED+C`);
    /// ignored when absent from the candidate pool.
    pub seed_champion: Option<&'static str>,
}

impl Default for TournamentOptions {
    fn default() -> Self {
        TournamentOptions {
            training: EvalOptions::default().training,
            window: 50,
            class_window: 400,
            min_lead: 0.0,
            class_prior: 10.0,
            seed_champion: Some("MED+C"),
        }
    }
}

/// An online tournament over a fixed candidate suite for one path.
pub struct Tournament {
    candidates: Vec<NamedPredictor>,
    /// Global rolling error per candidate (all scored targets).
    scores: Vec<RollingMape>,
    /// Per-size-class rolling error per candidate, indexed
    /// `[candidate][SizeClass::index()]`. Scored only on targets of the
    /// matching class, mirroring the paper's classification insight:
    /// the best predictor differs per size regime.
    class_scores: Vec<[RollingMape; 4]>,
    history: Vec<Observation>,
    opts: TournamentOptions,
    /// Current global leader (index into `candidates`), once anyone has
    /// scored.
    leader: Option<usize>,
    /// Current per-class leaders; a class with no scored targets yet
    /// has none and falls back to the global leader.
    class_leaders: [Option<usize>; 4],
    switches: u64,
}

impl Tournament {
    /// Tournament over an explicit candidate suite.
    pub fn new(candidates: Vec<NamedPredictor>, opts: TournamentOptions) -> Self {
        assert!(!candidates.is_empty(), "need at least one candidate");
        let n = candidates.len();
        let seed = opts
            .seed_champion
            .and_then(|name| candidates.iter().position(|c| c.name() == name));
        Tournament {
            candidates,
            scores: (0..n).map(|_| RollingMape::new(opts.window)).collect(),
            class_scores: (0..n)
                .map(|_| std::array::from_fn(|_| RollingMape::new(opts.class_window)))
                .collect(),
            history: Vec::new(),
            opts,
            leader: seed,
            class_leaders: [seed; 4],
            switches: 0,
        }
    }

    /// Tournament over the default pool: the paper's 30 variants plus
    /// the regression family.
    pub fn with_default_suite(opts: TournamentOptions) -> Self {
        Tournament::new(extended_suite(), opts)
    }

    /// Feed one measured transfer: every candidate is scored on how
    /// well it would have predicted it (zero measurements are skipped,
    /// per the shared error convention; non-finite errors are dropped
    /// by the rolling windows), the observation joins the history, and
    /// the leaderboard is refreshed.
    pub fn observe(&mut self, o: Observation) {
        let class = SizeClass::of_bytes(o.file_size).index();
        // tidy: allow(float-eq): exact zero-measurement sentinel, same convention as eval::abs_pct_error
        if !self.history.is_empty() && o.bandwidth_kbs != 0.0 {
            for i in 0..self.candidates.len() {
                if let Some(pred) =
                    self.candidates[i].predict(&self.history, o.at_unix, o.file_size)
                {
                    let err = (o.bandwidth_kbs - pred).abs() / o.bandwidth_kbs.abs() * 100.0;
                    self.scores[i].record(err);
                    self.class_scores[i][class].record(err);
                }
            }
        }
        self.history.push(o);
        self.refresh_leaders(class);
    }

    /// Rolling MAPE of a candidate by index, if it has scored in-window.
    pub fn rolling_mape(&self, idx: usize) -> Option<f64> {
        self.scores[idx].mape()
    }

    /// The candidate names, in registration order.
    pub fn candidate_names(&self) -> Vec<&str> {
        self.candidates.iter().map(|p| p.name()).collect()
    }

    /// The current global winner's name, once any candidate has scored.
    pub fn winner(&self) -> Option<&str> {
        self.leader.map(|i| self.candidates[i].name())
    }

    /// The current winner for one size class, once any candidate has
    /// scored on targets of that class.
    pub fn class_winner(&self, class: SizeClass) -> Option<&str> {
        self.class_leaders[class.index()].map(|i| self.candidates[i].name())
    }

    /// How many times leadership has changed hands between scored
    /// candidates, summed over the global and per-class leaderboards
    /// (initial takeovers are not switches).
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Number of absorbed observations.
    pub fn observed(&self) -> usize {
        self.history.len()
    }

    /// Timestamp of the newest absorbed observation — consumers (the
    /// replica broker) use `now - last_observed_at` as the estimate's
    /// age when ranking against other information sources.
    pub fn last_observed_at(&self) -> Option<u64> {
        self.history.last().map(|o| o.at_unix)
    }

    /// Total ranking order on the global leaderboard:
    /// `(rolling MAPE or +inf, name)` — see the module docs for the
    /// selection rule.
    fn rank_cmp(&self, a: usize, b: usize) -> std::cmp::Ordering {
        let ma = self.scores[a].mape().unwrap_or(f64::INFINITY);
        let mb = self.scores[b].mape().unwrap_or(f64::INFINITY);
        ma.total_cmp(&mb)
            .then_with(|| self.candidates[a].name().cmp(self.candidates[b].name()))
    }

    /// Refresh one leaderboard's leader slot from its per-candidate
    /// rolling MAPEs, applying the hysteresis rule and counting the
    /// switch. The best candidate is `(MAPE or +inf, name)`-minimal;
    /// an unscored board crowns nobody.
    fn refresh_board(
        candidates: &[NamedPredictor],
        mapes: &[Option<f64>],
        leader: &mut Option<usize>,
        switches: &mut u64,
        min_lead: f64,
    ) {
        let best = (0..candidates.len())
            .min_by(|&a, &b| {
                let ma = mapes[a].unwrap_or(f64::INFINITY);
                let mb = mapes[b].unwrap_or(f64::INFINITY);
                ma.total_cmp(&mb)
                    .then_with(|| candidates[a].name().cmp(candidates[b].name()))
            })
            .expect("candidates is non-empty by construction");
        if mapes[best].is_none() {
            // Nobody has scored on this board yet; no leader to crown.
            return;
        }
        match *leader {
            Some(old) if old != best => {
                // Hysteresis: the challenger must be `min_lead` relatively
                // better than the incumbent to take over. An incumbent
                // whose score left the window (`+inf`) always loses.
                let challenger = mapes[best].unwrap_or(f64::INFINITY);
                let incumbent = mapes[old].unwrap_or(f64::INFINITY);
                if challenger < incumbent * (1.0 - min_lead) {
                    *leader = Some(best);
                    *switches += 1;
                }
            }
            None => *leader = Some(best),
            _ => {}
        }
    }

    /// Refresh the global leaderboard and the one class leaderboard
    /// that just absorbed a target.
    fn refresh_leaders(&mut self, class: usize) {
        let global: Vec<Option<f64>> = self.scores.iter().map(RollingMape::mape).collect();
        Self::refresh_board(
            &self.candidates,
            &global,
            &mut self.leader,
            &mut self.switches,
            self.opts.min_lead,
        );
        // Class score with shrinkage: `class_prior` virtual samples at
        // the candidate's global MAPE anchor immature class boards to
        // the global ranking. A candidate unscored on both boards stays
        // unscored (None).
        let per_class: Vec<Option<f64>> = self
            .class_scores
            .iter()
            .zip(&global)
            .map(|(boards, g)| {
                let b = &boards[class];
                if self.opts.class_prior <= 0.0 {
                    return b.mape();
                }
                match (b.mape(), *g) {
                    (Some(cm), Some(gm)) => {
                        let n = b.count() as f64;
                        Some((n * cm + self.opts.class_prior * gm) / (n + self.opts.class_prior))
                    }
                    (cm, None) => cm,
                    (None, gm) => gm,
                }
            })
            .collect();
        Self::refresh_board(
            &self.candidates,
            &per_class,
            &mut self.class_leaders[class],
            &mut self.switches,
            self.opts.min_lead,
        );
    }

    /// Predict for a transfer of `target_size` at `now`: the target's
    /// size-class leader is tried first (the best candidate *for this
    /// size regime*), then the global leader, then the rest of the
    /// global ranking (ties broken by name) until someone answers.
    /// Returns `(candidate name, prediction)`.
    pub fn predict(&self, now: u64, target_size: u64) -> Option<(&str, f64)> {
        let class = SizeClass::of_bytes(target_size).index();
        for i in [self.class_leaders[class], self.leader]
            .into_iter()
            .flatten()
        {
            if let Some(pred) = self.candidates[i].predict(&self.history, now, target_size) {
                return Some((self.candidates[i].name(), pred));
            }
        }
        let mut order: Vec<usize> = (0..self.candidates.len()).collect();
        order.sort_by(|&a, &b| self.rank_cmp(a, b));
        for i in order {
            if let Some(pred) = self.candidates[i].predict(&self.history, now, target_size) {
                return Some((self.candidates[i].name(), pred));
            }
        }
        None
    }
}

/// The result of replaying a series through a tournament.
#[derive(Debug, Clone)]
pub struct TournamentReport {
    /// Per-target outcomes in the same shape as a fixed predictor's
    /// report (name `TOURN`), so MAPE/percentile accessors apply.
    pub report: PredictorReport,
    /// Leadership changes over the replay.
    pub switches: u64,
    /// The winner at the end of the replay, if anyone scored.
    pub final_winner: Option<String>,
}

/// Replay a time-ordered series through a tournament, mirroring the
/// evaluation engines' protocol: after the training prefix, each
/// observation is first predicted (scored into the report), then fed to
/// the tournament. Emits `predict.tournament.*` metrics to `obs`.
pub fn replay_tournament(
    series: &[Observation],
    mut t: Tournament,
    obs: &ObsSink,
) -> TournamentReport {
    let training = t.opts.training;
    let mut report = PredictorReport {
        name: "TOURN".to_string(),
        outcomes: Vec::new(),
        declined: 0,
    };
    for (i, o) in series.iter().enumerate() {
        if i >= training {
            match t.predict(o.at_unix, o.file_size) {
                Some((_, pred)) => report.outcomes.push(PredictionOutcome {
                    at_unix: o.at_unix,
                    measured: o.bandwidth_kbs,
                    predicted: pred,
                    class: SizeClass::of_bytes(o.file_size),
                }),
                None => report.declined += 1,
            }
        }
        t.observe(*o);
    }
    obs.inc_by(
        names::PREDICT_TOURNAMENT_PREDICTIONS,
        report.outcomes.len() as u64,
    );
    obs.inc_by(names::PREDICT_TOURNAMENT_SWITCHES, t.switches());
    obs.gauge(
        names::PREDICT_TOURNAMENT_CANDIDATES,
        t.candidates.len() as f64,
    );
    TournamentReport {
        report,
        switches: t.switches(),
        final_winner: t.winner().map(str::to_string),
    }
}

/// Independent tournaments per source/destination pair. Deterministic
/// iteration (BTreeMap) keeps multi-pair replays reproducible.
pub struct PairTournament {
    opts: TournamentOptions,
    suite: fn() -> Vec<NamedPredictor>,
    pairs: BTreeMap<(String, String), Tournament>,
}

impl PairTournament {
    /// One tournament per pair, each over the default extended suite.
    pub fn new(opts: TournamentOptions) -> Self {
        PairTournament {
            opts,
            suite: extended_suite,
            pairs: BTreeMap::new(),
        }
    }

    /// Feed one observation for a pair, creating its tournament on
    /// first contact.
    pub fn observe(&mut self, src: &str, dst: &str, o: Observation) {
        self.tournament_mut(src, dst).observe(o);
    }

    /// Predict for a pair; `None` for never-seen pairs.
    pub fn predict(&self, src: &str, dst: &str, now: u64, target_size: u64) -> Option<(&str, f64)> {
        self.pairs
            .get(&(src.to_string(), dst.to_string()))
            .and_then(|t| t.predict(now, target_size))
    }

    /// The pair's tournament, created on demand.
    pub fn tournament_mut(&mut self, src: &str, dst: &str) -> &mut Tournament {
        let opts = self.opts;
        let suite = self.suite;
        self.pairs
            .entry((src.to_string(), dst.to_string()))
            .or_insert_with(|| Tournament::new(suite(), opts))
    }

    /// The pair's tournament, if it exists.
    pub fn tournament(&self, src: &str, dst: &str) -> Option<&Tournament> {
        self.pairs.get(&(src.to_string(), dst.to_string()))
    }

    /// Total leadership switches across pairs.
    pub fn switches(&self) -> u64 {
        self.pairs.values().map(Tournament::switches).sum()
    }

    /// Number of tracked pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no pair has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::PAPER_MB;
    use crate::last::LastValue;
    use crate::mean::MeanPredictor;
    use crate::window::Window;

    fn obs(i: u64, bw: f64) -> Observation {
        Observation::new(1_000 + i * 60, bw, 100 * PAPER_MB)
    }

    fn small_pool() -> Vec<NamedPredictor> {
        vec![
            NamedPredictor::new(Box::new(LastValue::new()), false),
            NamedPredictor::new(Box::new(MeanPredictor::new(Window::All)), false),
        ]
    }

    fn opts(training: usize, window: usize) -> TournamentOptions {
        TournamentOptions {
            training,
            window,
            class_window: window,
            ..TournamentOptions::default()
        }
    }

    #[test]
    fn rolling_window_recovers_from_regime_change() {
        // Phase 1: alternating noise — AVG wins. Phase 2: a step series
        // — LV must take the lead once the window rolls over, which the
        // all-time selector would take far longer to concede.
        let mut t = Tournament::new(small_pool(), opts(5, 10));
        for i in 0..40 {
            let bw = if i % 2 == 0 { 90.0 } else { 110.0 };
            t.observe(obs(i, bw));
        }
        assert_eq!(t.winner(), Some("AVG"));
        for i in 40..80 {
            let bw = if (i / 10) % 2 == 0 { 500.0 } else { 1_500.0 };
            t.observe(obs(i, bw));
        }
        assert_eq!(t.winner(), Some("LV"));
        assert!(t.switches() >= 1);
    }

    #[test]
    fn ties_break_by_name_regardless_of_order() {
        let mk = |reversed: bool| {
            let mut pool = vec![
                NamedPredictor::new(Box::new(MeanPredictor::new(Window::All)), false),
                NamedPredictor::new(Box::new(MeanPredictor::new(Window::LastN(1_000))), false),
            ];
            if reversed {
                pool.reverse();
            }
            let mut t = Tournament::new(pool, opts(2, 10));
            for i in 0..12 {
                t.observe(obs(i, 100.0 + (i % 3) as f64));
            }
            t.winner().map(str::to_string)
        };
        assert_eq!(mk(false), Some("AVG".to_string()));
        assert_eq!(mk(true), Some("AVG".to_string()));
    }

    #[test]
    fn nan_measurements_never_reach_the_windows() {
        let mut t = Tournament::new(small_pool(), opts(2, 10));
        for i in 0..8 {
            t.observe(obs(i, 100.0));
        }
        t.observe(obs(8, f64::NAN));
        t.observe(obs(9, 100.0));
        for i in 0..2 {
            if let Some(m) = t.rolling_mape(i) {
                assert!(m.is_finite(), "candidate {i} mape {m}");
            }
        }
        assert!(t.winner().is_some());
    }

    #[test]
    fn zero_measurements_skip_scoring() {
        let mut t = Tournament::new(small_pool(), opts(2, 10));
        for i in 0..6 {
            t.observe(obs(i, 100.0));
        }
        let counts: Vec<usize> = (0..2).map(|i| t.scores[i].count()).collect();
        t.observe(obs(6, 0.0));
        assert_eq!(
            counts,
            (0..2).map(|i| t.scores[i].count()).collect::<Vec<_>>()
        );
        assert_eq!(t.observed(), 7);
    }

    #[test]
    fn initial_takeover_is_not_a_switch() {
        let mut t = Tournament::new(small_pool(), opts(2, 10));
        for i in 0..6 {
            t.observe(obs(i, 100.0));
        }
        assert!(t.winner().is_some());
        assert_eq!(t.switches(), 0);
    }

    #[test]
    fn predict_falls_back_when_winner_declines() {
        // Classified AVG declines for an unseen class; plain AVG answers.
        let pool = vec![
            NamedPredictor::new(Box::new(MeanPredictor::new(Window::All)), true),
            NamedPredictor::new(Box::new(MeanPredictor::new(Window::All)), false),
        ];
        let mut t = Tournament::new(pool, opts(2, 10));
        for i in 0..10 {
            t.observe(obs(i, 100.0));
        }
        // Target in the 1 GB class, which has no history: the classified
        // variant declines, the unclassified one serves.
        let (name, pred) = t.predict(10_000, 1_000 * PAPER_MB).unwrap();
        assert_eq!(name, "AVG");
        assert_eq!(pred, 100.0);
    }

    #[test]
    fn seeded_champion_serves_until_dethroned() {
        let mut t = Tournament::new(
            small_pool(),
            TournamentOptions {
                seed_champion: Some("AVG"),
                ..opts(2, 10)
            },
        );
        // One observation: nothing is scored yet, the seed serves.
        t.observe(obs(0, 100.0));
        assert_eq!(t.winner(), Some("AVG"));
        assert_eq!(t.predict(10_000, 100 * PAPER_MB).unwrap().0, "AVG");
        // A steep ramp: LV tracks it, AVG lags far behind — the seed is
        // dethroned on evidence, and that dethroning is a switch.
        for i in 1..12 {
            t.observe(obs(i, 100.0 * (i + 1) as f64));
        }
        assert_eq!(t.winner(), Some("LV"));
        assert!(t.switches() >= 1);
    }

    #[test]
    fn immature_class_board_defers_to_global() {
        // Alternating noise: AVG (~10% rolling error) beats LV (~20%).
        // Then a single 1 GB target that LV happens to nail exactly.
        let series: Vec<Observation> = (0..30)
            .map(|i| obs(i, if i % 2 == 0 { 90.0 } else { 110.0 }))
            .chain([Observation::new(1_000 + 30 * 60, 110.0, 1_000 * PAPER_MB)])
            .collect();
        let run = |class_prior: f64| {
            let mut t = Tournament::new(
                small_pool(),
                TournamentOptions {
                    class_prior,
                    ..opts(2, 10)
                },
            );
            for o in &series {
                t.observe(*o);
            }
            t.class_winner(SizeClass::C1GB).map(str::to_string)
        };
        // Unshrunk, one lucky sample crowns LV; with the prior the
        // immature board stays with the globally stronger AVG.
        assert_eq!(run(0.0), Some("LV".to_string()));
        assert_eq!(run(10.0), Some("AVG".to_string()));
    }

    #[test]
    fn same_series_replays_bit_identically() {
        let series: Vec<Observation> = (0..80)
            .map(|i| obs(i, 200.0 + (i as f64 * 13.0) % 70.0))
            .collect();
        let run = || {
            replay_tournament(
                &series,
                Tournament::new(small_pool(), opts(5, 10)),
                &ObsSink::disabled(),
            )
        };
        let (a, b) = (run(), run());
        assert_eq!(a.switches, b.switches);
        assert_eq!(a.final_winner, b.final_winner);
        assert_eq!(a.report.outcomes.len(), b.report.outcomes.len());
        for (x, y) in a.report.outcomes.iter().zip(&b.report.outcomes) {
            assert_eq!(x.predicted.to_bits(), y.predicted.to_bits());
        }
    }

    #[test]
    fn replay_produces_fixed_report_shape() {
        let series: Vec<Observation> = (0..60)
            .map(|i| obs(i, 300.0 + (i as f64 * 17.0) % 90.0))
            .collect();
        let t = Tournament::new(small_pool(), opts(15, 25));
        let out = replay_tournament(&series, t, &ObsSink::disabled());
        assert_eq!(out.report.name, "TOURN");
        assert_eq!(
            out.report.outcomes.len() + out.report.declined,
            series.len() - 15
        );
        assert!(out.report.mape().is_some());
        assert!(out.final_winner.is_some());
    }

    #[test]
    fn pair_tournaments_are_independent() {
        let mut pt = PairTournament::new(opts(2, 10));
        for i in 0..8 {
            pt.observe("anl", "isi", obs(i, 100.0));
            pt.observe("anl", "lbl", obs(i, 9_000.0));
        }
        assert_eq!(pt.len(), 2);
        let (_, a) = pt.predict("anl", "isi", 10_000, 100 * PAPER_MB).unwrap();
        let (_, b) = pt.predict("anl", "lbl", 10_000, 100 * PAPER_MB).unwrap();
        assert_eq!(a, 100.0);
        assert_eq!(b, 9_000.0);
        assert!(pt.predict("anl", "ucb", 10_000, PAPER_MB).is_none());
        assert!(!pt.is_empty());
    }
}
