//! The predictor abstraction.
//!
//! A predictor maps a time-ordered throughput history to an estimate of
//! the *next* transfer's bandwidth. Every technique in the paper's
//! Figure 4 is the composition of a history [`Window`](crate::window::Window)
//! with one of three estimator families (mean, median, AR); this module
//! defines the common trait they implement.

use crate::observation::Observation;
use crate::window::Window;

/// Structural description of a predictor: which estimator family it
/// belongs to and which window it applies. The incremental replay
/// engine ([`crate::incremental`]) uses this to carry rolling state
/// forward instead of re-deriving every prediction from the full
/// history slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorSpec {
    /// Arithmetic mean over a window (`AVG*`).
    Mean(Window),
    /// Median over a window (`MED*`).
    Median(Window),
    /// AR(1) fit over a window with mean fallback (`AR*`).
    Ar(Window),
    /// Last observed value (`LV`).
    Last,
}

/// Estimate the next transfer's bandwidth from history.
pub trait Predictor: Send + Sync {
    /// The predictor's display name (paper convention: `AVG25`, `MED5`,
    /// `AR10d`, `LV`, ...).
    fn name(&self) -> &str;

    /// Predict the bandwidth (KB/s) of a transfer starting at `now`,
    /// given the history of observations strictly preceding it. Returns
    /// `None` when the (windowed) history is insufficient for this
    /// technique.
    fn predict(&self, history: &[Observation], now: u64) -> Option<f64>;

    /// Structural description of this predictor, if it belongs to one of
    /// the standard families. Predictors returning `Some` are eligible
    /// for the incremental replay fast path; the default `None` keeps
    /// custom predictors on the (equivalent) slice-based path.
    fn spec(&self) -> Option<PredictorSpec> {
        None
    }
}

/// Extract bandwidth values from an observation slice.
pub(crate) fn values(obs: &[Observation]) -> Vec<f64> {
    obs.iter().map(|o| o.bandwidth_kbs).collect()
}

#[cfg(test)]
pub(crate) mod testutil {
    use crate::observation::Observation;

    /// Build a history with 1-second spacing from bandwidth values.
    pub fn history(values: &[f64]) -> Vec<Observation> {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| Observation {
                at_unix: 1_000 + i as u64,
                bandwidth_kbs: v,
                file_size: 1_000_000,
            })
            .collect()
    }

    /// Build a history with explicit (time, value) pairs.
    pub fn timed_history(pairs: &[(u64, f64)]) -> Vec<Observation> {
        pairs
            .iter()
            .map(|&(t, v)| Observation {
                at_unix: t,
                bandwidth_kbs: v,
                file_size: 1_000_000,
            })
            .collect()
    }
}
