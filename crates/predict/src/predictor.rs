//! The predictor abstraction.
//!
//! A predictor maps a time-ordered throughput history to an estimate of
//! the *next* transfer's bandwidth. Every technique in the paper's
//! Figure 4 is the composition of a history [`Window`](crate::window::Window)
//! with one of three estimator families (mean, median, AR); this module
//! defines the common trait they implement.

use crate::observation::Observation;
use crate::regression::RegKind;
use crate::window::Window;

/// Structural description of a predictor: which estimator family it
/// belongs to and which window it applies. The incremental replay
/// engine ([`crate::incremental`]) uses this to carry rolling state
/// forward instead of re-deriving every prediction from the full
/// history slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorSpec {
    /// Arithmetic mean over a window (`AVG*`).
    Mean(Window),
    /// Median over a window (`MED*`).
    Median(Window),
    /// AR(1) fit over a window with mean fallback (`AR*`).
    Ar(Window),
    /// Last observed value (`LV`).
    Last,
    /// Covariate regression over a window with mean fallback (`REG*`,
    /// see [`crate::regression`]).
    Regression(RegKind, Window),
}

impl std::fmt::Display for PredictorSpec {
    /// The paper's display name for the spec: estimator-family prefix
    /// (`AVG`/`MED`/`AR`, the fixed `LV`, or `REG` plus a covariate
    /// token) plus the window suffix from [`Window::name_suffix`]
    /// (`AVG25`, `MED5`, `AR10d`, `AVG15hr`, `REGsz25`). Inverse of
    /// [`FromStr`](std::str::FromStr).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            PredictorSpec::Mean(w) => write!(f, "AVG{}", w.name_suffix()),
            PredictorSpec::Median(w) => write!(f, "MED{}", w.name_suffix()),
            PredictorSpec::Ar(w) => write!(f, "AR{}", w.name_suffix()),
            PredictorSpec::Last => write!(f, "LV"),
            PredictorSpec::Regression(k, w) => write!(f, "REG{}{}", k.token(), w.name_suffix()),
        }
    }
}

/// Error parsing a [`PredictorSpec`] from its display name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSpecError {
    /// The string that failed to parse.
    pub input: String,
}

impl std::fmt::Display for ParseSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unrecognized predictor spec {:?} (expected LV, AVG/MED/AR, or \
             REG with a covariate token like sz/sq/str/buf/tod, each with an \
             optional window suffix like 25, 15hr, 10d)",
            self.input
        )
    }
}

impl std::error::Error for ParseSpecError {}

/// Parse a window name-suffix: empty = all data, digits = last-N,
/// `{n}d`/`{n}hr`/`{n}s` = temporal. Inverse of [`Window::name_suffix`].
fn parse_window_suffix(s: &str) -> Option<Window> {
    if s.is_empty() {
        return Some(Window::All);
    }
    if let Some(days) = s.strip_suffix('d') {
        let d: u64 = days.parse().ok()?;
        return Some(Window::LastSeconds(d.checked_mul(86_400)?));
    }
    if let Some(hours) = s.strip_suffix("hr") {
        let h: u64 = hours.parse().ok()?;
        return Some(Window::LastSeconds(h.checked_mul(3_600)?));
    }
    if let Some(secs) = s.strip_suffix('s') {
        return Some(Window::LastSeconds(secs.parse().ok()?));
    }
    Some(Window::LastN(s.parse().ok()?))
}

impl std::str::FromStr for PredictorSpec {
    type Err = ParseSpecError;

    /// Parse a paper-convention predictor name (`AVG`, `MED5`, `AR10d`,
    /// `AVG15hr`, `LV`) back into its spec. Inverse of
    /// [`Display`](std::fmt::Display); the classification suffix `+C`
    /// is *not* accepted here — it is a property of the
    /// [`NamedPredictor`](crate::registry::NamedPredictor) wrapper, not
    /// of the base spec (see
    /// [`predictor_by_name`](crate::registry::predictor_by_name)).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseSpecError {
            input: s.to_string(),
        };
        if s == "LV" {
            return Ok(PredictorSpec::Last);
        }
        if let Some(rest) = s.strip_prefix("REG") {
            // The covariate token is purely alphabetic and the window
            // suffix starts with a digit, so the split is unambiguous.
            let (kind, suffix) = RegKind::strip_token(rest).ok_or_else(err)?;
            return parse_window_suffix(suffix)
                .map(|w| PredictorSpec::Regression(kind, w))
                .ok_or_else(err);
        }
        if let Some(rest) = s.strip_prefix("AVG") {
            return parse_window_suffix(rest)
                .map(PredictorSpec::Mean)
                .ok_or_else(err);
        }
        if let Some(rest) = s.strip_prefix("MED") {
            return parse_window_suffix(rest)
                .map(PredictorSpec::Median)
                .ok_or_else(err);
        }
        if let Some(rest) = s.strip_prefix("AR") {
            return parse_window_suffix(rest)
                .map(PredictorSpec::Ar)
                .ok_or_else(err);
        }
        Err(err())
    }
}

/// Estimate the next transfer's bandwidth from history.
pub trait Predictor: Send + Sync {
    /// The predictor's display name (paper convention: `AVG25`, `MED5`,
    /// `AR10d`, `LV`, ...).
    fn name(&self) -> &str;

    /// Predict the bandwidth (KB/s) of a transfer starting at `now`,
    /// given the history of observations strictly preceding it. Returns
    /// `None` when the (windowed) history is insufficient for this
    /// technique.
    fn predict(&self, history: &[Observation], now: u64) -> Option<f64>;

    /// Predict with the target transfer's size announced. The paper's
    /// history techniques ignore it (the default delegates to
    /// [`predict`](Predictor::predict)); the regression family uses it
    /// as the size covariate of the target.
    fn predict_sized(&self, history: &[Observation], now: u64, target_size: u64) -> Option<f64> {
        let _ = target_size;
        self.predict(history, now)
    }

    /// Structural description of this predictor, if it belongs to one of
    /// the standard families. Predictors returning `Some` are eligible
    /// for the incremental replay fast path; the default `None` keeps
    /// custom predictors on the (equivalent) slice-based path.
    fn spec(&self) -> Option<PredictorSpec> {
        None
    }
}

/// Extract bandwidth values from an observation slice.
pub(crate) fn values(obs: &[Observation]) -> Vec<f64> {
    obs.iter().map(|o| o.bandwidth_kbs).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::str::FromStr;

    #[test]
    fn display_matches_paper_names() {
        assert_eq!(PredictorSpec::Mean(Window::All).to_string(), "AVG");
        assert_eq!(PredictorSpec::Median(Window::LastN(5)).to_string(), "MED5");
        assert_eq!(
            PredictorSpec::Mean(Window::LastSeconds(15 * 3_600)).to_string(),
            "AVG15hr"
        );
        assert_eq!(
            PredictorSpec::Ar(Window::LastSeconds(10 * 86_400)).to_string(),
            "AR10d"
        );
        assert_eq!(PredictorSpec::Last.to_string(), "LV");
        assert_eq!(
            PredictorSpec::Median(Window::LastSeconds(90)).to_string(),
            "MED90s"
        );
        assert_eq!(
            PredictorSpec::Regression(RegKind::SizeLinear, Window::All).to_string(),
            "REGsz"
        );
        assert_eq!(
            PredictorSpec::Regression(RegKind::TimeOfDay, Window::LastSeconds(25 * 3_600))
                .to_string(),
            "REGtod25hr"
        );
        assert_eq!(
            PredictorSpec::Regression(RegKind::Streams, Window::LastN(25)).to_string(),
            "REGstr25"
        );
    }

    #[test]
    fn from_str_inverts_display_on_figure4() {
        for name in [
            "AVG",
            "MED",
            "AR",
            "LV",
            "AVG5",
            "MED5",
            "AVG15",
            "MED15",
            "AVG25",
            "MED25",
            "AVG5hr",
            "AVG15hr",
            "AVG25hr",
            "AR5d",
            "AR10d",
            "REGsz",
            "REGsz25",
            "REGsq",
            "REGstr",
            "REGbuf",
            "REGtod",
            "REGtod25hr",
        ] {
            let spec = PredictorSpec::from_str(name).unwrap();
            assert_eq!(spec.to_string(), name, "round trip of {name}");
        }
    }

    #[test]
    fn junk_is_rejected_with_context() {
        for bad in [
            "", "avg5", "LV5", "AVGx", "AR5w", "MED-3", "XYZ", "+C", "AVG5hr+C", "REG", "REG5",
            "REGxyz", "REGsz5w", "REGsz+C",
        ] {
            let e = PredictorSpec::from_str(bad).unwrap_err();
            assert_eq!(e.input, bad);
            assert!(e.to_string().contains(&format!("{bad:?}")), "{e}");
        }
    }

    #[test]
    fn overflowing_suffixes_fail_cleanly() {
        assert!(PredictorSpec::from_str("AR999999999999999999999d").is_err());
        let e = PredictorSpec::from_str(&format!("AVG{}d", u64::MAX)).unwrap_err();
        assert!(e.to_string().contains("unrecognized"));
    }

    fn arb_window() -> impl Strategy<Value = Window> {
        prop_oneof![
            Just(Window::All),
            (0usize..10_000).prop_map(Window::LastN),
            (0u64..100_000_000).prop_map(Window::LastSeconds),
        ]
    }

    fn arb_spec() -> impl Strategy<Value = PredictorSpec> {
        let arb_kind = (0..RegKind::ALL.len()).prop_map(|i| RegKind::ALL[i]);
        prop_oneof![
            arb_window().prop_map(PredictorSpec::Mean),
            arb_window().prop_map(PredictorSpec::Median),
            arb_window().prop_map(PredictorSpec::Ar),
            Just(PredictorSpec::Last),
            (arb_kind, arb_window()).prop_map(|(k, w)| PredictorSpec::Regression(k, w)),
        ]
    }

    proptest! {
        // Regression for the spec round-trip: every displayable spec
        // must parse back to itself, whatever unit name_suffix picked.
        #[test]
        fn display_from_str_round_trips(spec in arb_spec()) {
            let name = spec.to_string();
            let parsed = PredictorSpec::from_str(&name).unwrap();
            prop_assert_eq!(parsed, spec, "{}", name);
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use crate::observation::Observation;

    /// Build a history with 1-second spacing from bandwidth values.
    pub fn history(values: &[f64]) -> Vec<Observation> {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| Observation {
                at_unix: 1_000 + i as u64,
                bandwidth_kbs: v,
                file_size: 1_000_000,
                streams: 1,
                tcp_buffer: 0,
            })
            .collect()
    }

    /// Build a history with explicit (time, value) pairs.
    pub fn timed_history(pairs: &[(u64, f64)]) -> Vec<Observation> {
        pairs
            .iter()
            .map(|&(t, v)| Observation {
                at_unix: t,
                bandwidth_kbs: v,
                file_size: 1_000_000,
                streams: 1,
                tcp_buffer: 0,
            })
            .collect()
    }
}
