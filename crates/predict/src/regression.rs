//! Regression predictor family: bandwidth fit against transfer
//! covariates rather than against its own past values.
//!
//! The follow-up paper ("Using Regression Techniques to Predict Large
//! Data Transfers", Vazhkudai & Schopf) observes that achieved bandwidth
//! correlates with properties of the transfer itself — file size, stream
//! count, TCP buffer size — and with the time of day, and that fitting
//! those covariates beats purely autoregressive history techniques. This
//! module adds that family on top of the paper's windows:
//!
//! * `REGsz*` — linear in file size (MB),
//! * `REGsq*` — quadratic in file size,
//! * `REGstr*` — linear in parallel stream count,
//! * `REGbuf*` — linear in TCP buffer size (MB),
//! * `REGtod*` — first harmonic of the time of day
//!   (`sin`/`cos` of the 24-hour phase, the diurnal load cycle).
//!
//! Each fit solves the normal equations of `y = a + Σ b_j f_j(o)` over
//! the windowed history via a centered Gram accumulator ([`GramAcc`]).
//! The accumulator is associative, so the incremental replay engine
//! maintains it in the same two-stack sliding shape as its AR
//! accumulators and both engines share [`GramAcc::fit`] — they agree to
//! floating-point reassociation, like the rest of the suite.
//!
//! Degenerate covariates are the common case, not the exception: a
//! campaign where every transfer uses the same stream count (ours does)
//! gives `REGstr` a zero-variance regressor. Mirroring
//! [`crate::stats::ols`], the fit then returns `None` and the predictor
//! falls back to the windowed mean — the same graceful degradation the
//! AR family uses — rather than emitting NaN.

use crate::classify::PAPER_MB;
use crate::observation::Observation;
use crate::predictor::{values, Predictor, PredictorSpec};
use crate::stats;
use crate::window::Window;

/// Maximum number of non-intercept basis functions.
pub const MAX_DIM: usize = 2;

/// Seconds per day, the period of the time-of-day harmonic.
const DAY_SECS: u64 = 86_400;

/// Which covariate family a regression predictor fits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegKind {
    /// `y = a + b * size_mb` (`REGsz`).
    SizeLinear,
    /// `y = a + b * size_mb + c * size_mb^2` (`REGsq`).
    SizeQuad,
    /// `y = a + b * streams` (`REGstr`).
    Streams,
    /// `y = a + b * buffer_mb` (`REGbuf`).
    Buffer,
    /// `y = a + b sin(phase) + c cos(phase)` over the 24-hour day
    /// (`REGtod`).
    TimeOfDay,
}

impl RegKind {
    /// All kinds, in suite registration order.
    pub const ALL: [RegKind; 5] = [
        RegKind::SizeLinear,
        RegKind::SizeQuad,
        RegKind::Streams,
        RegKind::Buffer,
        RegKind::TimeOfDay,
    ];

    /// The short alphabetic name token (`sz`, `sq`, `str`, `buf`,
    /// `tod`). Tokens contain no digits, so a window suffix can follow
    /// unambiguously (`REGsz25` parses as `sz` + `25`, never `sz2` +
    /// `5`).
    pub fn token(self) -> &'static str {
        match self {
            RegKind::SizeLinear => "sz",
            RegKind::SizeQuad => "sq",
            RegKind::Streams => "str",
            RegKind::Buffer => "buf",
            RegKind::TimeOfDay => "tod",
        }
    }

    /// Inverse of [`RegKind::token`]: split `sz25` into the kind and the
    /// window-suffix remainder.
    pub(crate) fn strip_token(s: &str) -> Option<(RegKind, &str)> {
        RegKind::ALL
            .iter()
            .find_map(|&k| s.strip_prefix(k.token()).map(|rest| (k, rest)))
    }

    /// Number of non-intercept basis functions.
    pub fn dim(self) -> usize {
        match self {
            RegKind::SizeLinear | RegKind::Streams | RegKind::Buffer => 1,
            RegKind::SizeQuad | RegKind::TimeOfDay => 2,
        }
    }

    /// Basis-function values for a historical observation. Unused
    /// dimensions are zero.
    pub fn basis_of_obs(self, o: &Observation) -> [f64; MAX_DIM] {
        self.basis(o.at_unix, o.file_size, o.streams, o.tcp_buffer)
    }

    /// Basis-function values for the *target* transfer: its size and
    /// start time are known up front; its tuning covariates (streams,
    /// buffer) are taken from the most recent in-window observation,
    /// the best available guess for how the next transfer will be run.
    pub fn basis_of_target(self, now: u64, target_size: u64, last: &Observation) -> [f64; MAX_DIM] {
        self.basis(now, target_size, last.streams, last.tcp_buffer)
    }

    fn basis(self, at_unix: u64, size: u64, streams: u32, buffer: u64) -> [f64; MAX_DIM] {
        let size_mb = size as f64 / PAPER_MB as f64;
        match self {
            RegKind::SizeLinear => [size_mb, 0.0],
            RegKind::SizeQuad => [size_mb, size_mb * size_mb],
            RegKind::Streams => [streams as f64, 0.0],
            RegKind::Buffer => [buffer as f64 / PAPER_MB as f64, 0.0],
            RegKind::TimeOfDay => {
                let phase =
                    2.0 * std::f64::consts::PI * (at_unix % DAY_SECS) as f64 / DAY_SECS as f64;
                [phase.sin(), phase.cos()]
            }
        }
    }
}

/// Associative Gram-matrix accumulator for the normal equations of
/// `y = a + Σ b_j f_j`: observation count, Σf, Σy, ΣffT and Σfy. Merging
/// two accumulators is componentwise addition, which is what lets the
/// incremental engine keep it in a two-stack sliding window
/// (`RollingGram` in [`crate::incremental`]) while the naive engine sums
/// the windowed slice directly — both reach the same
/// [`fit`](GramAcc::fit).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GramAcc {
    /// Observation count.
    pub n: usize,
    /// Σ f_j per basis dimension.
    pub sf: [f64; MAX_DIM],
    /// Σ y.
    pub sy: f64,
    /// Σ f_i f_j (symmetric).
    pub sff: [[f64; MAX_DIM]; MAX_DIM],
    /// Σ f_j y.
    pub sfy: [f64; MAX_DIM],
}

impl GramAcc {
    /// Minimum observations before a fit is trusted, mirroring
    /// [`crate::arima::ArPredictor::MIN_POINTS`].
    pub const MIN_POINTS: usize = 4;

    /// Accumulator for a single observation.
    pub fn of_obs(basis: [f64; MAX_DIM], y: f64) -> GramAcc {
        let mut acc = GramAcc {
            n: 1,
            sf: basis,
            sy: y,
            ..GramAcc::default()
        };
        for i in 0..MAX_DIM {
            acc.sfy[i] = basis[i] * y;
            for j in 0..MAX_DIM {
                acc.sff[i][j] = basis[i] * basis[j];
            }
        }
        acc
    }

    /// Merge two accumulators (componentwise sums).
    pub fn merge(self, o: GramAcc) -> GramAcc {
        let mut out = GramAcc {
            n: self.n + o.n,
            sy: self.sy + o.sy,
            ..GramAcc::default()
        };
        for i in 0..MAX_DIM {
            out.sf[i] = self.sf[i] + o.sf[i];
            out.sfy[i] = self.sfy[i] + o.sfy[i];
            for j in 0..MAX_DIM {
                out.sff[i][j] = self.sff[i][j] + o.sff[i][j];
            }
        }
        out
    }

    /// Accumulate a windowed slice (the naive engine's path).
    pub fn from_slice(sel: &[Observation], kind: RegKind) -> GramAcc {
        let mut acc = GramAcc::default();
        for o in sel {
            acc = acc.merge(GramAcc::of_obs(kind.basis_of_obs(o), o.bandwidth_kbs));
        }
        acc
    }

    /// Solve the normal equations for `[a, b_1, .., b_dim]`.
    ///
    /// Returns `None` — the caller falls back to the windowed mean —
    /// when the sample is small (`n < MIN_POINTS`), when any covariate
    /// is degenerate (zero variance under the same relative threshold
    /// as [`crate::stats::ols`]; e.g. every transfer sharing one file
    /// size or stream count), or when the covariates are collinear
    /// (vanishing elimination pivot). This is the regression family's
    /// answer to the `stats::ols` degenerate-x contract: constant
    /// covariates degrade gracefully instead of emitting NaN.
    pub fn fit(self, dim: usize) -> Option<[f64; MAX_DIM + 1]> {
        debug_assert!((1..=MAX_DIM).contains(&dim));
        if self.n < Self::MIN_POINTS {
            return None;
        }
        let n = self.n as f64;
        let mut m = [0.0; MAX_DIM];
        for (mj, sfj) in m.iter_mut().zip(self.sf).take(dim) {
            *mj = sfj / n;
        }
        let my = self.sy / n;
        // Centered system: C b = d, then a = my - Σ b_j m_j.
        let mut c = [[0.0; MAX_DIM]; MAX_DIM];
        let mut d = [0.0; MAX_DIM];
        for i in 0..dim {
            d[i] = self.sfy[i] - n * m[i] * my;
            for j in 0..dim {
                c[i][j] = self.sff[i][j] - n * m[i] * m[j];
            }
        }
        // Per-covariate degeneracy, same relative threshold as
        // `stats::ols` (and identical to it at dim 1).
        for j in 0..dim {
            if c[j][j] < 1e-12 * (1.0 + m[j] * m[j]) * n {
                return None;
            }
        }
        // Gaussian elimination with partial pivoting on the (tiny)
        // centered system; a vanishing pivot means collinear covariates.
        let pivot_floor = 1e-12 * (1.0 + (0..dim).map(|j| c[j][j]).fold(0.0, f64::max));
        let mut b = [0.0; MAX_DIM];
        match dim {
            1 => {
                b[0] = d[0] / c[0][0];
            }
            _ => {
                if c[1][0].abs() > c[0][0].abs() {
                    c.swap(0, 1);
                    d.swap(0, 1);
                }
                let factor = c[1][0] / c[0][0];
                let p2 = c[1][1] - factor * c[0][1];
                if p2.abs() < pivot_floor {
                    return None;
                }
                b[1] = (d[1] - factor * d[0]) / p2;
                b[0] = (d[0] - c[0][1] * b[1]) / c[0][0];
            }
        }
        let mut coef = [0.0; MAX_DIM + 1];
        coef[0] = my;
        for j in 0..dim {
            coef[0] -= b[j] * m[j];
        }
        coef[1..=dim].copy_from_slice(&b[..dim]);
        if coef.iter().any(|v| !v.is_finite()) {
            return None;
        }
        Some(coef)
    }
}

/// Evaluate fitted coefficients at a target basis, clamped to a tiny
/// positive floor (negative bandwidth is meaningless and a zero
/// prediction would break percentage errors), like the AR family.
pub fn eval_fit(coef: [f64; MAX_DIM + 1], basis: [f64; MAX_DIM], dim: usize) -> f64 {
    let mut y = coef[0];
    for j in 0..dim {
        y += coef[j + 1] * basis[j];
    }
    y.max(1e-6)
}

/// Covariate-regression predictor over a history window.
#[derive(Debug, Clone)]
pub struct RegressionPredictor {
    name: String,
    kind: RegKind,
    window: Window,
}

impl RegressionPredictor {
    /// Regression of `kind` over `window`; named `REG` + kind token +
    /// window suffix (`REGsz`, `REGtod25hr`, ...).
    pub fn new(kind: RegKind, window: Window) -> Self {
        RegressionPredictor {
            name: format!("REG{}{}", kind.token(), window.name_suffix()),
            kind,
            window,
        }
    }

    /// The covariate family.
    pub fn kind(&self) -> RegKind {
        self.kind
    }

    /// The window in use.
    pub fn window(&self) -> Window {
        self.window
    }

    /// Fit the coefficients on the windowed history, if well-posed.
    pub fn fit(&self, history: &[Observation], now: u64) -> Option<[f64; MAX_DIM + 1]> {
        let sel = self.window.select(history, now);
        GramAcc::from_slice(sel, self.kind).fit(self.kind.dim())
    }

    fn predict_impl(
        &self,
        history: &[Observation],
        now: u64,
        target_size: Option<u64>,
    ) -> Option<f64> {
        let sel = self.window.select(history, now);
        let last = sel.last()?;
        // Without an announced target size (plain `predict`), assume the
        // next transfer resembles the last one.
        let size = target_size.unwrap_or(last.file_size);
        match GramAcc::from_slice(sel, self.kind).fit(self.kind.dim()) {
            Some(coef) => Some(eval_fit(
                coef,
                self.kind.basis_of_target(now, size, last),
                self.kind.dim(),
            )),
            // Degenerate or small sample: windowed mean, like AR.
            None => stats::mean(&values(sel)),
        }
    }
}

impl Predictor for RegressionPredictor {
    fn name(&self) -> &str {
        &self.name
    }

    fn predict(&self, history: &[Observation], now: u64) -> Option<f64> {
        self.predict_impl(history, now, None)
    }

    fn predict_sized(&self, history: &[Observation], now: u64, target_size: u64) -> Option<f64> {
        self.predict_impl(history, now, Some(target_size))
    }

    fn spec(&self) -> Option<PredictorSpec> {
        Some(PredictorSpec::Regression(self.kind, self.window))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::testutil::history;

    fn sized_history(points: &[(u64, f64, u64)]) -> Vec<Observation> {
        points
            .iter()
            .map(|&(t, bw, size)| Observation::new(t, bw, size))
            .collect()
    }

    #[test]
    fn names_round_kind_and_window() {
        assert_eq!(
            RegressionPredictor::new(RegKind::SizeLinear, Window::All).name(),
            "REGsz"
        );
        assert_eq!(
            RegressionPredictor::new(RegKind::TimeOfDay, Window::LastSeconds(25 * 3_600)).name(),
            "REGtod25hr"
        );
        assert_eq!(
            RegressionPredictor::new(RegKind::Streams, Window::LastN(25)).name(),
            "REGstr25"
        );
    }

    #[test]
    fn recovers_exact_linear_size_law() {
        // bandwidth = 100 + 3 * size_mb, sizes spread out.
        let h: Vec<Observation> = (1..=10u64)
            .map(|i| Observation::new(i, 100.0 + 3.0 * (i * 50) as f64, i * 50 * PAPER_MB))
            .collect();
        let p = RegressionPredictor::new(RegKind::SizeLinear, Window::All);
        let coef = p.fit(&h, 11).unwrap();
        assert!((coef[0] - 100.0).abs() < 1e-6, "a={}", coef[0]);
        assert!((coef[1] - 3.0).abs() < 1e-9, "b={}", coef[1]);
        let pred = p.predict_sized(&h, 11, 200 * PAPER_MB).unwrap();
        assert!((pred - 700.0).abs() < 1e-6, "pred={pred}");
    }

    #[test]
    fn quadratic_recovers_parabola() {
        let h: Vec<Observation> = (1..=12u64)
            .map(|i| {
                let mb = (i * 10) as f64;
                Observation::new(i, 50.0 + 2.0 * mb + 0.1 * mb * mb, i * 10 * PAPER_MB)
            })
            .collect();
        let p = RegressionPredictor::new(RegKind::SizeQuad, Window::All);
        let coef = p.fit(&h, 13).unwrap();
        assert!((coef[0] - 50.0).abs() < 1e-5);
        assert!((coef[1] - 2.0).abs() < 1e-7);
        assert!((coef[2] - 0.1).abs() < 1e-9);
    }

    #[test]
    fn constant_size_falls_back_to_windowed_mean() {
        // Satellite regression test: every transfer shares one file
        // size, so the size covariate has zero variance. The fit must
        // decline and the prediction must equal the windowed mean —
        // pinned here — not NaN.
        let h = sized_history(&[
            (1, 100.0, 5 * PAPER_MB),
            (2, 200.0, 5 * PAPER_MB),
            (3, 300.0, 5 * PAPER_MB),
            (4, 400.0, 5 * PAPER_MB),
            (5, 500.0, 5 * PAPER_MB),
        ]);
        for kind in [RegKind::SizeLinear, RegKind::SizeQuad] {
            let p = RegressionPredictor::new(kind, Window::All);
            assert!(p.fit(&h, 6).is_none(), "{kind:?} fit should decline");
            let pred = p.predict_sized(&h, 6, 5 * PAPER_MB).unwrap();
            assert_eq!(pred, 300.0, "{kind:?} falls back to the mean");
        }
    }

    #[test]
    fn constant_streams_and_buffer_fall_back() {
        // Default covariates (streams=1, buffer=0 via Observation::new)
        // are constant: both tuning regressions degrade to the mean.
        let h = history(&[10.0, 20.0, 30.0, 40.0]);
        for kind in [RegKind::Streams, RegKind::Buffer] {
            let p = RegressionPredictor::new(kind, Window::All);
            assert!(p.fit(&h, 0).is_none());
            assert_eq!(p.predict(&h, 2_000), Some(25.0));
        }
    }

    #[test]
    fn streams_covariate_fits_when_varied() {
        let mut h = Vec::new();
        for i in 1..=8u64 {
            let streams = (i % 4 + 1) as u32;
            let mut o = Observation::new(i, 100.0 * streams as f64, PAPER_MB);
            o.streams = streams;
            h.push(o);
        }
        let p = RegressionPredictor::new(RegKind::Streams, Window::All);
        let coef = p.fit(&h, 9).unwrap();
        assert!(coef[0].abs() < 1e-6);
        assert!((coef[1] - 100.0).abs() < 1e-9);
        // Target covariate comes from the newest observation (1 stream
        // at i=8: 8 % 4 + 1 = 1).
        let pred = p.predict_sized(&h, 9, PAPER_MB).unwrap();
        assert!((pred - 100.0).abs() < 1e-6, "pred={pred}");
    }

    #[test]
    fn time_of_day_tracks_diurnal_cycle() {
        // Bandwidth follows a clean 24h sinusoid; the harmonic fit
        // should predict tomorrow's same-phase value.
        let h: Vec<Observation> = (0..48u64)
            .map(|i| {
                let t = i * 3_600; // hourly for two days
                let phase = 2.0 * std::f64::consts::PI * (t % 86_400) as f64 / 86_400.0;
                Observation::new(t, 1_000.0 + 400.0 * phase.sin(), PAPER_MB)
            })
            .collect();
        let p = RegressionPredictor::new(RegKind::TimeOfDay, Window::All);
        let noon = 48 * 3_600 + 6 * 3_600; // phase = pi/2
        let pred = p.predict_sized(&h, noon, PAPER_MB).unwrap();
        assert!((pred - 1_400.0).abs() < 1e-6, "pred={pred}");
        let midnight = 49 * 86_400;
        let pred = p.predict_sized(&h, midnight, PAPER_MB).unwrap();
        assert!((pred - 1_000.0).abs() < 1e-6, "pred={pred}");
    }

    #[test]
    fn constant_timestamp_tod_falls_back() {
        // All observations at the same second of day: both harmonic
        // covariates are constant.
        let h = sized_history(&[
            (86_400, 10.0, PAPER_MB),
            (2 * 86_400, 20.0, PAPER_MB),
            (3 * 86_400, 30.0, PAPER_MB),
            (4 * 86_400, 40.0, PAPER_MB),
        ]);
        let p = RegressionPredictor::new(RegKind::TimeOfDay, Window::All);
        assert!(p.fit(&h, 5 * 86_400).is_none());
        assert_eq!(p.predict(&h, 5 * 86_400), Some(25.0));
    }

    #[test]
    fn collinear_quadratic_declines() {
        // Exactly two distinct sizes: size and size^2 are collinear, so
        // the 2x2 system is singular and the fit must decline (not
        // produce an arbitrary plane).
        let h = sized_history(&[
            (1, 100.0, 10 * PAPER_MB),
            (2, 200.0, 20 * PAPER_MB),
            (3, 110.0, 10 * PAPER_MB),
            (4, 210.0, 20 * PAPER_MB),
            (5, 105.0, 10 * PAPER_MB),
        ]);
        let p = RegressionPredictor::new(RegKind::SizeQuad, Window::All);
        assert!(p.fit(&h, 6).is_none());
        assert_eq!(p.predict_sized(&h, 6, 15 * PAPER_MB), Some(145.0));
    }

    #[test]
    fn small_sample_falls_back() {
        let h = history(&[5.0, 15.0, 10.0]); // 3 < MIN_POINTS
        let p = RegressionPredictor::new(RegKind::SizeLinear, Window::All);
        assert!(p.fit(&h, 0).is_none());
        assert_eq!(p.predict(&h, 2_000), Some(10.0));
    }

    #[test]
    fn empty_history_is_none() {
        let p = RegressionPredictor::new(RegKind::SizeLinear, Window::All);
        assert_eq!(p.predict(&[], 0), None);
        assert_eq!(p.predict_sized(&[], 0, PAPER_MB), None);
    }

    #[test]
    fn temporal_window_restricts_fit() {
        // Old regime with a steep size law, recent regime flat; a
        // windowed fit must ignore the old regime.
        let mut pts = Vec::new();
        for i in 1..=10u64 {
            pts.push((i, 10_000.0 * i as f64, i * 100 * PAPER_MB));
        }
        for i in 0..6u64 {
            pts.push((100_000 + i, 50.0, (5 + i) * PAPER_MB));
        }
        let h = sized_history(&pts);
        let p = RegressionPredictor::new(RegKind::SizeLinear, Window::LastSeconds(1_000));
        let pred = p.predict_sized(&h, 100_010, 500 * PAPER_MB).unwrap();
        assert!(pred < 1_000.0, "pred {pred} should ignore the old regime");
    }

    #[test]
    fn prediction_clamped_positive() {
        // A steep negative size slope extrapolates negative at large
        // target sizes; the clamp keeps it positive.
        let h: Vec<Observation> = (1..=6u64)
            .map(|i| Observation::new(i, 1_000.0 - 150.0 * i as f64, i * PAPER_MB))
            .collect();
        let p = RegressionPredictor::new(RegKind::SizeLinear, Window::All);
        let pred = p.predict_sized(&h, 7, 1_000 * PAPER_MB).unwrap();
        assert!(pred > 0.0);
    }

    #[test]
    fn gram_fit_matches_stats_ols_at_dim_one() {
        let h = sized_history(&[
            (1, 120.0, 10 * PAPER_MB),
            (2, 260.0, 25 * PAPER_MB),
            (3, 410.0, 40 * PAPER_MB),
            (4, 505.0, 50 * PAPER_MB),
            (5, 640.0, 65 * PAPER_MB),
        ]);
        let xs: Vec<f64> = h
            .iter()
            .map(|o| o.file_size as f64 / PAPER_MB as f64)
            .collect();
        let ys: Vec<f64> = h.iter().map(|o| o.bandwidth_kbs).collect();
        let (a, b) = stats::ols(&xs, &ys).unwrap();
        let coef = GramAcc::from_slice(&h, RegKind::SizeLinear).fit(1).unwrap();
        assert!((coef[0] - a).abs() < 1e-9 * a.abs().max(1.0));
        assert!((coef[1] - b).abs() < 1e-9 * b.abs().max(1.0));
    }

    #[test]
    fn gram_add_is_associative_enough() {
        // Merging per-observation accumulators in two different orders
        // agrees with the slice sum within replay tolerance.
        let h: Vec<Observation> = (1..=20u64)
            .map(|i| Observation::new(i, 100.0 + (i as f64 * 13.7) % 61.0, i * 7 * PAPER_MB))
            .collect();
        let whole = GramAcc::from_slice(&h, RegKind::SizeQuad);
        let (lo, hi) = h.split_at(7);
        let merged = GramAcc::from_slice(lo, RegKind::SizeQuad)
            .merge(GramAcc::from_slice(hi, RegKind::SizeQuad));
        let a = whole.fit(2).unwrap();
        let b = merged.fit(2).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() <= 1e-9 * x.abs().max(1.0));
        }
    }
}
