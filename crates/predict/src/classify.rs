//! Context-sensitive filtering by file size (§4.3).
//!
//! Transfer throughput correlates strongly with file size (TCP slow start
//! penalizes small transfers), so restricting the history to transfers of
//! a *similar size class* improves predictions by 5–10% on average
//! (Figures 12–13). The paper derives four classes for its testbed from
//! achievable-bandwidth tests: 0–50 MB, 50–250 MB, 250–750 MB, > 750 MB,
//! labelled in the evaluation by representative sizes 10 MB, 100 MB,
//! 500 MB and 1 GB. Sizes use the paper's "MB" convention of
//! 1_024_000 bytes (Figure 3).

use serde::{Deserialize, Serialize};

use crate::observation::Observation;

/// One paper-MB in bytes (Figure 3's convention: 1000 * 1024).
pub const PAPER_MB: u64 = 1_024_000;

/// The paper's four file-size classes, named by their representative
/// sizes as in Figures 8–21.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SizeClass {
    /// 0–50 MB ("10 MB range").
    C10MB,
    /// 50–250 MB ("100 MB range").
    C100MB,
    /// 250–750 MB ("500 MB range").
    C500MB,
    /// more than 750 MB ("1 GB range").
    C1GB,
}

impl SizeClass {
    /// All classes in ascending size order.
    pub const ALL: [SizeClass; 4] = [
        SizeClass::C10MB,
        SizeClass::C100MB,
        SizeClass::C500MB,
        SizeClass::C1GB,
    ];

    /// Classify a file size in bytes. Boundaries are half-open so that a
    /// 50 MB file falls in the 100 MB class, matching the per-class
    /// transfer counts of Figure 7 (the 10 MB class contains the five
    /// sizes 1–25 MB, i.e. ≈ 5/13 of uniform draws ≈ 37%).
    pub fn of_bytes(bytes: u64) -> SizeClass {
        let mb = bytes / PAPER_MB;
        match mb {
            0..=49 => SizeClass::C10MB,
            50..=249 => SizeClass::C100MB,
            250..=749 => SizeClass::C500MB,
            _ => SizeClass::C1GB,
        }
    }

    /// Position of this class within [`SizeClass::ALL`] — used by the
    /// incremental engine to index per-class state arrays.
    pub fn index(self) -> usize {
        match self {
            SizeClass::C10MB => 0,
            SizeClass::C100MB => 1,
            SizeClass::C500MB => 2,
            SizeClass::C1GB => 3,
        }
    }

    /// The figure label: `"10MB"`, `"100MB"`, `"500MB"`, `"1GB"`.
    pub fn label(self) -> &'static str {
        match self {
            SizeClass::C10MB => "10MB",
            SizeClass::C100MB => "100MB",
            SizeClass::C500MB => "500MB",
            SizeClass::C1GB => "1GB",
        }
    }

    /// The byte range `[lo, hi)` covered by this class (`hi = u64::MAX`
    /// for the open-ended top class).
    pub fn byte_range(self) -> (u64, u64) {
        match self {
            SizeClass::C10MB => (0, 50 * PAPER_MB),
            SizeClass::C100MB => (50 * PAPER_MB, 250 * PAPER_MB),
            SizeClass::C500MB => (250 * PAPER_MB, 750 * PAPER_MB),
            SizeClass::C1GB => (750 * PAPER_MB, u64::MAX),
        }
    }

    /// Parse a figure label (case-insensitive, `"10mb"`, `"1gb"`, ...).
    pub fn parse_label(s: &str) -> Option<SizeClass> {
        match s.to_ascii_lowercase().as_str() {
            "10mb" | "10" => Some(SizeClass::C10MB),
            "100mb" | "100" => Some(SizeClass::C100MB),
            "500mb" | "500" => Some(SizeClass::C500MB),
            "1gb" | "1000" | "1000mb" => Some(SizeClass::C1GB),
            _ => None,
        }
    }
}

impl std::fmt::Display for SizeClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Filter a history down to the observations in `class`.
pub fn filter_class(history: &[Observation], class: SizeClass) -> Vec<Observation> {
    let mut out = Vec::new();
    filter_class_into(history, class, &mut out);
    out
}

/// Like [`filter_class`], but reusing a caller-provided buffer so hot
/// paths (the replay evaluator calls this once per predictor per
/// target) do not allocate.
pub fn filter_class_into(history: &[Observation], class: SizeClass, out: &mut Vec<Observation>) {
    out.clear();
    out.extend(
        history
            .iter()
            .filter(|o| SizeClass::of_bytes(o.file_size) == class)
            .copied(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mb(n: u64) -> u64 {
        n * PAPER_MB
    }

    #[test]
    fn paper_sizes_classify_as_figure7() {
        // 1,2,5,10,25 MB -> 10MB class; 50,100,150 -> 100MB;
        // 250,400,500 -> 500MB; 750,1000 -> 1GB.
        for s in [1, 2, 5, 10, 25] {
            assert_eq!(SizeClass::of_bytes(mb(s)), SizeClass::C10MB, "{s} MB");
        }
        for s in [50, 100, 150] {
            assert_eq!(SizeClass::of_bytes(mb(s)), SizeClass::C100MB, "{s} MB");
        }
        for s in [250, 400, 500] {
            assert_eq!(SizeClass::of_bytes(mb(s)), SizeClass::C500MB, "{s} MB");
        }
        for s in [750, 1000] {
            assert_eq!(SizeClass::of_bytes(mb(s)), SizeClass::C1GB, "{s} MB");
        }
    }

    #[test]
    fn boundaries_are_half_open() {
        assert_eq!(SizeClass::of_bytes(mb(50) - 1), SizeClass::C10MB);
        assert_eq!(SizeClass::of_bytes(mb(50)), SizeClass::C100MB);
        assert_eq!(SizeClass::of_bytes(mb(250) - 1), SizeClass::C100MB);
        assert_eq!(SizeClass::of_bytes(mb(250)), SizeClass::C500MB);
        assert_eq!(SizeClass::of_bytes(mb(750)), SizeClass::C1GB);
    }

    #[test]
    fn labels_and_parse_roundtrip() {
        for c in SizeClass::ALL {
            assert_eq!(SizeClass::parse_label(c.label()), Some(c));
        }
        assert_eq!(SizeClass::parse_label("nope"), None);
    }

    #[test]
    fn byte_ranges_partition() {
        let mut prev_hi = 0u64;
        for c in SizeClass::ALL {
            let (lo, hi) = c.byte_range();
            assert_eq!(lo, prev_hi);
            assert!(hi > lo);
            prev_hi = hi;
        }
        assert_eq!(prev_hi, u64::MAX);
    }

    #[test]
    fn filter_class_selects_matching() {
        let h: Vec<Observation> = [mb(1), mb(100), mb(400), mb(1000), mb(10)]
            .iter()
            .enumerate()
            .map(|(i, &size)| Observation {
                at_unix: i as u64,
                bandwidth_kbs: 1.0,
                file_size: size,
                streams: 1,
                tcp_buffer: 0,
            })
            .collect();
        assert_eq!(filter_class(&h, SizeClass::C10MB).len(), 2);
        assert_eq!(filter_class(&h, SizeClass::C100MB).len(), 1);
        assert_eq!(filter_class(&h, SizeClass::C500MB).len(), 1);
        assert_eq!(filter_class(&h, SizeClass::C1GB).len(), 1);
    }

    #[test]
    fn zero_size_is_smallest_class() {
        assert_eq!(SizeClass::of_bytes(0), SizeClass::C10MB);
    }
}
