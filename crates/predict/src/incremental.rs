//! Incremental replay engine: rolling per-predictor state.
//!
//! The naive evaluator ([`crate::eval::evaluate`]) re-derives every
//! prediction from the full history slice — for each target it
//! re-filters the class history (an `O(history)` copy per classified
//! predictor), re-sums windows and re-fits regressions, which makes a
//! full 30-predictor replay quadratic in the log length. This module
//! carries state *forward* through the replay instead:
//!
//! * **AVG\*** — a rolling sum/count with count-based (`AVG5/15/25`)
//!   and time-based (`AVG5hr/15hr/25hr`) eviction. The sum uses a
//!   two-stack sliding aggregate ([`RollingSum`]) rather than a single
//!   subtract-on-evict accumulator: subtracting evicted values from a
//!   running total cancels catastrophically when a large old regime
//!   leaves the window, while the two-stack form only ever *adds*
//!   nonnegative values, keeping it as accurate as the naive sum.
//! * **MED\*** — a sorted-vector order statistic alongside the window
//!   deque; insertion/removal by binary search. Because it maintains
//!   exactly the window's multiset, medians are bit-identical to the
//!   naive sort-based median.
//! * **AR\*** — rolling OLS accumulators `(n, Σx, Σy, Σxx, Σxy)` over
//!   the window's consecutive pairs, in the same two-stack shape, plus
//!   the rolling mean used by the small-sample fallback.
//! * **Classification** — the size class of each observation and target
//!   is computed once; classified predictors keep four independent
//!   per-class states instead of re-filtering the history per call.
//!
//! The engine produces reports equivalent to the naive path (the
//! differential property test in `tests/` holds them to a 1e-9
//! relative tolerance; medians and count-window means are exact) and
//! parallelizes the replay across predictors with rayon. Custom
//! predictors without a [`PredictorSpec`] transparently fall back to
//! the slice-based path, so the engine accepts any suite. Select it
//! with [`EvalEngine::Incremental`](crate::evaluation::EvalEngine) on
//! [`Evaluation`](crate::evaluation::Evaluation) (it is the default).

use std::collections::VecDeque;

use rayon::prelude::*;

use crate::arima::ArPredictor;
use crate::classify::SizeClass;
use crate::eval::{EvalOptions, PredictionOutcome, PredictorReport};
use crate::observation::Observation;
use crate::predictor::PredictorSpec;
use crate::registry::NamedPredictor;
use crate::regression::{eval_fit, GramAcc, RegKind};
use crate::window::Window;

/// A sliding-window sum over nonnegative values with O(1) amortized
/// push/evict, implemented as the classic two-stack aggregate. `front`
/// holds the older elements with suffix sums precomputed at flip time;
/// `back` accumulates newer elements with a plain running sum. The
/// window total is one addition, and no subtraction ever occurs, so
/// accuracy matches a from-scratch summation of the window.
#[derive(Debug, Clone, Default)]
struct RollingSum {
    /// `(value, sum of this value and everything older... through newer
    /// front entries)` — the top entry's sum covers the whole front.
    front: Vec<(f64, f64)>,
    back: Vec<f64>,
    back_sum: f64,
}

impl RollingSum {
    fn push(&mut self, v: f64) {
        self.back.push(v);
        self.back_sum += v;
    }

    /// Evict the oldest value, returning it.
    fn pop_oldest(&mut self) -> Option<f64> {
        if self.front.is_empty() {
            // Flip: move `back` into `front`, newest first, so that the
            // stack pops oldest-first with each entry carrying the sum
            // of itself and everything above it (i.e. newer than it).
            let mut cum = 0.0;
            for v in self.back.drain(..).rev() {
                cum += v;
                self.front.push((v, cum));
            }
            self.back_sum = 0.0;
        }
        self.front.pop().map(|(v, _)| v)
    }

    fn sum(&self) -> f64 {
        match self.front.last() {
            Some(&(_, front_sum)) => front_sum + self.back_sum,
            None => self.back_sum,
        }
    }

    fn len(&self) -> usize {
        self.front.len() + self.back.len()
    }
}

/// Rolling OLS accumulators over the window's consecutive value pairs
/// `(x, y) = (v[i], v[i+1])`, in the same two-stack shape as
/// [`RollingSum`]. Each component is a sum of nonnegative terms
/// (bandwidths are nonnegative), so eviction never cancels.
#[derive(Debug, Clone, Copy, Default)]
struct OlsAcc {
    n: usize,
    sx: f64,
    sy: f64,
    sxx: f64,
    sxy: f64,
}

impl OlsAcc {
    fn of_pair(x: f64, y: f64) -> OlsAcc {
        OlsAcc {
            n: 1,
            sx: x,
            sy: y,
            sxx: x * x,
            sxy: x * y,
        }
    }

    fn merge(self, o: OlsAcc) -> OlsAcc {
        OlsAcc {
            n: self.n + o.n,
            sx: self.sx + o.sx,
            sy: self.sy + o.sy,
            sxx: self.sxx + o.sxx,
            sxy: self.sxy + o.sxy,
        }
    }

    /// OLS fit `y = a + b x`, mirroring [`crate::stats::ols`]: `None`
    /// below two pairs or when the regressor is degenerate.
    fn fit(self) -> Option<(f64, f64)> {
        if self.n < 2 {
            return None;
        }
        let n = self.n as f64;
        let mx = self.sx / n;
        let my = self.sy / n;
        let sxx_c = self.sxx - mx * self.sx;
        if sxx_c < 1e-12 * (1.0 + mx * mx) * n {
            return None;
        }
        let b = (self.sxy - mx * self.sy) / sxx_c;
        let a = my - b * mx;
        Some((a, b))
    }
}

/// Two-stack sliding aggregate of [`GramAcc`] entries — the regression
/// family's windowed Gram matrix, one accumulator per observation, in
/// the same shape as [`RollingOls`]. Both engines end at the shared
/// [`GramAcc::fit`], so they agree within floating-point reassociation.
#[derive(Debug, Clone, Default)]
struct RollingGram {
    front: Vec<(GramAcc, GramAcc)>,
    back: Vec<GramAcc>,
    back_agg: GramAcc,
}

impl RollingGram {
    fn push(&mut self, acc: GramAcc) {
        self.back.push(acc);
        self.back_agg = self.back_agg.merge(acc);
    }

    fn pop_oldest(&mut self) {
        if self.front.is_empty() {
            let mut cum = GramAcc::default();
            for acc in self.back.drain(..).rev() {
                cum = acc.merge(cum);
                self.front.push((acc, cum));
            }
            self.back_agg = GramAcc::default();
        }
        self.front.pop();
    }

    fn agg(&self) -> GramAcc {
        match self.front.last() {
            Some(&(_, cum)) => cum.merge(self.back_agg),
            None => self.back_agg,
        }
    }
}

/// Two-stack sliding aggregate of [`OlsAcc`] entries.
#[derive(Debug, Clone, Default)]
struct RollingOls {
    front: Vec<(OlsAcc, OlsAcc)>,
    back: Vec<OlsAcc>,
    back_agg: OlsAcc,
}

impl RollingOls {
    fn push(&mut self, acc: OlsAcc) {
        self.back.push(acc);
        self.back_agg = self.back_agg.merge(acc);
    }

    fn pop_oldest(&mut self) {
        if self.front.is_empty() {
            let mut cum = OlsAcc::default();
            for acc in self.back.drain(..).rev() {
                cum = acc.merge(cum);
                self.front.push((acc, cum));
            }
            self.back_agg = OlsAcc::default();
        }
        self.front.pop();
    }

    fn agg(&self) -> OlsAcc {
        match self.front.last() {
            Some(&(_, cum)) => cum.merge(self.back_agg),
            None => self.back_agg,
        }
    }

    fn len(&self) -> usize {
        self.front.len() + self.back.len()
    }
}

/// Per-stream rolling state for one predictor family over one window.
/// Classified predictors hold one `StreamState` per size class; the
/// stream only ever sees its own class's observations.
#[derive(Debug, Clone)]
enum StreamState {
    Mean {
        window: Window,
        sum: RollingSum,
        /// Arrival times of in-window values, for time-based eviction.
        times: VecDeque<u64>,
    },
    Median {
        window: Window,
        /// In-window values in arrival order.
        vals: VecDeque<(u64, f64)>,
        /// The same values, sorted.
        sorted: Vec<f64>,
    },
    Ar {
        window: Window,
        /// Element-level rolling mean (the small-sample fallback).
        sum: RollingSum,
        times: VecDeque<u64>,
        /// Pair-level accumulators; a pair's eviction time is its
        /// *earlier* element's timestamp (a pair is in the window iff
        /// its earlier element is — the later one always is, since the
        /// window is a time-ordered suffix).
        pairs: RollingOls,
        pair_times: VecDeque<u64>,
        /// The newest in-stream value with its timestamp: regression
        /// input and the next pair's `x` (the timestamp survives even
        /// when temporal eviction empties `times`, so the pair formed
        /// with the *next* observation still knows when it ages out).
        last: Option<(u64, f64)>,
    },
    Last {
        last: Option<f64>,
    },
    Regression {
        kind: RegKind,
        window: Window,
        /// Element-level rolling mean (the degenerate-fit fallback).
        sum: RollingSum,
        /// Windowed Gram matrix, one accumulator per observation.
        gram: RollingGram,
        /// The in-window observations themselves: eviction times, and
        /// the newest one supplies the target's tuning covariates
        /// (streams, buffer) — same rule as the naive path.
        obs_q: VecDeque<Observation>,
    },
}

impl StreamState {
    fn new(spec: PredictorSpec) -> StreamState {
        match spec {
            PredictorSpec::Mean(window) => StreamState::Mean {
                window,
                sum: RollingSum::default(),
                times: VecDeque::new(),
            },
            PredictorSpec::Median(window) => StreamState::Median {
                window,
                vals: VecDeque::new(),
                sorted: Vec::new(),
            },
            PredictorSpec::Ar(window) => StreamState::Ar {
                window,
                sum: RollingSum::default(),
                times: VecDeque::new(),
                pairs: RollingOls::default(),
                pair_times: VecDeque::new(),
                last: None,
            },
            PredictorSpec::Last => StreamState::Last { last: None },
            PredictorSpec::Regression(kind, window) => StreamState::Regression {
                kind,
                window,
                sum: RollingSum::default(),
                gram: RollingGram::default(),
                obs_q: VecDeque::new(),
            },
        }
    }

    /// Feed one observation of this stream into the state. Count-based
    /// eviction happens here; time-based eviction is deferred to
    /// [`StreamState::predict`], where `now` is known.
    fn observe(&mut self, o: &Observation) {
        let v = o.bandwidth_kbs;
        match self {
            StreamState::Mean { window, sum, times } => {
                sum.push(v);
                times.push_back(o.at_unix);
                if let Window::LastN(n) = *window {
                    while sum.len() > n {
                        sum.pop_oldest();
                        times.pop_front();
                    }
                }
            }
            StreamState::Median {
                window,
                vals,
                sorted,
            } => {
                vals.push_back((o.at_unix, v));
                // Total order (NaN sorts last) so that a NaN-tainted
                // observation keeps insert/evict positions consistent
                // instead of corrupting the order statistic.
                let at = sorted.partition_point(|x| x.total_cmp(&v).is_lt());
                sorted.insert(at, v);
                if let Window::LastN(n) = *window {
                    while vals.len() > n {
                        if let Some((_, old)) = vals.pop_front() {
                            remove_sorted(sorted, old);
                        }
                    }
                }
            }
            StreamState::Ar {
                window,
                sum,
                times,
                pairs,
                pair_times,
                last,
            } => {
                if let Some((prev_t, prev)) = *last {
                    pairs.push(OlsAcc::of_pair(prev, v));
                    // The pair leaves the window when its earlier
                    // element does.
                    pair_times.push_back(prev_t);
                }
                sum.push(v);
                times.push_back(o.at_unix);
                *last = Some((o.at_unix, v));
                if let Window::LastN(n) = *window {
                    while sum.len() > n {
                        sum.pop_oldest();
                        times.pop_front();
                    }
                    while pairs.len() > n.saturating_sub(1) {
                        pairs.pop_oldest();
                        pair_times.pop_front();
                    }
                }
            }
            StreamState::Last { last } => *last = Some(v),
            StreamState::Regression {
                kind,
                window,
                sum,
                gram,
                obs_q,
            } => {
                sum.push(v);
                gram.push(GramAcc::of_obs(kind.basis_of_obs(o), v));
                obs_q.push_back(*o);
                if let Window::LastN(n) = *window {
                    while obs_q.len() > n {
                        sum.pop_oldest();
                        gram.pop_oldest();
                        obs_q.pop_front();
                    }
                }
            }
        }
    }

    /// Predict at instant `now` for a transfer of `target_size` bytes,
    /// evicting anything that has aged out of a temporal window. `now`
    /// must be nondecreasing across calls (replay order), which makes
    /// front-only eviction sound. Only the regression family reads
    /// `target_size`; the paper's history techniques ignore it.
    fn predict(&mut self, now: u64, target_size: u64) -> Option<f64> {
        match self {
            StreamState::Mean { window, sum, times } => {
                if let Window::LastSeconds(secs) = *window {
                    let cutoff = now.saturating_sub(secs);
                    while times.front().is_some_and(|&t| t < cutoff) {
                        sum.pop_oldest();
                        times.pop_front();
                    }
                }
                match sum.len() {
                    0 => None,
                    n => Some(sum.sum() / n as f64),
                }
            }
            StreamState::Median {
                window,
                vals,
                sorted,
            } => {
                if let Window::LastSeconds(secs) = *window {
                    let cutoff = now.saturating_sub(secs);
                    while vals.front().is_some_and(|&(t, _)| t < cutoff) {
                        if let Some((_, old)) = vals.pop_front() {
                            remove_sorted(sorted, old);
                        }
                    }
                }
                // The paper's §4.1 convention, same as `stats::median`.
                let t = sorted.len();
                match t {
                    0 => None,
                    _ if t % 2 == 1 => Some(sorted[t / 2]),
                    _ => Some((sorted[t / 2 - 1] + sorted[t / 2]) / 2.0),
                }
            }
            StreamState::Ar {
                window,
                sum,
                times,
                pairs,
                pair_times,
                last,
            } => {
                if let Window::LastSeconds(secs) = *window {
                    let cutoff = now.saturating_sub(secs);
                    while times.front().is_some_and(|&t| t < cutoff) {
                        sum.pop_oldest();
                        times.pop_front();
                    }
                    while pair_times.front().is_some_and(|&t| t < cutoff) {
                        pairs.pop_oldest();
                        pair_times.pop_front();
                    }
                }
                let count = sum.len();
                if count == 0 {
                    return None;
                }
                let fit = if count >= ArPredictor::MIN_POINTS {
                    pairs.agg().fit()
                } else {
                    None
                };
                // `last` is always `Some` when `count > 0`, but the
                // mean fallback is a graceful answer either way — no
                // reason to make that invariant a panic in the hot
                // path.
                match (fit, *last) {
                    (Some((a, b)), Some((_, l))) => Some((a + b * l).max(1e-6)),
                    _ => Some(sum.sum() / count as f64),
                }
            }
            StreamState::Last { last } => *last,
            StreamState::Regression {
                kind,
                window,
                sum,
                gram,
                obs_q,
            } => {
                if let Window::LastSeconds(secs) = *window {
                    let cutoff = now.saturating_sub(secs);
                    while obs_q.front().is_some_and(|o| o.at_unix < cutoff) {
                        sum.pop_oldest();
                        gram.pop_oldest();
                        obs_q.pop_front();
                    }
                }
                let newest = *obs_q.back()?;
                match gram.agg().fit(kind.dim()) {
                    Some(coef) => Some(eval_fit(
                        coef,
                        kind.basis_of_target(now, target_size, &newest),
                        kind.dim(),
                    )),
                    // Small or degenerate sample: windowed mean, same
                    // fallback as the naive path and the AR family.
                    None => Some(sum.sum() / obs_q.len() as f64),
                }
            }
        }
    }
}

/// Remove one occurrence of `v` from a sorted vector. The value is
/// always present (it was inserted by `observe` and not yet removed);
/// if that invariant ever broke, removing nothing degrades the order
/// statistic gracefully instead of panicking the replay.
fn remove_sorted(sorted: &mut Vec<f64>, v: f64) {
    let at = sorted.partition_point(|x| x.total_cmp(&v).is_lt());
    let present = sorted.get(at).is_some_and(|x| x.total_cmp(&v).is_eq());
    debug_assert!(present, "evicted value missing from order stat");
    if present {
        sorted.remove(at);
    }
}

/// Rolling state for one (possibly classified) predictor variant.
struct VariantState {
    /// One stream for unclassified variants; four per-class streams for
    /// classified ones, indexed by [`SizeClass::index`].
    streams: Vec<StreamState>,
    classified: bool,
}

impl VariantState {
    fn new(spec: PredictorSpec, classified: bool) -> VariantState {
        let n = if classified { SizeClass::ALL.len() } else { 1 };
        VariantState {
            streams: (0..n).map(|_| StreamState::new(spec)).collect(),
            classified,
        }
    }

    fn observe(&mut self, o: &Observation, class: SizeClass) {
        let idx = if self.classified { class.index() } else { 0 };
        self.streams[idx].observe(o);
    }

    fn predict(&mut self, now: u64, target_class: SizeClass, target_size: u64) -> Option<f64> {
        let idx = if self.classified {
            target_class.index()
        } else {
            0
        };
        self.streams[idx].predict(now, target_size)
    }
}

/// Replay one predictor over the series with rolling state.
fn replay_incremental(
    series: &[Observation],
    classes: &[SizeClass],
    p: &NamedPredictor,
    spec: PredictorSpec,
    opts: EvalOptions,
) -> PredictorReport {
    let mut state = VariantState::new(spec, p.is_classified());
    let mut report = PredictorReport {
        name: p.name().to_string(),
        outcomes: Vec::new(),
        declined: 0,
    };
    for (i, (o, &class)) in series.iter().zip(classes).enumerate() {
        if i >= opts.training {
            match state.predict(o.at_unix, class, o.file_size) {
                Some(pred) => report.outcomes.push(PredictionOutcome {
                    at_unix: o.at_unix,
                    measured: o.bandwidth_kbs,
                    predicted: pred,
                    class,
                }),
                None => report.declined += 1,
            }
        }
        state.observe(o, class);
    }
    report
}

/// Slice-based replay of one predictor — the path for custom
/// predictors without a [`PredictorSpec`]. Matches the naive
/// evaluator's per-predictor behaviour exactly.
fn replay_naive(
    series: &[Observation],
    classes: &[SizeClass],
    p: &NamedPredictor,
    opts: EvalOptions,
) -> PredictorReport {
    let mut report = PredictorReport {
        name: p.name().to_string(),
        outcomes: Vec::new(),
        declined: 0,
    };
    for i in opts.training..series.len() {
        let target = &series[i];
        match p.predict(&series[..i], target.at_unix, target.file_size) {
            Some(pred) => report.outcomes.push(PredictionOutcome {
                at_unix: target.at_unix,
                measured: target.bandwidth_kbs,
                predicted: pred,
                class: classes[i],
            }),
            None => report.declined += 1,
        }
    }
    report
}

/// Replay `series` through every predictor, carrying rolling state
/// forward and fanning the predictors out across threads.
///
/// The rolling-state replay core behind
/// [`EvalEngine::Incremental`](crate::evaluation::EvalEngine::Incremental):
/// classify once, then fan the predictors out across threads.
pub(crate) fn incremental_replay(
    series: &[Observation],
    predictors: &[NamedPredictor],
    opts: EvalOptions,
) -> Vec<PredictorReport> {
    // Classify each observation once, not once per predictor per target.
    let classes: Vec<SizeClass> = series
        .iter()
        .map(|o| SizeClass::of_bytes(o.file_size))
        .collect();
    predictors
        .par_iter()
        .map(|p| match p.spec() {
            Some(spec) => replay_incremental(series, &classes, p, spec, opts),
            None => replay_naive(series, &classes, p, opts),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::PAPER_MB;
    use crate::evaluation::{EvalEngine, Evaluation};
    use crate::registry::full_suite;

    fn evaluate(
        series: &[Observation],
        predictors: &[NamedPredictor],
        opts: EvalOptions,
    ) -> Vec<PredictorReport> {
        Evaluation::replay(
            series,
            predictors,
            EvalEngine::Naive,
            opts,
            &wanpred_obs::ObsSink::disabled(),
        )
    }

    fn evaluate_incremental(
        series: &[Observation],
        predictors: &[NamedPredictor],
        opts: EvalOptions,
    ) -> Vec<PredictorReport> {
        Evaluation::replay(
            series,
            predictors,
            EvalEngine::Incremental,
            opts,
            &wanpred_obs::ObsSink::disabled(),
        )
    }

    fn assert_reports_match(naive: &[PredictorReport], inc: &[PredictorReport]) {
        assert_eq!(naive.len(), inc.len());
        for (n, i) in naive.iter().zip(inc) {
            assert_eq!(n.name, i.name);
            assert_eq!(n.declined, i.declined, "{}", n.name);
            assert_eq!(n.outcomes.len(), i.outcomes.len(), "{}", n.name);
            for (a, b) in n.outcomes.iter().zip(&i.outcomes) {
                assert_eq!(a.at_unix, b.at_unix);
                assert_eq!(a.class, b.class);
                assert_eq!(a.measured, b.measured);
                let tol = 1e-9 * a.predicted.abs().max(b.predicted.abs()).max(1.0);
                assert!(
                    (a.predicted - b.predicted).abs() <= tol,
                    "{}: {} vs {}",
                    n.name,
                    a.predicted,
                    b.predicted
                );
            }
        }
    }

    /// A bursty multi-class series exercising every window kind:
    /// irregular gaps (some larger than the 5-hour window), all four
    /// size classes, and a regime change.
    fn bursty_series(n: usize) -> Vec<Observation> {
        let sizes = [2, 100, 400, 1000, 25, 150, 750];
        let mut t = 1_000_000u64;
        (0..n)
            .map(|i| {
                t += match i % 7 {
                    0 => 30,
                    1 => 600,
                    2 => 3_600,
                    3 => 7 * 3_600, // clears the 5hr window
                    _ => 200 + (i as u64 * 37) % 900,
                };
                Observation {
                    at_unix: t,
                    bandwidth_kbs: if i < n / 2 {
                        500.0 + (i as f64 * 13.7) % 300.0
                    } else {
                        4_000.0 + (i as f64 * 7.3) % 900.0
                    },
                    file_size: sizes[i % sizes.len()] * PAPER_MB,
                    streams: 1,
                    tcp_buffer: 0,
                }
            })
            .collect()
    }

    #[test]
    fn matches_naive_on_bursty_multiclass_series() {
        let series = bursty_series(120);
        let suite = full_suite();
        let naive = evaluate(&series, &suite, EvalOptions::default());
        let inc = evaluate_incremental(&series, &suite, EvalOptions::default());
        assert_reports_match(&naive, &inc);
    }

    #[test]
    fn matches_naive_on_single_class_log() {
        let series: Vec<Observation> = (0..60)
            .map(|i| Observation {
                at_unix: 1_000 + i * 400,
                bandwidth_kbs: 100.0 + (i as f64 * 31.7) % 50.0,
                file_size: 500 * PAPER_MB,
                streams: 1,
                tcp_buffer: 0,
            })
            .collect();
        let suite = full_suite();
        let naive = evaluate(&series, &suite, EvalOptions::default());
        let inc = evaluate_incremental(&series, &suite, EvalOptions::default());
        assert_reports_match(&naive, &inc);
    }

    #[test]
    fn empty_and_short_series() {
        let suite = full_suite();
        let inc = evaluate_incremental(&[], &suite, EvalOptions::default());
        assert_eq!(inc.len(), 30);
        assert!(inc.iter().all(|r| r.outcomes.is_empty() && r.declined == 0));

        let series = bursty_series(10); // shorter than the training set
        let inc = evaluate_incremental(&series, &suite, EvalOptions::default());
        assert!(inc.iter().all(|r| r.outcomes.is_empty() && r.declined == 0));
    }

    #[test]
    fn rolling_sum_survives_regime_collapse() {
        // A large regime evicted from the window must not poison the
        // tiny residual (the failure mode of subtract-on-evict sums).
        let mut s = RollingSum::default();
        for _ in 0..1_000 {
            s.push(1e12);
        }
        s.push(1e-3);
        for _ in 0..1_000 {
            s.pop_oldest();
        }
        assert_eq!(s.len(), 1);
        assert_eq!(s.sum(), 1e-3);
    }

    #[test]
    fn custom_predictors_fall_back_to_slices() {
        use crate::mean::EwmaPredictor;
        let series = bursty_series(40);
        let suite = vec![NamedPredictor::new(Box::new(EwmaPredictor::new(0.5)), true)];
        assert!(suite[0].spec().is_none());
        let naive = evaluate(&series, &suite, EvalOptions::default());
        let inc = evaluate_incremental(&series, &suite, EvalOptions::default());
        assert_reports_match(&naive, &inc);
    }
}
