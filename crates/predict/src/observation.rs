//! The observation type every predictor consumes.
//!
//! Predictors never see raw log lines; they see a time-ordered series of
//! `(timestamp, bandwidth, file size)` triples plus the transfer's
//! tuning covariates (stream count, TCP buffer). The file size rides
//! along so the *context-sensitive* wrapper (§4.3) can filter by size
//! class and so the regression family ([`crate::regression`]) can fit
//! bandwidth against it — the paper's mathematical techniques themselves
//! (§4.1) look only at the bandwidth values.

use serde::{Deserialize, Serialize};
use wanpred_logfmt::ulm::{decode_borrowed, DecodeScratch, TransferRecordRef};
use wanpred_logfmt::{LogError, TransferLog, TransferRecord};

/// One historical throughput observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// When the transfer started (Unix seconds).
    pub at_unix: u64,
    /// Achieved end-to-end bandwidth, KB/s (`size / total time`, the
    /// paper's definition).
    pub bandwidth_kbs: f64,
    /// Size of the transferred file in bytes (context for classification
    /// and the regression family's primary covariate).
    pub file_size: u64,
    /// Parallel data streams used (regression covariate; 1 when the log
    /// source does not record it).
    pub streams: u32,
    /// Per-stream TCP buffer size in bytes (regression covariate; 0 when
    /// the log source does not record it).
    pub tcp_buffer: u64,
}

impl Observation {
    /// Build a covariate-less observation: one parallel stream, unknown
    /// (zero) TCP buffer. The usual constructor for synthetic series and
    /// callers that only have the paper's `(time, bandwidth, size)`
    /// triple.
    pub const fn new(at_unix: u64, bandwidth_kbs: f64, file_size: u64) -> Self {
        Observation {
            at_unix,
            bandwidth_kbs,
            file_size,
            streams: 1,
            tcp_buffer: 0,
        }
    }

    /// Build from a log record, carrying the record's stream count and
    /// TCP buffer as regression covariates.
    pub fn from_record(r: &TransferRecord) -> Self {
        Observation {
            at_unix: r.start_unix,
            bandwidth_kbs: r.bandwidth_kbs(),
            file_size: r.file_size,
            streams: r.streams,
            tcp_buffer: r.tcp_buffer,
        }
    }

    /// Build from a borrowed record (the zero-copy decode path); same
    /// fields as [`Observation::from_record`].
    pub fn from_ref(r: &TransferRecordRef<'_>) -> Self {
        Observation {
            at_unix: r.start_unix,
            bandwidth_kbs: r.bandwidth_kbs(),
            file_size: r.file_size,
            streams: r.streams,
            tcp_buffer: r.tcp_buffer,
        }
    }
}

/// Extract the observation series from a transfer log, in log order.
///
/// The paper's controlled logs are already time-ordered; busy production
/// servers may interleave, so callers who need strict time order should
/// [`sort_by_time`] afterwards.
pub fn observations_from_log(log: &TransferLog) -> Vec<Observation> {
    log.records().iter().map(Observation::from_record).collect()
}

/// Extract the observation series straight from a ULM document, in
/// document order, without materialising a [`TransferLog`] in between.
///
/// This is the ingest half of the parse hot path: each line is decoded
/// borrowed ([`decode_borrowed`]) and reduced to its numeric
/// [`Observation`] on the spot, so the only allocation that grows with
/// the document is the output vector itself. Grammar, skipping rules
/// (blank lines, `#` comments) and errors are identical to
/// [`TransferLog::from_ulm_str`] — differentially tested in
/// `tests/parse_differential.rs`.
pub fn observations_from_ulm(doc: &str) -> Result<Vec<Observation>, LogError> {
    let mut out = Vec::new();
    let mut scratch = DecodeScratch::new();
    for (i, line) in doc.lines().enumerate() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let r = decode_borrowed(t, &mut scratch).map_err(|e| LogError::Parse(i + 1, e))?;
        out.push(Observation::from_ref(&r));
    }
    Ok(out)
}

/// Sort a series by timestamp (stable, preserving log order among ties).
pub fn sort_by_time(obs: &mut [Observation]) {
    obs.sort_by_key(|o| o.at_unix);
}

#[cfg(test)]
mod tests {
    use super::*;
    use wanpred_logfmt::sample_record;

    #[test]
    fn from_record_carries_bandwidth() {
        let o = Observation::from_record(&sample_record());
        assert_eq!(o.at_unix, 998_988_165);
        assert!((o.bandwidth_kbs - 2560.0).abs() < 1e-9);
        assert_eq!(o.file_size, 10_240_000);
    }

    #[test]
    fn log_extraction_preserves_order() {
        let mut log = TransferLog::new();
        for i in [5u64, 3, 9] {
            let mut r = sample_record();
            r.start_unix = i;
            r.end_unix = i + 4;
            log.append(r);
        }
        let mut obs = observations_from_log(&log);
        assert_eq!(obs.iter().map(|o| o.at_unix).collect::<Vec<_>>(), [5, 3, 9]);
        sort_by_time(&mut obs);
        assert_eq!(obs.iter().map(|o| o.at_unix).collect::<Vec<_>>(), [3, 5, 9]);
    }

    #[test]
    fn ulm_extraction_matches_log_extraction() {
        let mut log = TransferLog::new();
        for i in 0..10u64 {
            let mut r = sample_record();
            r.start_unix += i * 600;
            r.end_unix = r.start_unix + 4;
            r.file_size += i * 1_000;
            log.append(r);
        }
        let doc = format!("# header\n\n{}", log.to_ulm_string());
        let direct = observations_from_ulm(&doc).expect("own encoding parses");
        assert_eq!(direct, observations_from_log(&log));
    }

    #[test]
    fn ulm_extraction_reports_line_numbers() {
        let good = wanpred_logfmt::encode(&sample_record());
        let doc = format!("{good}\nnot a record\n");
        match observations_from_ulm(&doc) {
            Err(LogError::Parse(n, _)) => assert_eq!(n, 2),
            other => panic!("expected parse error at line 2, got {other:?}"),
        }
    }
}
