//! Hybrid GridFTP + probe prediction — the paper's §7 future work,
//! implemented.
//!
//! The paper closes by proposing to "investigate using both basic
//! predictions on the sporadic data combined with more regular NWS
//! measurements and predictions for small regular data movement to
//! overcome the drawbacks of each approach in isolation", and to
//! "extrapolate data when there is no previous transfer data between two
//! sites" (citing Faerman et al.'s adaptive regression). Two estimators:
//!
//! * [`ConditionScaled`] — a classified GridFTP base prediction scaled by
//!   the ratio of the *current* probe reading to the probe's historical
//!   mean: probes are useless as absolute estimates (Figures 1–2) but
//!   informative as a *relative* load signal on the same path.
//! * [`ProbeRegression`] — ordinary least squares of transfer bandwidth
//!   on the nearest preceding probe reading; once fitted on one path it
//!   can be applied to a path with *no transfer history at all* given
//!   only that path's probes ([`ProbeRegression::cold_start`]).

use serde::{Deserialize, Serialize};

use crate::classify::{filter_class, SizeClass};
use crate::observation::Observation;
use crate::stats;
use crate::window::Window;

/// One probe measurement `(unix seconds, bandwidth)` in any consistent
/// unit; only ratios and linear fits of the values are used.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProbePoint {
    /// Measurement time.
    pub at_unix: u64,
    /// Measured probe bandwidth.
    pub value: f64,
}

/// The probe value in effect at time `t`: the most recent measurement at
/// or before `t`. Probes must be time-sorted.
pub fn probe_at(probes: &[ProbePoint], t: u64) -> Option<f64> {
    let idx = probes.partition_point(|p| p.at_unix <= t);
    idx.checked_sub(1).map(|i| probes[i].value)
}

/// Mean of the `k` most recent probes at or before `t`.
pub fn recent_probe_mean(probes: &[ProbePoint], t: u64, k: usize) -> Option<f64> {
    let idx = probes.partition_point(|p| p.at_unix <= t);
    if idx == 0 {
        return None;
    }
    let start = idx.saturating_sub(k);
    let vals: Vec<f64> = probes[start..idx].iter().map(|p| p.value).collect();
    stats::mean(&vals)
}

/// Base-times-condition hybrid: classified GridFTP mean scaled by the
/// relative probe level.
#[derive(Debug, Clone)]
pub struct ConditionScaled {
    /// Window for the GridFTP base estimate (within the target's class).
    pub base_window: Window,
    /// Number of recent probes forming the "current conditions" reading.
    pub recent_probes: usize,
    /// Clamp on the condition factor, guarding against probe outliers.
    pub factor_clamp: (f64, f64),
}

impl Default for ConditionScaled {
    fn default() -> Self {
        ConditionScaled {
            base_window: Window::LastN(25),
            recent_probes: 3,
            factor_clamp: (0.5, 2.0),
        }
    }
}

impl ConditionScaled {
    /// Predict bandwidth for a transfer of `target_size` at `now`.
    ///
    /// Falls back to the unscaled base when probes are absent; returns
    /// `None` only when there is no class history at all.
    pub fn predict(
        &self,
        history: &[Observation],
        probes: &[ProbePoint],
        now: u64,
        target_size: u64,
    ) -> Option<f64> {
        let class = SizeClass::of_bytes(target_size);
        let class_history = filter_class(history, class);
        let sel = self.base_window.select(&class_history, now);
        let base = stats::mean(&sel.iter().map(|o| o.bandwidth_kbs).collect::<Vec<_>>())?;

        // Long-run probe level over the span the base estimate covers.
        let span_start = sel.first().map(|o| o.at_unix).unwrap_or(0);
        let long_run: Vec<f64> = probes
            .iter()
            .filter(|p| p.at_unix >= span_start && p.at_unix <= now)
            .map(|p| p.value)
            .collect();
        let (Some(long_mean), Some(recent)) = (
            stats::mean(&long_run),
            recent_probe_mean(probes, now, self.recent_probes),
        ) else {
            return Some(base);
        };
        if long_mean <= 0.0 {
            return Some(base);
        }
        let factor = (recent / long_mean).clamp(self.factor_clamp.0, self.factor_clamp.1);
        Some(base * factor)
    }
}

/// Linear regression of transfer bandwidth on the probe reading in
/// effect when each transfer started.
#[derive(Debug, Clone)]
pub struct ProbeRegression {
    /// Minimum matched pairs before the fit is trusted.
    pub min_points: usize,
}

impl Default for ProbeRegression {
    fn default() -> Self {
        ProbeRegression { min_points: 10 }
    }
}

/// A fitted probe→bandwidth model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FittedRegression {
    /// Intercept (KB/s).
    pub a: f64,
    /// Slope (KB/s per probe unit).
    pub b: f64,
    /// Matched pairs used.
    pub n: usize,
}

impl ProbeRegression {
    /// Fit on a path's transfer history and probe series, optionally
    /// restricted to one size class.
    pub fn fit(
        &self,
        history: &[Observation],
        probes: &[ProbePoint],
        class: Option<SizeClass>,
    ) -> Option<FittedRegression> {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for o in history {
            if let Some(c) = class {
                if SizeClass::of_bytes(o.file_size) != c {
                    continue;
                }
            }
            if let Some(p) = probe_at(probes, o.at_unix) {
                xs.push(p);
                ys.push(o.bandwidth_kbs);
            }
        }
        if xs.len() < self.min_points {
            return None;
        }
        let (a, b) = stats::ols(&xs, &ys)?;
        Some(FittedRegression { a, b, n: xs.len() })
    }

    /// Predict on the *same* path the model was fitted on.
    pub fn predict(
        &self,
        fitted: &FittedRegression,
        probes: &[ProbePoint],
        now: u64,
    ) -> Option<f64> {
        let p = probe_at(probes, now)?;
        Some((fitted.a + fitted.b * p).max(1e-6))
    }

    /// Cold start (Faerman-style extrapolation): apply a model fitted on
    /// one path to a *different* path for which only probes exist. The
    /// probe units must match; the estimate inherits the donor path's
    /// bandwidth scale, so it is a bootstrap, not a calibrated forecast.
    pub fn cold_start(
        &self,
        donor: &FittedRegression,
        target_probes: &[ProbePoint],
        now: u64,
    ) -> Option<f64> {
        self.predict(donor, target_probes, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::PAPER_MB;

    fn probes(points: &[(u64, f64)]) -> Vec<ProbePoint> {
        points
            .iter()
            .map(|&(at_unix, value)| ProbePoint { at_unix, value })
            .collect()
    }

    fn obs(at: u64, bw: f64) -> Observation {
        Observation::new(at, bw, 100 * PAPER_MB)
    }

    #[test]
    fn probe_at_finds_most_recent() {
        let ps = probes(&[(10, 1.0), (20, 2.0), (30, 3.0)]);
        assert_eq!(probe_at(&ps, 5), None);
        assert_eq!(probe_at(&ps, 10), Some(1.0));
        assert_eq!(probe_at(&ps, 25), Some(2.0));
        assert_eq!(probe_at(&ps, 99), Some(3.0));
    }

    #[test]
    fn recent_mean_windows() {
        let ps = probes(&[(10, 1.0), (20, 2.0), (30, 6.0)]);
        assert_eq!(recent_probe_mean(&ps, 30, 2), Some(4.0));
        assert_eq!(recent_probe_mean(&ps, 30, 10), Some(3.0));
        assert_eq!(recent_probe_mean(&ps, 9, 3), None);
    }

    #[test]
    fn condition_scaling_tracks_probe_ratio() {
        // Transfers averaged 1000; probes historically 0.2, now 0.1
        // (halved): hybrid predicts ~500.
        let history: Vec<Observation> = (0..20).map(|i| obs(100 + i * 10, 1_000.0)).collect();
        let mut ps: Vec<ProbePoint> = (0..30)
            .map(|i| ProbePoint {
                at_unix: 100 + i * 10,
                value: 0.2,
            })
            .collect();
        for p in ps.iter_mut().rev().take(3) {
            p.value = 0.1;
        }
        let h = ConditionScaled::default();
        let pred = h
            .predict(&history, &ps, 400, 100 * PAPER_MB)
            .expect("history exists");
        assert!((pred - 1_000.0 * (0.1 / 0.19)).abs() < 60.0, "pred {pred}");
        assert!(pred < 700.0);
    }

    #[test]
    fn condition_scaling_clamps_extremes() {
        let history: Vec<Observation> = (0..20).map(|i| obs(100 + i * 10, 1_000.0)).collect();
        let mut ps: Vec<ProbePoint> = (0..30)
            .map(|i| ProbePoint {
                at_unix: 100 + i * 10,
                value: 0.2,
            })
            .collect();
        // Ludicrous probe spike.
        ps.last_mut().unwrap().value = 100.0;
        let h = ConditionScaled {
            recent_probes: 1,
            ..ConditionScaled::default()
        };
        let pred = h.predict(&history, &ps, 400, 100 * PAPER_MB).unwrap();
        assert!((pred - 2_000.0).abs() < 100.0, "clamped at 2x: {pred}");
    }

    #[test]
    fn no_probes_falls_back_to_base() {
        let history: Vec<Observation> = (0..20).map(|i| obs(100 + i * 10, 1_000.0)).collect();
        let h = ConditionScaled::default();
        assert_eq!(h.predict(&history, &[], 400, 100 * PAPER_MB), Some(1_000.0));
    }

    #[test]
    fn no_class_history_is_none() {
        let h = ConditionScaled::default();
        assert_eq!(h.predict(&[], &[], 400, 100 * PAPER_MB), None);
    }

    #[test]
    fn regression_recovers_linear_relation() {
        // bw = 500 + 5000 * probe, probes varying.
        let ps: Vec<ProbePoint> = (0..40)
            .map(|i| ProbePoint {
                at_unix: i * 100,
                value: 0.1 + 0.01 * (i % 10) as f64,
            })
            .collect();
        let history: Vec<Observation> = (0..40)
            .map(|i| {
                let p = probe_at(&ps, i * 100 + 1).unwrap();
                obs(i * 100 + 1, 500.0 + 5_000.0 * p)
            })
            .collect();
        let reg = ProbeRegression::default();
        let fitted = reg.fit(&history, &ps, None).expect("enough pairs");
        assert!((fitted.a - 500.0).abs() < 1e-6, "{fitted:?}");
        assert!((fitted.b - 5_000.0).abs() < 1e-6);
        let pred = reg.predict(&fitted, &ps, 4_500).unwrap();
        let expect = 500.0 + 5_000.0 * probe_at(&ps, 4_500).unwrap();
        assert!((pred - expect).abs() < 1e-6);
    }

    #[test]
    fn regression_needs_enough_points() {
        let ps = probes(&[(0, 0.1), (10, 0.2)]);
        let history = vec![obs(1, 100.0), obs(11, 200.0)];
        assert!(ProbeRegression::default()
            .fit(&history, &ps, None)
            .is_none());
    }

    #[test]
    fn cold_start_uses_target_probes() {
        let donor = FittedRegression {
            a: 100.0,
            b: 10_000.0,
            n: 50,
        };
        let target_ps = probes(&[(0, 0.3)]);
        let reg = ProbeRegression::default();
        let pred = reg.cold_start(&donor, &target_ps, 5).unwrap();
        assert!((pred - 3_100.0).abs() < 1e-9);
        assert!(reg.cold_start(&donor, &[], 5).is_none());
    }

    #[test]
    fn class_filtered_fit_ignores_other_classes() {
        let ps: Vec<ProbePoint> = (0..40)
            .map(|i| ProbePoint {
                at_unix: i * 100,
                value: 0.1 + 0.005 * (i % 8) as f64,
            })
            .collect();
        let mut history = Vec::new();
        for i in 0..40u64 {
            let p = probe_at(&ps, i * 100 + 1).unwrap();
            // 100MB class follows the line; 10MB class is garbage.
            history.push(Observation {
                at_unix: i * 100 + 1,
                bandwidth_kbs: 500.0 + 5_000.0 * p,
                file_size: 100 * PAPER_MB,
                streams: 1,
                tcp_buffer: 0,
            });
            history.push(Observation {
                at_unix: i * 100 + 2,
                bandwidth_kbs: 77_777.0,
                file_size: PAPER_MB,
                streams: 1,
                tcp_buffer: 0,
            });
        }
        let reg = ProbeRegression::default();
        let fitted = reg
            .fit(&history, &ps, Some(SizeClass::C100MB))
            .expect("enough pairs");
        assert!((fitted.b - 5_000.0).abs() < 1e-6, "{fitted:?}");
    }
}
