//! Dynamic predictor selection — the NWS-style "evaluate a number of
//! techniques and choose the most appropriate one on the fly" extension
//! the paper names as future work (§4.4, §7).
//!
//! The selector maintains, for every candidate predictor, its running
//! mean absolute percentage error on the observations seen so far; a
//! prediction request is answered by the candidate with the lowest
//! running error (falling back through candidates that decline).
//!
//! Ranking rules, shared with the windowed [`crate::tournament`]:
//!
//! * candidates that have never scored rank below every scored one;
//! * equal errors break ties by **candidate name** (lexicographic), not
//!   by registration index, so the winner does not depend on suite
//!   construction order;
//! * only *finite* errors accumulate — a NaN slipping into the error sum
//!   would poison the running mean forever and make every comparison
//!   against it false.

use std::collections::VecDeque;

use crate::observation::Observation;
use crate::registry::NamedPredictor;

/// Rolling mean absolute percentage error over the last `window` scored
/// predictions — the tournament's freshness-bounded variant of the
/// selector's all-time running MAPE.
///
/// Only finite errors are retained ([`record`](RollingMape::record)
/// drops NaN/infinite inputs), so [`mape`](RollingMape::mape) is always
/// finite or `None` — an all-zero-measurement stretch, which produces no
/// scorable errors at all under the shared zero-measurement convention,
/// simply leaves the window unchanged rather than surfacing NaN.
#[derive(Debug, Clone)]
pub struct RollingMape {
    window: usize,
    errs: VecDeque<f64>,
}

impl RollingMape {
    /// Rolling window over the last `window` errors (`window >= 1`).
    pub fn new(window: usize) -> Self {
        assert!(window >= 1, "window must hold at least one error");
        RollingMape {
            window,
            // Effectively-unbounded windows (all-time scoring) must not
            // preallocate their nominal capacity.
            errs: VecDeque::with_capacity(window.min(1024)),
        }
    }

    /// Record one absolute percentage error, evicting the oldest entry
    /// once the window is full. Non-finite errors are dropped (the NaN
    /// guard) — they carry no ranking information.
    pub fn record(&mut self, err: f64) {
        if !err.is_finite() {
            return;
        }
        if self.errs.len() == self.window {
            self.errs.pop_front();
        }
        self.errs.push_back(err);
    }

    /// Mean of the in-window errors; `None` until something scores. The
    /// window is short (tens of entries), so the direct summation is
    /// both cheap and exact enough.
    pub fn mape(&self) -> Option<f64> {
        if self.errs.is_empty() {
            return None;
        }
        Some(self.errs.iter().sum::<f64>() / self.errs.len() as f64)
    }

    /// Number of in-window errors.
    pub fn count(&self) -> usize {
        self.errs.len()
    }
}

/// A streaming dynamic selector over a set of candidate predictors.
pub struct DynamicSelector {
    candidates: Vec<NamedPredictor>,
    /// Sum of absolute percentage errors and count, per candidate.
    err_sum: Vec<f64>,
    err_count: Vec<usize>,
    history: Vec<Observation>,
    /// Observations to absorb before errors start accumulating.
    training: usize,
}

impl DynamicSelector {
    /// Create a selector; `training` observations are absorbed before
    /// scoring begins (mirrors the paper's 15-value training set).
    pub fn new(candidates: Vec<NamedPredictor>, training: usize) -> Self {
        assert!(!candidates.is_empty(), "need at least one candidate");
        let n = candidates.len();
        DynamicSelector {
            candidates,
            err_sum: vec![0.0; n],
            err_count: vec![0; n],
            history: Vec::new(),
            training,
        }
    }

    /// Feed one observation: each candidate is scored on how well it
    /// would have predicted it, then the observation joins the history.
    pub fn observe(&mut self, o: Observation) {
        // tidy: allow(float-eq): exact zero-measurement sentinel, same convention as eval::abs_pct_error
        if self.history.len() >= self.training && o.bandwidth_kbs != 0.0 {
            for (i, p) in self.candidates.iter().enumerate() {
                if let Some(pred) = p.predict(&self.history, o.at_unix, o.file_size) {
                    let err = (o.bandwidth_kbs - pred).abs() / o.bandwidth_kbs.abs() * 100.0;
                    // NaN guard: a non-finite measurement or prediction
                    // must not poison the running sum — every later
                    // comparison against a NaN mean would be false.
                    if err.is_finite() {
                        self.err_sum[i] += err;
                        self.err_count[i] += 1;
                    }
                }
            }
        }
        self.history.push(o);
    }

    /// Current running MAPE of a candidate (by index), if it has scored.
    pub fn running_mape(&self, idx: usize) -> Option<f64> {
        if self.err_count[idx] == 0 {
            None
        } else {
            Some(self.err_sum[idx] / self.err_count[idx] as f64)
        }
    }

    /// The index and name of the currently best-scoring candidate.
    /// Candidates that have never scored rank below all scored ones;
    /// equal running errors break ties by candidate name (stable,
    /// documented rule — not by registration index, which would make
    /// the winner depend on suite construction order).
    pub fn best_candidate(&self) -> (usize, &str) {
        let best = (0..self.candidates.len())
            .min_by(|&a, &b| self.rank_cmp(a, b))
            .expect("candidates is non-empty by construction");
        (best, self.candidates[best].name())
    }

    /// Total ranking order: `(running MAPE or +inf, name)`. `total_cmp`
    /// keeps the order total even for non-finite values, and the name
    /// component makes every tie deterministic.
    fn rank_cmp(&self, a: usize, b: usize) -> std::cmp::Ordering {
        let ma = self.running_mape(a).unwrap_or(f64::INFINITY);
        let mb = self.running_mape(b).unwrap_or(f64::INFINITY);
        ma.total_cmp(&mb)
            .then_with(|| self.candidates[a].name().cmp(self.candidates[b].name()))
    }

    /// Predict for a transfer of `target_size` at `now` using the
    /// best-scoring candidate; falls back through candidates in score
    /// order (ties again broken by name) if the best declines. Returns
    /// `(candidate name, prediction)`.
    pub fn predict(&self, now: u64, target_size: u64) -> Option<(&str, f64)> {
        let mut order: Vec<usize> = (0..self.candidates.len()).collect();
        order.sort_by(|&a, &b| self.rank_cmp(a, b));
        for i in order {
            if let Some(pred) = self.candidates[i].predict(&self.history, now, target_size) {
                return Some((self.candidates[i].name(), pred));
            }
        }
        None
    }

    /// Number of absorbed observations.
    pub fn observed(&self) -> usize {
        self.history.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::PAPER_MB;
    use crate::last::LastValue;
    use crate::mean::MeanPredictor;
    use crate::registry::NamedPredictor;
    use crate::window::Window;

    fn obs(i: u64, bw: f64) -> Observation {
        Observation::new(1_000 + i, bw, 100 * PAPER_MB)
    }

    fn selector() -> DynamicSelector {
        DynamicSelector::new(
            vec![
                NamedPredictor::new(Box::new(LastValue::new()), false),
                NamedPredictor::new(Box::new(MeanPredictor::new(Window::All)), false),
            ],
            5,
        )
    }

    #[test]
    fn picks_lv_on_regime_switching_series() {
        let mut s = selector();
        // Step series: LV tracks, AVG lags.
        for i in 0..40 {
            let bw = if i < 20 { 100.0 } else { 1_000.0 };
            s.observe(obs(i, bw));
        }
        let (_, name) = s.best_candidate();
        assert_eq!(name, "LV");
        let (used, pred) = s.predict(2_000, 100 * PAPER_MB).unwrap();
        assert_eq!(used, "LV");
        assert_eq!(pred, 1_000.0);
    }

    #[test]
    fn picks_mean_on_alternating_noise() {
        let mut s = selector();
        // Alternating 90/110: mean (100) beats last-value (always 20% off).
        for i in 0..40 {
            let bw = if i % 2 == 0 { 90.0 } else { 110.0 };
            s.observe(obs(i, bw));
        }
        let (_, name) = s.best_candidate();
        assert_eq!(name, "AVG");
    }

    #[test]
    fn training_period_suppresses_scoring() {
        let mut s = selector();
        for i in 0..5 {
            s.observe(obs(i, 100.0));
        }
        assert_eq!(s.running_mape(0), None);
        assert_eq!(s.running_mape(1), None);
        s.observe(obs(5, 100.0));
        // Sixth observation scored against five-strong history.
        assert!(s.running_mape(0).is_some());
    }

    #[test]
    fn predict_before_any_history_declines() {
        let s = selector();
        assert!(s.predict(0, PAPER_MB).is_none());
    }

    #[test]
    fn zero_bandwidth_observations_not_scored() {
        let mut s = selector();
        for i in 0..6 {
            s.observe(obs(i, 100.0));
        }
        let before = s.err_count[0];
        s.observe(obs(6, 0.0));
        assert_eq!(s.err_count[0], before);
        assert_eq!(s.observed(), 7);
    }

    #[test]
    fn equal_errors_break_ties_by_name() {
        // Two copies of the same technique under different names score
        // identically; the lexicographically smaller name must win
        // regardless of registration order.
        let mk = |name_first: bool| {
            let mut cands = vec![
                NamedPredictor::new(Box::new(MeanPredictor::new(Window::All)), false),
                NamedPredictor::new(Box::new(MeanPredictor::new(Window::LastN(1_000))), false),
            ];
            if !name_first {
                cands.reverse();
            }
            let mut s = DynamicSelector::new(cands, 2);
            for i in 0..10 {
                s.observe(obs(i, 100.0 + (i % 3) as f64));
            }
            s.best_candidate().1.to_string()
        };
        // AVG < AVG1000 lexicographically; same answer in both orders.
        assert_eq!(mk(true), "AVG");
        assert_eq!(mk(false), "AVG");
    }

    #[test]
    fn nan_measurements_do_not_poison_running_mape() {
        let mut s = selector();
        for i in 0..8 {
            s.observe(obs(i, 100.0));
        }
        let before = s.running_mape(0).unwrap();
        assert!(before.is_finite());
        // A NaN bandwidth produces a NaN error; the guard must drop it.
        s.observe(obs(8, f64::NAN));
        s.observe(obs(9, 100.0));
        let after = s.running_mape(0).unwrap();
        assert!(after.is_finite(), "running MAPE poisoned: {after}");
        // Ranking still total and usable.
        let (_, name) = s.best_candidate();
        assert!(!name.is_empty());
    }
}
