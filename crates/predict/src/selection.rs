//! Dynamic predictor selection — the NWS-style "evaluate a number of
//! techniques and choose the most appropriate one on the fly" extension
//! the paper names as future work (§4.4, §7).
//!
//! The selector maintains, for every candidate predictor, its running
//! mean absolute percentage error on the observations seen so far; a
//! prediction request is answered by the candidate with the lowest
//! running error (falling back through candidates that decline).

use crate::observation::Observation;
use crate::registry::NamedPredictor;

/// A streaming dynamic selector over a set of candidate predictors.
pub struct DynamicSelector {
    candidates: Vec<NamedPredictor>,
    /// Sum of absolute percentage errors and count, per candidate.
    err_sum: Vec<f64>,
    err_count: Vec<usize>,
    history: Vec<Observation>,
    /// Observations to absorb before errors start accumulating.
    training: usize,
}

impl DynamicSelector {
    /// Create a selector; `training` observations are absorbed before
    /// scoring begins (mirrors the paper's 15-value training set).
    pub fn new(candidates: Vec<NamedPredictor>, training: usize) -> Self {
        assert!(!candidates.is_empty(), "need at least one candidate");
        let n = candidates.len();
        DynamicSelector {
            candidates,
            err_sum: vec![0.0; n],
            err_count: vec![0; n],
            history: Vec::new(),
            training,
        }
    }

    /// Feed one observation: each candidate is scored on how well it
    /// would have predicted it, then the observation joins the history.
    pub fn observe(&mut self, o: Observation) {
        // tidy: allow(float-eq): exact zero-measurement sentinel, same convention as eval::abs_pct_error
        if self.history.len() >= self.training && o.bandwidth_kbs != 0.0 {
            for (i, p) in self.candidates.iter().enumerate() {
                if let Some(pred) = p.predict(&self.history, o.at_unix, o.file_size) {
                    let err = (o.bandwidth_kbs - pred).abs() / o.bandwidth_kbs.abs() * 100.0;
                    self.err_sum[i] += err;
                    self.err_count[i] += 1;
                }
            }
        }
        self.history.push(o);
    }

    /// Current running MAPE of a candidate (by index), if it has scored.
    pub fn running_mape(&self, idx: usize) -> Option<f64> {
        if self.err_count[idx] == 0 {
            None
        } else {
            Some(self.err_sum[idx] / self.err_count[idx] as f64)
        }
    }

    /// The index and name of the currently best-scoring candidate.
    /// Candidates that have never scored rank below all scored ones.
    pub fn best_candidate(&self) -> (usize, &str) {
        let mut best = 0usize;
        let mut best_mape = f64::INFINITY;
        let mut found = false;
        for i in 0..self.candidates.len() {
            if let Some(m) = self.running_mape(i) {
                if !found || m < best_mape {
                    best = i;
                    best_mape = m;
                    found = true;
                }
            }
        }
        (best, self.candidates[best].name())
    }

    /// Predict for a transfer of `target_size` at `now` using the
    /// best-scoring candidate; falls back through candidates in score
    /// order if the best declines. Returns `(candidate name, prediction)`.
    pub fn predict(&self, now: u64, target_size: u64) -> Option<(&str, f64)> {
        let mut order: Vec<usize> = (0..self.candidates.len()).collect();
        order.sort_by(|&a, &b| {
            let ma = self.running_mape(a).unwrap_or(f64::INFINITY);
            let mb = self.running_mape(b).unwrap_or(f64::INFINITY);
            ma.total_cmp(&mb)
        });
        for i in order {
            if let Some(pred) = self.candidates[i].predict(&self.history, now, target_size) {
                return Some((self.candidates[i].name(), pred));
            }
        }
        None
    }

    /// Number of absorbed observations.
    pub fn observed(&self) -> usize {
        self.history.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::PAPER_MB;
    use crate::last::LastValue;
    use crate::mean::MeanPredictor;
    use crate::registry::NamedPredictor;
    use crate::window::Window;

    fn obs(i: u64, bw: f64) -> Observation {
        Observation {
            at_unix: 1_000 + i,
            bandwidth_kbs: bw,
            file_size: 100 * PAPER_MB,
        }
    }

    fn selector() -> DynamicSelector {
        DynamicSelector::new(
            vec![
                NamedPredictor::new(Box::new(LastValue::new()), false),
                NamedPredictor::new(Box::new(MeanPredictor::new(Window::All)), false),
            ],
            5,
        )
    }

    #[test]
    fn picks_lv_on_regime_switching_series() {
        let mut s = selector();
        // Step series: LV tracks, AVG lags.
        for i in 0..40 {
            let bw = if i < 20 { 100.0 } else { 1_000.0 };
            s.observe(obs(i, bw));
        }
        let (_, name) = s.best_candidate();
        assert_eq!(name, "LV");
        let (used, pred) = s.predict(2_000, 100 * PAPER_MB).unwrap();
        assert_eq!(used, "LV");
        assert_eq!(pred, 1_000.0);
    }

    #[test]
    fn picks_mean_on_alternating_noise() {
        let mut s = selector();
        // Alternating 90/110: mean (100) beats last-value (always 20% off).
        for i in 0..40 {
            let bw = if i % 2 == 0 { 90.0 } else { 110.0 };
            s.observe(obs(i, bw));
        }
        let (_, name) = s.best_candidate();
        assert_eq!(name, "AVG");
    }

    #[test]
    fn training_period_suppresses_scoring() {
        let mut s = selector();
        for i in 0..5 {
            s.observe(obs(i, 100.0));
        }
        assert_eq!(s.running_mape(0), None);
        assert_eq!(s.running_mape(1), None);
        s.observe(obs(5, 100.0));
        // Sixth observation scored against five-strong history.
        assert!(s.running_mape(0).is_some());
    }

    #[test]
    fn predict_before_any_history_declines() {
        let s = selector();
        assert!(s.predict(0, PAPER_MB).is_none());
    }

    #[test]
    fn zero_bandwidth_observations_not_scored() {
        let mut s = selector();
        for i in 0..6 {
            s.observe(obs(i, 100.0));
        }
        let before = s.err_count[0];
        s.observe(obs(6, 0.0));
        assert_eq!(s.err_count[0], before);
        assert_eq!(s.observed(), 7);
    }
}
