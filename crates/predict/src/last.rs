//! The last-value predictor (`LV`): the degenerate sliding window of
//! length one (§4.2). Downey and Harchol-Balter showed last-value to be a
//! surprisingly strong predictor for CPU resources; the paper includes it
//! as a baseline for network transfers.

use crate::observation::Observation;
use crate::predictor::{Predictor, PredictorSpec};

/// Predict the next bandwidth as exactly the previous one.
#[derive(Debug, Clone, Default)]
pub struct LastValue;

impl LastValue {
    /// Construct the `LV` predictor.
    pub fn new() -> Self {
        LastValue
    }
}

impl Predictor for LastValue {
    fn name(&self) -> &str {
        "LV"
    }

    fn predict(&self, history: &[Observation], _now: u64) -> Option<f64> {
        history.last().map(|o| o.bandwidth_kbs)
    }

    fn spec(&self) -> Option<PredictorSpec> {
        Some(PredictorSpec::Last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::testutil::history;

    #[test]
    fn returns_most_recent() {
        let h = history(&[1.0, 2.0, 3.0]);
        assert_eq!(LastValue::new().predict(&h, 0), Some(3.0));
    }

    #[test]
    fn empty_history_is_none() {
        assert_eq!(LastValue::new().predict(&[], 0), None);
    }

    #[test]
    fn name_is_lv() {
        assert_eq!(LastValue::new().name(), "LV");
    }
}
