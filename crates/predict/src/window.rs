//! Context-insensitive history filters (§4.2).
//!
//! A [`Window`] selects which portion of the measurement history a
//! predictor sees: everything, a fixed number of most-recent values
//! (sliding window), or a temporal window of the most recent span of
//! time. Temporal windows matter because the paper's measurements arrive
//! at *irregular* intervals — "last 25 values" and "last 25 hours" select
//! very different data on a bursty log.

use serde::{Deserialize, Serialize};

use crate::observation::Observation;

/// A history-selection window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Window {
    /// The entire history.
    All,
    /// The most recent `n` observations.
    LastN(usize),
    /// Observations within the last `secs` seconds before the prediction
    /// instant.
    LastSeconds(u64),
}

impl Window {
    /// Apply the window to a time-ordered history, given the prediction
    /// instant `now` (Unix seconds). Returns the selected suffix.
    ///
    /// The history must be sorted by `at_unix` (nondecreasing); the
    /// replay evaluator guarantees this.
    pub fn select<'a>(&self, history: &'a [Observation], now: u64) -> &'a [Observation] {
        match *self {
            Window::All => history,
            Window::LastN(n) => {
                let start = history.len().saturating_sub(n);
                &history[start..]
            }
            Window::LastSeconds(secs) => {
                let cutoff = now.saturating_sub(secs);
                let start = history.partition_point(|o| o.at_unix < cutoff);
                &history[start..]
            }
        }
    }

    /// Human-readable suffix used in predictor names ("5", "15hr", "10d").
    pub fn name_suffix(&self) -> String {
        match *self {
            Window::All => String::new(),
            Window::LastN(n) => n.to_string(),
            Window::LastSeconds(s) => {
                if s % 86_400 == 0 {
                    format!("{}d", s / 86_400)
                } else if s % 3_600 == 0 {
                    format!("{}hr", s / 3_600)
                } else {
                    format!("{s}s")
                }
            }
        }
    }
}

/// Convenience constructors matching the paper's Figure 4 windows.
pub mod paper {
    use super::Window;

    /// Last 5 observations.
    pub const LAST_5: Window = Window::LastN(5);
    /// Last 15 observations.
    pub const LAST_15: Window = Window::LastN(15);
    /// Last 25 observations.
    pub const LAST_25: Window = Window::LastN(25);
    /// Last 5 hours.
    pub const HOURS_5: Window = Window::LastSeconds(5 * 3_600);
    /// Last 15 hours.
    pub const HOURS_15: Window = Window::LastSeconds(15 * 3_600);
    /// Last 25 hours.
    pub const HOURS_25: Window = Window::LastSeconds(25 * 3_600);
    /// Last 5 days.
    pub const DAYS_5: Window = Window::LastSeconds(5 * 86_400);
    /// Last 10 days.
    pub const DAYS_10: Window = Window::LastSeconds(10 * 86_400);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(times: &[u64]) -> Vec<Observation> {
        times
            .iter()
            .map(|&t| Observation {
                at_unix: t,
                bandwidth_kbs: t as f64,
                file_size: 1,
                streams: 1,
                tcp_buffer: 0,
            })
            .collect()
    }

    #[test]
    fn all_selects_everything() {
        let h = obs(&[1, 2, 3]);
        assert_eq!(Window::All.select(&h, 100).len(), 3);
    }

    #[test]
    fn last_n_takes_suffix() {
        let h = obs(&[1, 2, 3, 4, 5]);
        let s = Window::LastN(2).select(&h, 100);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].at_unix, 4);
    }

    #[test]
    fn last_n_larger_than_history() {
        let h = obs(&[1, 2]);
        assert_eq!(Window::LastN(10).select(&h, 100).len(), 2);
    }

    #[test]
    fn temporal_window_cuts_by_time() {
        let h = obs(&[100, 200, 300, 400]);
        // now=450, window=200s -> cutoff=250 -> keep 300, 400.
        let s = Window::LastSeconds(200).select(&h, 450);
        assert_eq!(s.iter().map(|o| o.at_unix).collect::<Vec<_>>(), [300, 400]);
    }

    #[test]
    fn temporal_window_boundary_inclusive() {
        let h = obs(&[100, 250, 400]);
        // cutoff = 250 exactly: observation at 250 is kept (>= cutoff).
        let s = Window::LastSeconds(200).select(&h, 450);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn temporal_window_saturates_before_epoch() {
        let h = obs(&[1, 2]);
        let s = Window::LastSeconds(1_000_000).select(&h, 10);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn empty_history() {
        let h: Vec<Observation> = Vec::new();
        assert!(Window::All.select(&h, 5).is_empty());
        assert!(Window::LastN(3).select(&h, 5).is_empty());
        assert!(Window::LastSeconds(3).select(&h, 5).is_empty());
    }

    #[test]
    fn name_suffixes_match_paper() {
        assert_eq!(paper::LAST_5.name_suffix(), "5");
        assert_eq!(paper::HOURS_15.name_suffix(), "15hr");
        assert_eq!(paper::DAYS_10.name_suffix(), "10d");
        assert_eq!(Window::All.name_suffix(), "");
        assert_eq!(Window::LastSeconds(90).name_suffix(), "90s");
    }
}
