//! The paper's predictor suite (Figure 4) and the classified/unclassified
//! pairing used in the evaluation (§4.4: 15 predictors over all data plus
//! the same 15 over size-classified data = 30).

use std::cell::RefCell;

use crate::arima::ArPredictor;
use crate::classify::{filter_class_into, SizeClass};
use crate::last::LastValue;
use crate::mean::MeanPredictor;
use crate::median::MedianPredictor;
use crate::observation::Observation;
use crate::predictor::{Predictor, PredictorSpec};
use crate::regression::{RegKind, RegressionPredictor};
use crate::window::{paper, Window};

thread_local! {
    // Scratch buffer for class-filtered histories. `predict` takes
    // `&self` and must stay `Sync` (the replay engine fans predictors
    // out across threads), so the reusable buffer is per-thread rather
    // than per-predictor.
    static CLASS_SCRATCH: RefCell<Vec<Observation>> = const { RefCell::new(Vec::new()) };
}

/// Build the paper's 15 context-insensitive predictors, in Figure 4's
/// reading order: `AVG MED AR LV AVG5 MED5 AVG15 MED15 AVG25 MED25
/// AVG5hr AVG15hr AVG25hr AR5d AR10d`.
pub fn paper_predictors() -> Vec<Box<dyn Predictor>> {
    vec![
        Box::new(MeanPredictor::new(Window::All)),
        Box::new(MedianPredictor::new(Window::All)),
        Box::new(ArPredictor::new(Window::All)),
        Box::new(LastValue::new()),
        Box::new(MeanPredictor::new(paper::LAST_5)),
        Box::new(MedianPredictor::new(paper::LAST_5)),
        Box::new(MeanPredictor::new(paper::LAST_15)),
        Box::new(MedianPredictor::new(paper::LAST_15)),
        Box::new(MeanPredictor::new(paper::LAST_25)),
        Box::new(MedianPredictor::new(paper::LAST_25)),
        Box::new(MeanPredictor::new(paper::HOURS_5)),
        Box::new(MeanPredictor::new(paper::HOURS_15)),
        Box::new(MeanPredictor::new(paper::HOURS_25)),
        Box::new(ArPredictor::new(paper::DAYS_5)),
        Box::new(ArPredictor::new(paper::DAYS_10)),
    ]
}

/// A predictor with an optional context-sensitive (file-size
/// classification) wrapper — one of the paper's 30 evaluated variants.
pub struct NamedPredictor {
    name: String,
    inner: Box<dyn Predictor>,
    classified: bool,
}

impl NamedPredictor {
    /// Wrap a base predictor. Classified variants carry a `+C` suffix in
    /// their display name.
    pub fn new(inner: Box<dyn Predictor>, classified: bool) -> Self {
        let name = if classified {
            format!("{}+C", inner.name())
        } else {
            inner.name().to_string()
        };
        NamedPredictor {
            name,
            inner,
            classified,
        }
    }

    /// Display name (`AVG25`, `AVG25+C`, ...).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The base predictor's name without the classification suffix.
    pub fn base_name(&self) -> &str {
        self.inner.name()
    }

    /// Whether this variant filters history by the target's size class.
    pub fn is_classified(&self) -> bool {
        self.classified
    }

    /// Predict the bandwidth of a transfer of `target_size` bytes
    /// starting at `now`, given the full history. For classified
    /// variants, only observations in the target's size class are
    /// consulted (and the window then applies *within* the class, per
    /// §4.3: "choosing only to use data for similarly sized file
    /// transfers").
    pub fn predict(&self, history: &[Observation], now: u64, target_size: u64) -> Option<f64> {
        if self.classified {
            let class = SizeClass::of_bytes(target_size);
            CLASS_SCRATCH.with(|scratch| {
                let mut buf = scratch.borrow_mut();
                filter_class_into(history, class, &mut buf);
                self.inner.predict_sized(&buf[..], now, target_size)
            })
        } else {
            self.inner.predict_sized(history, now, target_size)
        }
    }

    /// Structural description of the base predictor (see
    /// [`Predictor::spec`]); `None` for custom predictors.
    pub fn spec(&self) -> Option<PredictorSpec> {
        self.inner.spec()
    }
}

impl std::fmt::Debug for NamedPredictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NamedPredictor")
            .field("name", &self.name)
            .field("classified", &self.classified)
            .finish()
    }
}

/// Construct the standard predictor a spec describes.
pub fn predictor_for_spec(spec: PredictorSpec) -> Box<dyn Predictor> {
    match spec {
        PredictorSpec::Mean(w) => Box::new(MeanPredictor::new(w)),
        PredictorSpec::Median(w) => Box::new(MedianPredictor::new(w)),
        PredictorSpec::Ar(w) => Box::new(ArPredictor::new(w)),
        PredictorSpec::Last => Box::new(LastValue::new()),
        PredictorSpec::Regression(k, w) => Box::new(RegressionPredictor::new(k, w)),
    }
}

/// Build a suite variant from its display name (`AVG25`, `AR10d+C`,
/// ...): the base name selects the spec via
/// [`PredictorSpec::from_str`](std::str::FromStr), and a trailing `+C`
/// selects the context-sensitive (size-classified) wrapper. This is how
/// benches and CLI flags turn `--predictor AVG15hr+C` into a runnable
/// predictor; `None` when the name does not parse.
pub fn predictor_by_name(name: &str) -> Option<NamedPredictor> {
    let (base, classified) = match name.strip_suffix("+C") {
        Some(base) => (base, true),
        None => (name, false),
    };
    let spec: PredictorSpec = base.parse().ok()?;
    Some(NamedPredictor::new(predictor_for_spec(spec), classified))
}

/// The 15 paper predictors in one (un)classified flavour.
pub fn paper_suite(classified: bool) -> Vec<NamedPredictor> {
    paper_predictors()
        .into_iter()
        .map(|p| NamedPredictor::new(p, classified))
        .collect()
}

/// All 30 variants: 15 unclassified followed by 15 classified (§4.4).
pub fn full_suite() -> Vec<NamedPredictor> {
    let mut v = paper_suite(false);
    v.extend(paper_suite(true));
    v
}

/// The regression family (see [`crate::regression`]): each covariate
/// kind over the full history, plus windowed size variants — the
/// follow-up paper's techniques alongside the original 30.
pub fn regression_predictors() -> Vec<Box<dyn Predictor>> {
    vec![
        Box::new(RegressionPredictor::new(RegKind::SizeLinear, Window::All)),
        Box::new(RegressionPredictor::new(
            RegKind::SizeLinear,
            paper::LAST_25,
        )),
        Box::new(RegressionPredictor::new(RegKind::SizeQuad, Window::All)),
        Box::new(RegressionPredictor::new(RegKind::Streams, Window::All)),
        Box::new(RegressionPredictor::new(RegKind::Buffer, Window::All)),
        Box::new(RegressionPredictor::new(RegKind::TimeOfDay, Window::All)),
        Box::new(RegressionPredictor::new(
            RegKind::TimeOfDay,
            paper::HOURS_25,
        )),
    ]
}

/// The regression family as suite variants, in both flavours: 7
/// unclassified (`REGsz`, ...) followed by 7 classified (`REGsz+C`,
/// ...), mirroring the paper's plain/`+C` structure. Classification is
/// *not* redundant for the size regressions even though the covariate
/// is the size: one global fit straddles four decades of file size and
/// is dominated by the large transfers, while a per-class fit captures
/// the local bandwidth/size relation (on the December campaign the
/// classified quadratic halves the best fixed predictor's error).
pub fn regression_suite() -> Vec<NamedPredictor> {
    let mut v: Vec<NamedPredictor> = regression_predictors()
        .into_iter()
        .map(|p| NamedPredictor::new(p, false))
        .collect();
    v.extend(
        regression_predictors()
            .into_iter()
            .map(|p| NamedPredictor::new(p, true)),
    );
    v
}

/// The paper's 30 variants plus the regression family in both flavours
/// — the candidate pool the tournament meta-predictor ranks.
pub fn extended_suite() -> Vec<NamedPredictor> {
    let mut v = full_suite();
    v.extend(regression_suite());
    v
}

/// The paper's Figure 4 table as `(row label, AVG, MED, AR)` cells — used
/// by the `fig04_predictor_table` reproduction binary.
pub fn figure4_table() -> Vec<(&'static str, &'static str, &'static str, &'static str)> {
    vec![
        ("All data", "AVG", "MED", "AR"),
        ("Last 1 Value", "LV", "", ""),
        ("Last 5 Values", "AVG5", "MED5", ""),
        ("Last 15 Values", "AVG15", "MED15", ""),
        ("Last 25 Values", "AVG25", "MED25", ""),
        ("Last 5 Hours", "AVG5hr", "", ""),
        ("Last 15 Hours", "AVG15hr", "", ""),
        ("Last 25 Hours", "AVG25hr", "", ""),
        ("Last 5 Days", "", "", "AR5d"),
        ("Last 10 Days", "", "", "AR10d"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::PAPER_MB;

    #[test]
    fn fifteen_predictors_with_paper_names() {
        let preds = paper_predictors();
        assert_eq!(preds.len(), 15);
        let names: Vec<&str> = preds.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec![
                "AVG", "MED", "AR", "LV", "AVG5", "MED5", "AVG15", "MED15", "AVG25", "MED25",
                "AVG5hr", "AVG15hr", "AVG25hr", "AR5d", "AR10d"
            ]
        );
    }

    #[test]
    fn thirty_variants_total() {
        let suite = full_suite();
        assert_eq!(suite.len(), 30);
        assert_eq!(suite.iter().filter(|p| p.is_classified()).count(), 15);
        assert_eq!(suite[0].name(), "AVG");
        assert_eq!(suite[15].name(), "AVG+C");
    }

    #[test]
    fn figure4_covers_all_names() {
        let table = figure4_table();
        let mut from_table: Vec<&str> = table
            .iter()
            .flat_map(|(_, a, m, r)| [*a, *m, *r])
            .filter(|s| !s.is_empty())
            .collect();
        from_table.sort_unstable();
        let mut names: Vec<String> = paper_predictors()
            .iter()
            .map(|p| p.name().to_string())
            .collect();
        names.sort();
        assert_eq!(
            from_table,
            names.iter().map(String::as_str).collect::<Vec<_>>()
        );
    }

    #[test]
    fn extended_suite_appends_regression_family() {
        let suite = extended_suite();
        assert_eq!(suite.len(), 44);
        let names: Vec<&str> = suite[30..].iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec![
                "REGsz",
                "REGsz25",
                "REGsq",
                "REGstr",
                "REGbuf",
                "REGtod",
                "REGtod25hr",
                "REGsz+C",
                "REGsz25+C",
                "REGsq+C",
                "REGstr+C",
                "REGbuf+C",
                "REGtod+C",
                "REGtod25hr+C",
            ]
        );
        assert!(suite[30..37].iter().all(|p| !p.is_classified()));
        assert!(suite[37..].iter().all(|p| p.is_classified()));
    }

    #[test]
    fn by_name_reconstructs_every_suite_variant() {
        for p in extended_suite() {
            let rebuilt = predictor_by_name(p.name()).unwrap_or_else(|| {
                panic!("{} did not parse", p.name());
            });
            assert_eq!(rebuilt.name(), p.name());
            assert_eq!(rebuilt.is_classified(), p.is_classified());
            assert_eq!(rebuilt.spec(), p.spec());
        }
        assert!(predictor_by_name("AVG5hr+C").is_some());
        assert!(predictor_by_name("bogus").is_none());
        assert!(predictor_by_name("+C").is_none());
    }

    #[test]
    fn classified_variant_filters_history() {
        // History: small files at 100 KB/s, huge files at 9000 KB/s.
        let mut h = Vec::new();
        for i in 0..10u64 {
            h.push(Observation {
                at_unix: i,
                bandwidth_kbs: 100.0,
                file_size: PAPER_MB, // 1 MB -> 10MB class
                streams: 1,
                tcp_buffer: 0,
            });
            h.push(Observation {
                at_unix: i,
                bandwidth_kbs: 9000.0,
                file_size: 1000 * PAPER_MB, // 1 GB class
                streams: 1,
                tcp_buffer: 0,
            });
        }
        let unclassified = NamedPredictor::new(Box::new(MeanPredictor::new(Window::All)), false);
        let classified = NamedPredictor::new(Box::new(MeanPredictor::new(Window::All)), true);
        let u = unclassified.predict(&h, 100, 1000 * PAPER_MB).unwrap();
        let c = classified.predict(&h, 100, 1000 * PAPER_MB).unwrap();
        assert!((u - 4550.0).abs() < 1e-9, "mixed mean {u}");
        assert!((c - 9000.0).abs() < 1e-9, "class mean {c}");
    }

    #[test]
    fn classified_with_no_class_history_is_none() {
        let h = vec![Observation {
            at_unix: 0,
            bandwidth_kbs: 100.0,
            file_size: PAPER_MB,
            streams: 1,
            tcp_buffer: 0,
        }];
        let classified = NamedPredictor::new(Box::new(MeanPredictor::new(Window::All)), true);
        assert_eq!(classified.predict(&h, 1, 1000 * PAPER_MB), None);
    }
}
