//! The crate-wide error type.
//!
//! Every fallible surface in `infod` — filter parsing, LDIF decoding,
//! schema validation, provider refreshes, and the serving layer's
//! admission control — converges on [`Error`], so the [`InquiryService`]
//! trait can expose one error type instead of four. The per-subsystem
//! errors ([`FilterError`], [`LdifError`], [`SchemaError`],
//! [`ProviderError`]) still exist and still carry their structured
//! detail; `Error` wraps them with `From` conversions and keeps the
//! cause chain intact through `std::error::Error::source`.
//!
//! [`InquiryService`]: crate::service::InquiryService

use std::fmt;

use crate::filter::FilterError;
use crate::gris::ProviderError;
use crate::ldif::LdifError;
use crate::schema::SchemaError;

/// The unified `infod` error. Non-exhaustive: downstream matches must
/// carry a wildcard arm, so new serving-layer failure modes can be added
/// without a breaking release.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// A search-filter string failed to parse.
    Filter(FilterError),
    /// An LDIF block failed to parse.
    Ldif(LdifError),
    /// An entry failed schema validation.
    Schema(SchemaError),
    /// An information provider's refresh failed.
    Provider(ProviderError),
    /// Admission control shed the inquiry: the serving layer's queue was
    /// already at its configured depth. A typed rejection, never a
    /// stall — callers retry later or fall back.
    Overloaded {
        /// Inquiries queued when this one arrived.
        queued: usize,
        /// The configured shed threshold.
        limit: usize,
    },
}

/// The error type of [`InquiryService::inquire`] — an alias for the
/// unified [`Error`].
///
/// [`InquiryService::inquire`]: crate::service::InquiryService::inquire
pub type InquiryError = Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Filter(e) => write!(f, "filter: {e}"),
            Error::Ldif(e) => write!(f, "ldif: {e}"),
            Error::Schema(e) => write!(f, "schema: {e}"),
            Error::Provider(e) => write!(f, "{e}"),
            Error::Overloaded { queued, limit } => {
                write!(f, "overloaded: {queued} inquiries queued (limit {limit})")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Filter(e) => Some(e),
            Error::Ldif(e) => Some(e),
            Error::Schema(e) => Some(e),
            Error::Provider(e) => Some(e),
            Error::Overloaded { .. } => None,
        }
    }
}

impl From<FilterError> for Error {
    fn from(e: FilterError) -> Self {
        Error::Filter(e)
    }
}

impl From<LdifError> for Error {
    fn from(e: LdifError) -> Self {
        Error::Ldif(e)
    }
}

impl From<SchemaError> for Error {
    fn from(e: SchemaError) -> Self {
        Error::Schema(e)
    }
}

impl From<ProviderError> for Error {
    fn from(e: ProviderError) -> Self {
        Error::Provider(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn conversions_preserve_the_cause_chain() {
        let e: Error = crate::filter::parse("(").unwrap_err().into();
        assert!(matches!(e, Error::Filter(_)));
        assert!(e.source().is_some());

        let e: Error = ProviderError::new("log unreadable").into();
        assert!(e.to_string().contains("log unreadable"));

        let e: Error = LdifError::MissingColon(3).into();
        assert!(matches!(e, Error::Ldif(LdifError::MissingColon(3))));

        let e: Error = SchemaError::NoDn.into();
        assert!(matches!(e, Error::Schema(SchemaError::NoDn)));
    }

    #[test]
    fn overloaded_is_a_typed_rejection() {
        let e = Error::Overloaded {
            queued: 65,
            limit: 64,
        };
        assert!(e.source().is_none());
        assert!(e.to_string().contains("65"));
        assert!(e.to_string().contains("64"));
    }
}
