//! A deterministic open-loop inquiry generator.
//!
//! Open-loop means arrivals do not wait for completions: inquiries
//! arrive on a seeded Poisson process at a configured rate regardless of
//! how the service is coping — the `jmqd/simul` M/M/c methodology. That
//! is the regime where admission control matters: a closed-loop driver
//! self-throttles and never exposes the overload behavior the serving
//! layer must survive.
//!
//! Everything runs on sim time (microseconds derived from the seed), so
//! a run is a pure function of its configuration: same seed, same
//! arrival times, same filter choices, same report — which is what lets
//! the obs-determinism test pin byte-identical snapshots and the bench
//! compare server variants on identical workloads.

use crate::error::Error;
use crate::filter::Filter;
use crate::service::{CacheStatus, InquiryRequest, InquiryService};

use super::{splitmix64, unit_open01};

/// Configuration for one open-loop run.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Seed for the arrival and filter-choice streams.
    pub seed: u64,
    /// Mean arrival rate, inquiries per second.
    pub rate_per_sec: f64,
    /// Run length, seconds of sim time.
    pub duration_secs: u64,
    /// Unix second the run starts at.
    pub start_unix: u64,
    /// The filter pool; each arrival draws one uniformly.
    pub filters: Vec<String>,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        OpenLoopConfig {
            seed: 0,
            rate_per_sec: 200.0,
            duration_secs: 30,
            start_unix: 1_000_000,
            filters: vec!["(objectclass=*)".to_string()],
        }
    }
}

/// What one open-loop run did.
#[derive(Debug, Clone, Default)]
pub struct OpenLoopReport {
    /// Arrivals generated.
    pub offered: u64,
    /// Inquiries answered (admitted).
    pub answered: u64,
    /// Inquiries shed by admission control.
    pub shed: u64,
    /// Answered inquiries that were coalesced onto an in-flight twin.
    pub coalesced: u64,
    /// Answers served entirely from shard caches.
    pub cache_hit_responses: u64,
    /// Entries returned across all answers.
    pub entries_returned: u64,
    /// Answers containing at least one stamped (stale) entry.
    pub stale_responses: u64,
    /// The largest `stalenesssecs` observed across all answers.
    pub max_staleness_secs: u64,
    /// Answered inquiries per second of sim time.
    pub sustained_qps: f64,
    /// Modeled per-inquiry latencies, microseconds, sorted ascending.
    /// Empty when the service has no admission model (latency 0).
    pub latencies_us: Vec<u64>,
}

impl OpenLoopReport {
    /// The exact p-th percentile latency (nearest-rank), microseconds.
    pub fn percentile_us(&self, p: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let n = self.latencies_us.len();
        let rank = ((p / 100.0) * n as f64).ceil().max(1.0) as usize;
        self.latencies_us[rank.min(n) - 1]
    }
}

/// Drive `svc` with seeded Poisson arrivals. `on_second(sec)` fires once
/// per sim second *before* that second's arrivals — the driver's hook to
/// run [`ShardedServer::refresh`](super::ShardedServer::refresh), renew
/// leases, or inject faults deterministically.
pub fn run_open_loop<S: InquiryService + ?Sized>(
    svc: &S,
    cfg: &OpenLoopConfig,
    mut on_second: impl FnMut(u64),
) -> OpenLoopReport {
    assert!(cfg.rate_per_sec > 0.0, "open-loop rate must be positive");
    assert!(!cfg.filters.is_empty(), "open-loop needs a filter pool");
    let filters: Vec<Filter> = cfg
        .filters
        .iter()
        .map(|f| crate::filter::parse(f).expect("open-loop filter must parse"))
        .collect();

    let start_us = cfg.start_unix * 1_000_000;
    let end_us = (cfg.start_unix + cfg.duration_secs) * 1_000_000;
    let mean_gap_us = 1_000_000.0 / cfg.rate_per_sec;

    let mut report = OpenLoopReport::default();
    let mut t_us = start_us;
    let mut next_second = cfg.start_unix;
    let mut stream = cfg.seed;
    loop {
        // Exponential interarrival on the arrival stream.
        stream = stream.wrapping_add(1);
        let gap = (-(unit_open01(splitmix64(stream ^ 0xa5a5_5a5a_0f0f_f0f0)).ln()) * mean_gap_us)
            .round() as u64;
        t_us += gap.max(1);
        if t_us >= end_us {
            // Fire remaining second boundaries so per-second upkeep (and
            // the final report hooks) cover the whole configured window.
            while next_second < cfg.start_unix + cfg.duration_secs {
                on_second(next_second);
                next_second += 1;
            }
            break;
        }
        let now_unix = t_us / 1_000_000;
        while next_second <= now_unix {
            on_second(next_second);
            next_second += 1;
        }
        stream = stream.wrapping_add(1);
        let pick = (splitmix64(stream ^ 0x5ee1_bad0_cafe_f00d) % filters.len() as u64) as usize;
        let req = InquiryRequest::new(filters[pick].clone(), now_unix).at_micros(t_us);
        report.offered += 1;
        match svc.inquire(&req) {
            Ok(resp) => {
                report.answered += 1;
                report.entries_returned += resp.entries.len() as u64;
                report.max_staleness_secs = report.max_staleness_secs.max(resp.staleness_secs);
                if resp.staleness_secs > 0 {
                    report.stale_responses += 1;
                }
                if resp.provenance.cache == CacheStatus::Hit {
                    report.cache_hit_responses += 1;
                }
                if resp.provenance.coalesced {
                    report.coalesced += 1;
                }
                if let Some(lat) = resp.provenance.modeled_latency_us {
                    report.latencies_us.push(lat);
                }
            }
            Err(Error::Overloaded { .. }) => report.shed += 1,
            Err(_) => {}
        }
    }
    report.latencies_us.sort_unstable();
    report.sustained_qps = report.answered as f64 / cfg.duration_secs.max(1) as f64;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gris::{Gris, InfoProvider, ProviderError};
    use crate::ldif::{Dn, Entry};
    use crate::serve::{AdmissionConfig, ServeConfig, ShardedServer};
    use std::sync::Arc;

    struct Fixed;

    impl InfoProvider for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn provide(&mut self, _now: u64) -> Result<Vec<Entry>, ProviderError> {
            let mut e = Entry::new(Dn::parse("cn=x, o=grid").unwrap());
            e.add("site", "lbl");
            Ok(vec![e])
        }
        fn ttl_secs(&self) -> u64 {
            3600
        }
    }

    fn server() -> ShardedServer {
        let srv = ShardedServer::new(ServeConfig {
            admission: Some(AdmissionConfig::default()),
            ..ServeConfig::default()
        });
        let mut g = Gris::new(Dn::parse("o=grid").unwrap());
        g.register_provider(Box::new(Fixed));
        srv.register_site("lbl", u64::MAX, Arc::new(g), 0);
        srv.refresh(0);
        srv
    }

    #[test]
    fn same_seed_replays_identically() {
        let cfg = OpenLoopConfig {
            seed: 42,
            rate_per_sec: 500.0,
            duration_secs: 5,
            filters: vec!["(site=lbl)".into(), "(site=*)".into()],
            ..OpenLoopConfig::default()
        };
        let a = run_open_loop(&server(), &cfg, |_| {});
        let b = run_open_loop(&server(), &cfg, |_| {});
        assert!(a.offered > 1_000, "offered {}", a.offered);
        assert_eq!(a.offered, b.offered);
        assert_eq!(a.answered, b.answered);
        assert_eq!(a.shed, b.shed);
        assert_eq!(a.latencies_us, b.latencies_us);
        assert_eq!(a.entries_returned, b.entries_returned);
    }

    #[test]
    fn on_second_fires_once_per_second_in_order() {
        let cfg = OpenLoopConfig {
            seed: 1,
            rate_per_sec: 50.0,
            duration_secs: 4,
            start_unix: 100,
            filters: vec!["(site=lbl)".into()],
        };
        let mut seen = Vec::new();
        run_open_loop(&server(), &cfg, |s| seen.push(s));
        assert_eq!(seen, vec![100, 101, 102, 103]);
    }

    #[test]
    fn percentiles_are_exact_nearest_rank() {
        let r = OpenLoopReport {
            latencies_us: (1..=100).collect(),
            ..OpenLoopReport::default()
        };
        assert_eq!(r.percentile_us(50.0), 50);
        assert_eq!(r.percentile_us(95.0), 95);
        assert_eq!(r.percentile_us(99.0), 99);
        assert_eq!(r.percentile_us(100.0), 100);
        assert_eq!(OpenLoopReport::default().percentile_us(50.0), 0);
    }
}
