//! The production query plane: a sharded, lock-minimized serving layer
//! in front of GRIS/GIIS.
//!
//! The paper's delivery path (§5) must answer *millions* of inquiries;
//! the direct path serializes every inquiry behind one lock and runs
//! provider refreshes inline. This module splits the read path from the
//! refresh path:
//!
//! * **Refresh path** — [`ShardedServer::refresh`] walks the registered
//!   sites, calls [`SnapshotSource::materialize`] on each live one, and
//!   swaps an immutable [`ShardSnapshot`] (an `Arc` behind a short
//!   `RwLock` hold) per shard. A site whose soft-state registration
//!   lapsed keeps its last materialized view, aging under the
//!   `stalenesssecs` machinery — serve stale, never block.
//! * **Read path** — [`InquiryService::inquire`] clones each shard's
//!   current snapshot `Arc` (one brief read-lock each), evaluates the
//!   filter against the immutable snapshot, and stamps degraded entries
//!   at inquiry time. Readers never contend with refreshes or with each
//!   other beyond the Arc clone.
//!
//! Because a snapshot is cut atomically per shard, every entry a reader
//! sees from one shard comes from a single refresh generation — the
//! mid-refresh torn read the direct path allows (a `stalenesssecs=*`
//! filter observing two generations at once) is structurally impossible.
//!
//! A per-shard TTL **prediction cache** memoizes filter evaluations
//! (keyed by the filter's canonical rendering); it is flushed whenever
//! the shard's snapshot swaps, and a cached answer that contains stamped
//! entries is only reused at the exact inquiry second it was computed
//! for, so `stalenesssecs` values never drift. **Admission control**
//! models an M/M/c queue on deterministic sim time: past the configured
//! queue depth an inquiry is shed with a typed
//! [`Overloaded`](crate::Error::Overloaded) rejection, and identical
//! in-flight inquiries coalesce onto one virtual service completion.

pub mod loadgen;

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use wanpred_obs::{names, ObsSink};

use crate::error::{Error, InquiryError};
use crate::gris::{MaterializedEntry, SnapshotSource};
use crate::ldif::Entry;
use crate::service::{
    CacheStatus, InquiryRequest, InquiryResponse, InquiryService, Provenance, ServedBy,
};

/// Splitmix64 avalanche: the workspace's deterministic hashing/stream
/// primitive (same constants as the simulator's seed derivation).
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// A uniform draw in (0, 1] from a hashed word (never exactly 0, so it
/// is safe under `ln`).
pub(crate) fn unit_open01(h: u64) -> f64 {
    (((h >> 11) + 1) as f64) / (1u64 << 53) as f64
}

/// A deterministic exponential sample with the given mean, microseconds,
/// at least 1.
pub(crate) fn exp_us(mean_us: u64, h: u64) -> u64 {
    let u = unit_open01(h);
    ((-(u.ln()) * mean_us as f64).round() as u64).max(1)
}

/// FNV-1a shard assignment for a site id.
fn shard_of(site: &str, shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in site.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// Admission-control configuration: a deterministic M/M/c service model
/// on the inquiry arrival clock.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Virtual servers (the `c` of M/M/c).
    pub servers: usize,
    /// Mean virtual service time, microseconds (exponentially
    /// distributed, deterministically sampled from `seed`).
    pub mean_service_us: u64,
    /// Inquiries allowed to wait; an arrival finding this many already
    /// queued is shed with [`Error::Overloaded`].
    pub max_queue: usize,
    /// Coalesce an inquiry whose filter is identical to one already in
    /// flight onto that inquiry's completion (no extra service demand).
    pub coalesce: bool,
    /// Seed for the service-time stream.
    pub seed: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            servers: 4,
            mean_service_us: 500,
            max_queue: 64,
            coalesce: true,
            seed: 0,
        }
    }
}

/// Serving-layer configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Snapshot shards; sites hash onto shards by id.
    pub shards: usize,
    /// Seconds a cached filter evaluation with *no* stamped entries may
    /// be reused. (Stamped answers are only reused at the exact second
    /// they were computed for, so `stalenesssecs` never drifts.)
    pub cache_ttl_secs: u64,
    /// Cached filter evaluations kept per shard (FIFO eviction).
    pub cache_capacity: usize,
    /// Admission control; `None` admits everything with no latency model.
    pub admission: Option<AdmissionConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 4,
            cache_ttl_secs: 5,
            cache_capacity: 256,
            admission: None,
        }
    }
}

/// One site's materialized entries inside a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SiteView {
    site: String,
    entries: Vec<MaterializedEntry>,
}

/// An immutable per-shard snapshot: everything a reader needs, cut in
/// one refresh generation.
#[derive(Debug, Default)]
struct ShardSnapshot {
    /// Monotone per-shard generation; bumps only when content changes.
    generation: u64,
    sites: Vec<SiteView>,
}

impl ShardSnapshot {
    fn is_empty(&self) -> bool {
        self.sites.iter().all(|s| s.entries.is_empty())
    }
}

/// A memoized filter evaluation against one shard snapshot.
struct CachedAnswer {
    /// The inquiry second the stamps were computed at.
    stamped_now: u64,
    /// Whether any entry carries a staleness stamp (restricts reuse).
    has_stamps: bool,
    entries: Vec<Entry>,
    staleness: u64,
}

#[derive(Default)]
struct FilterCache {
    answers: BTreeMap<String, CachedAnswer>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<String>,
}

impl FilterCache {
    fn clear(&mut self) {
        self.answers.clear();
        self.order.clear();
    }
}

struct Shard {
    current: RwLock<Arc<ShardSnapshot>>,
    cache: Mutex<FilterCache>,
}

/// A registered snapshot source plus its soft-state lease and the last
/// view it materialized (carried forward, aging, after lease expiry).
struct SiteHandle {
    source: Arc<dyn SnapshotSource>,
    ttl_secs: u64,
    last_seen: u64,
    /// `(entries, materialized_at)` from the last refresh that reached
    /// the source.
    last_view: Option<(Vec<MaterializedEntry>, u64)>,
}

/// The outcome of the virtual admission queue for one arrival.
enum Admission {
    Admitted {
        wait_us: u64,
        sojourn_us: u64,
        coalesced: bool,
    },
    Shed {
        queued: usize,
        limit: usize,
    },
}

/// A deterministic M/M/c virtual queue on the arrival clock.
struct VirtualQueue {
    cfg: AdmissionConfig,
    /// Per-server time at which it next becomes free.
    free_at: Vec<u64>,
    /// Start times of admitted inquiries not yet started at the head of
    /// the clock (monotone; drained as the clock advances).
    waiting: VecDeque<u64>,
    /// Filter → finish time, for coalescing identical in-flight
    /// inquiries.
    inflight: BTreeMap<String, u64>,
    /// Service-time stream position.
    seq: u64,
}

impl VirtualQueue {
    fn new(cfg: AdmissionConfig) -> Self {
        let servers = cfg.servers.max(1);
        VirtualQueue {
            cfg,
            free_at: vec![0; servers],
            waiting: VecDeque::new(),
            inflight: BTreeMap::new(),
            seq: 0,
        }
    }

    /// Process one arrival. `arrival_us` must be nondecreasing across
    /// calls (the open-loop generator guarantees this).
    fn offer(&mut self, arrival_us: u64, key: &str) -> Admission {
        // Advance the clock: everything that started by now is no longer
        // waiting, and finished inquiries leave the coalescing table.
        while self.waiting.front().is_some_and(|&s| s <= arrival_us) {
            self.waiting.pop_front();
        }
        self.inflight.retain(|_, fin| *fin > arrival_us);

        if self.cfg.coalesce {
            if let Some(&fin) = self.inflight.get(key) {
                return Admission::Admitted {
                    wait_us: 0,
                    sojourn_us: fin - arrival_us,
                    coalesced: true,
                };
            }
        }

        // Earliest-free server, lowest index on ties.
        let (i, &free) = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|&(i, &t)| (t, i))
            .expect("at least one server");

        // An arrival that cannot start immediately joins the wait queue —
        // unless the queue is already at its configured depth, in which
        // case it is shed (typed rejection, never a stall).
        if free > arrival_us && self.waiting.len() >= self.cfg.max_queue {
            return Admission::Shed {
                queued: self.waiting.len(),
                limit: self.cfg.max_queue,
            };
        }
        let start = arrival_us.max(free);
        let service = exp_us(
            self.cfg.mean_service_us,
            splitmix64(self.cfg.seed ^ self.seq.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        );
        self.seq += 1;
        let finish = start + service;
        self.free_at[i] = finish;
        if start > arrival_us {
            self.waiting.push_back(start);
        }
        if self.cfg.coalesce {
            self.inflight.insert(key.to_string(), finish);
        }
        Admission::Admitted {
            wait_us: start - arrival_us,
            sojourn_us: finish - arrival_us,
            coalesced: false,
        }
    }
}

/// The sharded serving layer. See the module docs for the architecture.
pub struct ShardedServer {
    cfg: ServeConfig,
    shards: Vec<Shard>,
    sites: Mutex<BTreeMap<String, SiteHandle>>,
    queue: Option<Mutex<VirtualQueue>>,
    obs: ObsSink,
}

impl ShardedServer {
    /// Create a server with the given configuration.
    pub fn new(cfg: ServeConfig) -> Self {
        let n = cfg.shards.max(1);
        let shards = (0..n)
            .map(|_| Shard {
                current: RwLock::new(Arc::new(ShardSnapshot::default())),
                cache: Mutex::new(FilterCache::default()),
            })
            .collect();
        let queue = cfg
            .admission
            .clone()
            .map(|a| Mutex::new(VirtualQueue::new(a)));
        ShardedServer {
            cfg,
            shards,
            sites: Mutex::new(BTreeMap::new()),
            queue,
            obs: ObsSink::disabled(),
        }
    }

    /// Attach an observability sink: serving counters, cache traffic,
    /// shed/coalesce decisions, and modeled latency histograms are
    /// emitted through it.
    pub fn set_obs(&mut self, obs: ObsSink) {
        self.obs = obs;
    }

    /// Number of snapshot shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Register (or renew) a site's snapshot source under a soft-state
    /// lease of `ttl_secs`. The next [`refresh`](Self::refresh)
    /// materializes it.
    pub fn register_site(
        &self,
        id: impl Into<String>,
        ttl_secs: u64,
        source: Arc<dyn SnapshotSource>,
        now_unix: u64,
    ) {
        let id = id.into();
        let mut sites = self.sites.lock();
        match sites.get_mut(&id) {
            Some(h) => {
                h.source = source;
                h.ttl_secs = ttl_secs;
                h.last_seen = now_unix;
            }
            None => {
                sites.insert(
                    id,
                    SiteHandle {
                        source,
                        ttl_secs,
                        last_seen: now_unix,
                        last_view: None,
                    },
                );
            }
        }
    }

    /// Renew a site's lease without re-sending the source. Returns
    /// `false` if the site was never registered.
    pub fn renew_site(&self, id: &str, now_unix: u64) -> bool {
        match self.sites.lock().get_mut(id) {
            Some(h) => {
                h.last_seen = now_unix;
                true
            }
            None => false,
        }
    }

    /// Ids of sites whose lease is current at `now_unix`.
    pub fn live_sites(&self, now_unix: u64) -> Vec<String> {
        self.sites
            .lock()
            .iter()
            .filter(|(_, h)| now_unix.saturating_sub(h.last_seen) < h.ttl_secs)
            .map(|(id, _)| id.clone())
            .collect()
    }

    /// A shard's current snapshot generation (diagnostics and tests).
    pub fn shard_generation(&self, shard: usize) -> u64 {
        self.shards[shard].current.read().generation
    }

    /// The refresh path: materialize every live site, carry dead sites'
    /// last views forward as aging stale data, and swap any shard whose
    /// content changed. Called by the driving loop (deterministically,
    /// on sim time) or by a background refresher thread; readers are
    /// never blocked for longer than one `Arc` store.
    pub fn refresh(&self, now_unix: u64) {
        self.obs.inc(names::INFOD_SERVE_REFRESHES);
        let n = self.shards.len();
        let mut per_shard: Vec<Vec<SiteView>> = (0..n).map(|_| Vec::new()).collect();
        let mut live = 0u64;
        {
            let mut sites = self.sites.lock();
            for (id, h) in sites.iter_mut() {
                let alive = now_unix.saturating_sub(h.last_seen) < h.ttl_secs;
                let entries = if alive {
                    live += 1;
                    let m = h.source.materialize(now_unix);
                    h.last_view = Some((m.entries.clone(), now_unix));
                    m.entries
                } else {
                    // Soft-state lapsed: the refresher stops reaching the
                    // source and the last view ages under the staleness
                    // machinery — served stale, never dropped mid-flight.
                    match &h.last_view {
                        Some((entries, at)) => entries
                            .iter()
                            .map(|me| MaterializedEntry {
                                entry: me.entry.clone(),
                                last_good_unix: Some(me.last_good_unix.unwrap_or(*at)),
                            })
                            .collect(),
                        None => Vec::new(),
                    }
                };
                per_shard[shard_of(id, n)].push(SiteView {
                    site: id.clone(),
                    entries,
                });
            }
        }
        self.obs.gauge(names::INFOD_SERVE_SITES, live as f64);
        for (shard, sites) in self.shards.iter().zip(per_shard) {
            let unchanged = {
                let cur = shard.current.read();
                cur.sites == sites
            };
            if unchanged {
                continue;
            }
            let mut cur = shard.current.write();
            let next = Arc::new(ShardSnapshot {
                generation: cur.generation + 1,
                sites,
            });
            *cur = next;
            drop(cur);
            // The snapshot changed: memoized evaluations are stale.
            shard.cache.lock().clear();
            self.obs.inc(names::INFOD_SERVE_SNAPSHOT_SWAPS);
        }
    }

    /// Evaluate the filter against one shard, through its cache.
    fn serve_shard(
        &self,
        shard: &Shard,
        key: &str,
        req: &InquiryRequest,
    ) -> Option<(Vec<Entry>, u64, u64, bool)> {
        let snap = shard.current.read().clone();
        if snap.is_empty() {
            return None;
        }
        let mut cache = shard.cache.lock();
        if let Some(hit) = cache.answers.get(key) {
            // A stamped answer is pinned to its inquiry second; an
            // unstamped one may be reused within the cache TTL (entries
            // cannot change under a constant generation).
            let reusable = if hit.has_stamps {
                hit.stamped_now == req.now_unix
            } else {
                req.now_unix >= hit.stamped_now
                    && req.now_unix - hit.stamped_now <= self.cfg.cache_ttl_secs
            };
            if reusable {
                self.obs.inc(names::INFOD_SERVE_CACHE_HITS);
                return Some((hit.entries.clone(), hit.staleness, snap.generation, true));
            }
        }
        self.obs.inc(names::INFOD_SERVE_CACHE_MISSES);
        let mut entries = Vec::new();
        let mut staleness = 0u64;
        let mut has_stamps = false;
        for site in &snap.sites {
            for me in &site.entries {
                let (e, age) = me.stamped(req.now_unix);
                if me.last_good_unix.is_some() {
                    has_stamps = true;
                }
                if req.filter.matches(&e) {
                    staleness = staleness.max(age);
                    entries.push(e);
                }
            }
        }
        if cache.answers.len() >= self.cfg.cache_capacity.max(1) {
            if let Some(evict) = cache.order.pop_front() {
                cache.answers.remove(&evict);
            }
        }
        if cache
            .answers
            .insert(
                key.to_string(),
                CachedAnswer {
                    stamped_now: req.now_unix,
                    has_stamps,
                    entries: entries.clone(),
                    staleness,
                },
            )
            .is_none()
        {
            cache.order.push_back(key.to_string());
        }
        Some((entries, staleness, snap.generation, false))
    }
}

impl InquiryService for ShardedServer {
    fn inquire(&self, req: &InquiryRequest) -> Result<InquiryResponse, InquiryError> {
        let key = req.filter.to_string();
        let mut modeled_latency_us = None;
        let mut coalesced = false;
        if let Some(queue) = &self.queue {
            let arrival = req.arrival_micros();
            match queue.lock().offer(arrival, &key) {
                Admission::Shed { queued, limit } => {
                    self.obs.inc(names::INFOD_SERVE_SHED);
                    return Err(Error::Overloaded { queued, limit });
                }
                Admission::Admitted {
                    wait_us,
                    sojourn_us,
                    coalesced: co,
                } => {
                    self.obs.observe(names::INFOD_SERVE_WAIT_US, wait_us);
                    self.obs.observe(names::INFOD_SERVE_LATENCY_US, sojourn_us);
                    if co {
                        self.obs.inc(names::INFOD_SERVE_COALESCED);
                    }
                    modeled_latency_us = Some(sojourn_us);
                    coalesced = co;
                }
            }
        }
        let mut entries = Vec::new();
        let mut max_staleness = 0u64;
        let mut shards = Vec::new();
        let mut hits = 0usize;
        let mut misses = 0usize;
        for (i, shard) in self.shards.iter().enumerate() {
            if let Some((mut shard_entries, staleness, generation, hit)) =
                self.serve_shard(shard, &key, req)
            {
                entries.append(&mut shard_entries);
                max_staleness = max_staleness.max(staleness);
                shards.push((i, generation));
                if hit {
                    hits += 1;
                } else {
                    misses += 1;
                }
            }
        }
        self.obs.inc(names::INFOD_SERVE_INQUIRIES);
        if max_staleness > 0 {
            self.obs.inc(names::INFOD_SERVE_STALE_SERVED);
        }
        let cache = match (hits, misses) {
            (0, _) => CacheStatus::Miss,
            (_, 0) => CacheStatus::Hit,
            _ => CacheStatus::Mixed,
        };
        Ok(InquiryResponse::new(
            entries,
            max_staleness,
            Provenance {
                source: ServedBy::ShardedServer,
                cache,
                shards,
                modeled_latency_us,
                coalesced,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gris::{Gris, InfoProvider, ProviderError, STALENESS_ATTR};
    use crate::ldif::Dn;

    struct Tagged {
        tag: String,
        serial: u64,
    }

    impl InfoProvider for Tagged {
        fn name(&self) -> &str {
            &self.tag
        }
        fn provide(&mut self, _now: u64) -> Result<Vec<Entry>, ProviderError> {
            self.serial += 1;
            let mut e = Entry::new(Dn::parse(format!("cn={}, o=grid", self.tag).as_str()).unwrap());
            e.add("site", self.tag.as_str());
            e.add("serial", self.serial.to_string());
            Ok(vec![e])
        }
        fn ttl_secs(&self) -> u64 {
            30
        }
    }

    fn site_gris(tag: &str) -> Arc<Gris> {
        let mut g = Gris::new(Dn::parse("o=grid").unwrap());
        g.register_provider(Box::new(Tagged {
            tag: tag.to_string(),
            serial: 0,
        }));
        Arc::new(g)
    }

    fn server_with_sites(tags: &[&str], cfg: ServeConfig) -> ShardedServer {
        let srv = ShardedServer::new(cfg);
        for t in tags {
            srv.register_site(*t, 600, site_gris(t), 0);
        }
        srv.refresh(0);
        srv
    }

    fn req(f: &str, now: u64) -> InquiryRequest {
        InquiryRequest::parse(f, now).unwrap()
    }

    #[test]
    fn serves_registered_sites_with_shard_provenance() {
        let srv = server_with_sites(&["lbl", "isi", "anl"], ServeConfig::default());
        let resp = srv.inquire(&req("(site=*)", 1)).unwrap();
        assert_eq!(resp.entries.len(), 3);
        assert_eq!(resp.provenance.source, ServedBy::ShardedServer);
        assert!(!resp.provenance.shards.is_empty());
        assert!(resp.provenance.shards.iter().all(|&(_, g)| g >= 1));
        let one = srv.inquire(&req("(site=lbl)", 1)).unwrap();
        assert_eq!(one.entries.len(), 1);
    }

    #[test]
    fn cache_hits_within_ttl_and_flushes_on_swap() {
        let srv = server_with_sites(&["lbl"], ServeConfig::default());
        let r1 = srv.inquire(&req("(site=lbl)", 1)).unwrap();
        assert_eq!(r1.provenance.cache, CacheStatus::Miss);
        let r2 = srv.inquire(&req("(site=lbl)", 2)).unwrap();
        assert_eq!(r2.provenance.cache, CacheStatus::Hit);
        assert_eq!(r1.entries, r2.entries);
        // Past the cache TTL (default 5 s) the evaluation is redone.
        let r3 = srv.inquire(&req("(site=lbl)", 20)).unwrap();
        assert_eq!(r3.provenance.cache, CacheStatus::Miss);
        // A content-changing refresh (provider TTL lapsed → new serial)
        // swaps the snapshot and flushes the cache.
        srv.refresh(40);
        let r4 = srv.inquire(&req("(site=lbl)", 40)).unwrap();
        assert_eq!(r4.provenance.cache, CacheStatus::Miss);
        assert_eq!(r4.entries[0].get("serial"), Some("2"));
    }

    #[test]
    fn unchanged_content_skips_the_snapshot_swap() {
        let srv = server_with_sites(&["lbl"], ServeConfig::default());
        let gen_before: Vec<u64> = (0..srv.shard_count())
            .map(|i| srv.shard_generation(i))
            .collect();
        // Within the provider TTL the materialized content is identical:
        // no shard swaps, generations hold.
        srv.refresh(10);
        let gen_after: Vec<u64> = (0..srv.shard_count())
            .map(|i| srv.shard_generation(i))
            .collect();
        assert_eq!(gen_before, gen_after);
    }

    #[test]
    fn dead_site_serves_stale_with_growing_stamp() {
        let srv = ShardedServer::new(ServeConfig::default());
        srv.register_site("lbl", 60, site_gris("lbl"), 0);
        srv.refresh(0);
        assert_eq!(srv.live_sites(59), vec!["lbl".to_string()]);
        // The lease lapses at t=60; refreshes stop reaching the source
        // but the last view keeps serving, aging.
        assert!(srv.live_sites(60).is_empty());
        srv.refresh(100);
        let resp = srv.inquire(&req("(site=lbl)", 130)).unwrap();
        assert_eq!(resp.entries.len(), 1);
        assert_eq!(resp.staleness_secs, 130);
        assert_eq!(resp.entries[0].get(STALENESS_ATTR), Some("130"));
        // Renewal is refused for unknown ids, accepted for known ones.
        assert!(srv.renew_site("lbl", 140));
        assert!(!srv.renew_site("unknown", 140));
        srv.refresh(140);
        let back = srv.inquire(&req("(site=lbl)", 141)).unwrap();
        assert_eq!(back.staleness_secs, 0);
    }

    #[test]
    fn admission_sheds_past_queue_depth_with_typed_rejection() {
        let cfg = ServeConfig {
            admission: Some(AdmissionConfig {
                servers: 1,
                mean_service_us: 1_000_000,
                max_queue: 2,
                coalesce: false,
                seed: 7,
            }),
            ..ServeConfig::default()
        };
        let srv = server_with_sites(&["lbl"], cfg);
        // Distinct filters at the same arrival instant: first occupies
        // the server, next two wait, the rest shed — deterministically.
        let filters = ["(site=lbl)", "(site=a)", "(site=b)", "(site=c)", "(site=d)"];
        let mut outcomes = Vec::new();
        for f in filters {
            let r = srv.inquire(&req(f, 1).at_micros(1_000_000));
            outcomes.push(r.is_ok());
            if let Err(e) = r {
                assert!(matches!(
                    e,
                    Error::Overloaded {
                        queued: 2,
                        limit: 2
                    }
                ));
            }
        }
        assert_eq!(outcomes, vec![true, true, true, false, false]);
    }

    #[test]
    fn identical_inflight_inquiries_coalesce() {
        let cfg = ServeConfig {
            admission: Some(AdmissionConfig {
                servers: 1,
                mean_service_us: 1_000_000,
                max_queue: 0,
                coalesce: true,
                seed: 7,
            }),
            ..ServeConfig::default()
        };
        let srv = server_with_sites(&["lbl"], cfg);
        let first = srv
            .inquire(&req("(site=lbl)", 1).at_micros(1_000_000))
            .unwrap();
        assert!(!first.provenance.coalesced);
        // Same filter while the first is in flight: coalesced, no server
        // consumed, so it is admitted even with a zero-depth queue.
        let second = srv
            .inquire(&req("(site=lbl)", 1).at_micros(1_000_001))
            .unwrap();
        assert!(second.provenance.coalesced);
        assert!(
            second.provenance.modeled_latency_us.unwrap()
                < first.provenance.modeled_latency_us.unwrap()
        );
        // A *different* filter at the same instant is shed.
        assert!(srv
            .inquire(&req("(site=other)", 1).at_micros(1_000_002))
            .is_err());
    }

    #[test]
    fn deterministic_service_model_replays_identically() {
        let make = || {
            let cfg = ServeConfig {
                admission: Some(AdmissionConfig::default()),
                ..ServeConfig::default()
            };
            server_with_sites(&["lbl", "isi"], cfg)
        };
        let run = |srv: &ShardedServer| -> Vec<Option<u64>> {
            (0..50)
                .map(|i| {
                    srv.inquire(&req("(site=*)", 1).at_micros(1_000_000 + i * 37))
                        .ok()
                        .and_then(|r| r.provenance.modeled_latency_us)
                })
                .collect()
        };
        let a = make();
        let b = make();
        assert_eq!(run(&a), run(&b));
    }
}
