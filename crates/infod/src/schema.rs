//! Object-class schema for the GridFTP performance information provider.
//!
//! The paper defines LDAP schemas for its monitoring data (\[16\] in the
//! references); Figure 6 shows the resulting attributes. This module
//! declares the object classes, their required/optional attributes, and a
//! validator the provider and tests run against every published entry.

use std::collections::HashMap;

use crate::ldif::Entry;

/// An object-class definition.
#[derive(Debug, Clone)]
pub struct ObjectClass {
    /// Class name (matched case-insensitively).
    pub name: &'static str,
    /// Attributes every entry of this class must carry.
    pub required: &'static [&'static str],
    /// Known optional attributes (documentation; extra attributes are
    /// allowed regardless, as LDAP deployments always extend).
    pub optional: &'static [&'static str],
}

/// The GridFTP performance entry: per-(remote host, server) transfer
/// statistics and predictions.
pub const GRIDFTP_PERF_INFO: ObjectClass = ObjectClass {
    name: "GridFTPPerfInfo",
    required: &["cn", "hostname", "gridftpurl"],
    optional: &[
        "numtransfers",
        "recentrdbandwidth",
        "numrdtransfers",
        "numwrtransfers",
        "minrdbandwidth",
        "maxrdbandwidth",
        "avgrdbandwidth",
        "minwrbandwidth",
        "maxwrbandwidth",
        "avgwrbandwidth",
        "avgrdbandwidthtenmbrange",
        "avgrdbandwidthhundredmbrange",
        "avgrdbandwidthfivehundredmbrange",
        "avgrdbandwidthonegbrange",
        "predictrdbandwidth",
        "predictrdbandwidthtenmbrange",
        "predictrdbandwidthhundredmbrange",
        "predictrdbandwidthfivehundredmbrange",
        "predictrdbandwidthonegbrange",
        "predicterrorpct",
        "lasttransfertime",
        // Stamped by the GRIS on entries served from a last-known-good
        // cache after a provider refresh failure (degraded mode).
        "stalenesssecs",
    ],
};

/// The GridFTP server endpoint description.
pub const GRIDFTP_SERVER_INFO: ObjectClass = ObjectClass {
    name: "GridFTPServerInfo",
    required: &["hostname", "gridftpurl", "port"],
    optional: &["version", "storagevolumes"],
};

/// A schema: the set of known object classes.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    classes: HashMap<String, ObjectClass>,
}

/// Schema violations found by [`Schema::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// The entry carries no `objectclass` attribute.
    NoObjectClass,
    /// An `objectclass` value is not in the schema.
    UnknownClass(String),
    /// A required attribute is missing.
    MissingAttr {
        /// The class requiring the attribute.
        class: String,
        /// The missing attribute.
        attr: String,
    },
    /// The entry has no DN.
    NoDn,
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemaError::NoObjectClass => write!(f, "entry has no objectclass"),
            SchemaError::UnknownClass(c) => write!(f, "unknown objectclass {c}"),
            SchemaError::MissingAttr { class, attr } => {
                write!(f, "class {class} requires attribute {attr}")
            }
            SchemaError::NoDn => write!(f, "entry has no dn"),
        }
    }
}

impl std::error::Error for SchemaError {}

impl Schema {
    /// The workspace's standard schema (both GridFTP classes).
    pub fn standard() -> Self {
        let mut s = Schema::default();
        s.add(GRIDFTP_PERF_INFO);
        s.add(GRIDFTP_SERVER_INFO);
        s
    }

    /// Register a class.
    pub fn add(&mut self, class: ObjectClass) {
        self.classes.insert(class.name.to_ascii_lowercase(), class);
    }

    /// Look up a class by name.
    pub fn class(&self, name: &str) -> Option<&ObjectClass> {
        self.classes.get(&name.to_ascii_lowercase())
    }

    /// Validate an entry against the schema.
    pub fn validate(&self, e: &Entry) -> Result<(), SchemaError> {
        if e.dn.is_none() {
            return Err(SchemaError::NoDn);
        }
        let classes = e.get_all("objectclass");
        if classes.is_empty() {
            return Err(SchemaError::NoObjectClass);
        }
        for c in classes {
            let def = self
                .class(c)
                .ok_or_else(|| SchemaError::UnknownClass(c.clone()))?;
            for req in def.required {
                if !e.has(req) {
                    return Err(SchemaError::MissingAttr {
                        class: def.name.to_string(),
                        attr: (*req).to_string(),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ldif::Dn;

    fn valid_perf_entry() -> Entry {
        let mut e = Entry::new(Dn::parse("cn=140.221.65.69, hostname=h, o=grid").unwrap());
        e.add("objectclass", "GridFTPPerfInfo");
        e.add("cn", "140.221.65.69");
        e.add("hostname", "dpsslx04.lbl.gov");
        e.add("gridftpurl", "gsiftp://dpsslx04.lbl.gov:2811");
        e
    }

    #[test]
    fn valid_entry_passes() {
        assert_eq!(Schema::standard().validate(&valid_perf_entry()), Ok(()));
    }

    #[test]
    fn missing_required_attr_fails() {
        let mut e = valid_perf_entry();
        e.set("objectclass", "GridFTPPerfInfo");
        let mut stripped = Entry::new(e.dn.clone().unwrap());
        stripped.add("objectclass", "GridFTPPerfInfo");
        stripped.add("cn", "x");
        stripped.add("hostname", "h");
        match Schema::standard().validate(&stripped) {
            Err(SchemaError::MissingAttr { attr, .. }) => assert_eq!(attr, "gridftpurl"),
            other => panic!("expected missing attr, got {other:?}"),
        }
    }

    #[test]
    fn unknown_class_fails() {
        let mut e = valid_perf_entry();
        e.add("objectclass", "MartianInfo");
        assert!(matches!(
            Schema::standard().validate(&e),
            Err(SchemaError::UnknownClass(_))
        ));
    }

    #[test]
    fn no_objectclass_fails() {
        let mut e = Entry::new(Dn::parse("o=grid").unwrap());
        e.add("cn", "x");
        assert_eq!(
            Schema::standard().validate(&e),
            Err(SchemaError::NoObjectClass)
        );
    }

    #[test]
    fn no_dn_fails() {
        let mut e = Entry::default();
        e.add("objectclass", "GridFTPPerfInfo");
        assert_eq!(Schema::standard().validate(&e), Err(SchemaError::NoDn));
    }

    #[test]
    fn extra_attributes_are_fine() {
        let mut e = valid_perf_entry();
        e.add("experimentalattr", "42");
        assert_eq!(Schema::standard().validate(&e), Ok(()));
    }

    #[test]
    fn class_lookup_case_insensitive() {
        let s = Schema::standard();
        assert!(s.class("gridftpperfinfo").is_some());
        assert!(s.class("GRIDFTPSERVERINFO").is_some());
        assert!(s.class("nope").is_none());
    }
}
