//! The GridFTP *server* information provider: static endpoint facts
//! (`GridFTPServerInfo` entries) published alongside the performance
//! data, so inquiries can discover where a server listens and which
//! volumes it exports before asking for throughput predictions.

use crate::gris::{InfoProvider, ProviderError};
use crate::ldif::{Dn, Entry};

/// Static description of one GridFTP endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerInfo {
    /// Host name.
    pub hostname: String,
    /// Control port.
    pub port: u16,
    /// Server software version string.
    pub version: String,
    /// Exported logical volumes.
    pub volumes: Vec<String>,
    /// Directory suffix, e.g. `dc=lbl, dc=gov, o=grid`.
    pub suffix: String,
}

impl ServerInfo {
    /// Describe a host with the workspace's defaults (port 2811, the
    /// `/home/ftp` volume, dc-components derived from the domain).
    pub fn new(hostname: impl Into<String>) -> Self {
        let hostname = hostname.into();
        let dcs: String = hostname
            .split('.')
            .skip(1)
            .map(|c| format!("dc={c}"))
            .collect::<Vec<_>>()
            .join(", ");
        let suffix = if dcs.is_empty() {
            "o=grid".to_string()
        } else {
            format!("{dcs}, o=grid")
        };
        ServerInfo {
            hostname,
            port: 2811,
            version: "wanpred-gridftp/0.1".to_string(),
            volumes: vec!["/home/ftp".to_string()],
            suffix,
        }
    }

    /// The endpoint URL.
    pub fn url(&self) -> String {
        format!("gsiftp://{}:{}", self.hostname, self.port)
    }

    /// Build the directory entry.
    pub fn to_entry(&self) -> Entry {
        let dn = Dn::parse(&format!("hostname={}, {}", self.hostname, self.suffix))
            .expect("non-empty dn");
        let mut e = Entry::new(dn);
        e.add("objectclass", "GridFTPServerInfo");
        e.add("hostname", &self.hostname);
        e.add("gridftpurl", self.url());
        e.add("port", self.port.to_string());
        e.add("version", &self.version);
        for v in &self.volumes {
            e.add("storagevolumes", v);
        }
        e
    }
}

/// Provider publishing one static [`ServerInfo`] entry.
#[derive(Debug, Clone)]
pub struct ServerInfoProvider {
    info: ServerInfo,
}

impl ServerInfoProvider {
    /// Wrap a server description.
    pub fn new(info: ServerInfo) -> Self {
        ServerInfoProvider { info }
    }
}

impl InfoProvider for ServerInfoProvider {
    fn name(&self) -> &str {
        "gridftp-server"
    }

    fn provide(&mut self, _now_unix: u64) -> Result<Vec<Entry>, ProviderError> {
        Ok(vec![self.info.to_entry()])
    }

    /// Static facts can be cached for a long time.
    fn ttl_secs(&self) -> u64 {
        3_600
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gris::Gris;
    use crate::schema::Schema;

    fn info() -> ServerInfo {
        ServerInfo::new("dpsslx04.lbl.gov")
    }

    #[test]
    fn entry_validates_against_schema() {
        let e = info().to_entry();
        assert_eq!(Schema::standard().validate(&e), Ok(()));
        assert_eq!(e.get("port"), Some("2811"));
        assert_eq!(e.get("gridftpurl"), Some("gsiftp://dpsslx04.lbl.gov:2811"));
        assert_eq!(e.get_all("storagevolumes"), &["/home/ftp".to_string()]);
    }

    #[test]
    fn dn_derives_dc_components() {
        let e = info().to_entry();
        let dn = e.dn.as_ref().unwrap().as_str();
        assert_eq!(dn, "hostname=dpsslx04.lbl.gov, dc=lbl, dc=gov, o=grid");
        // Bare (domainless) hostname still forms a valid DN.
        let bare = ServerInfo::new("localhost").to_entry();
        assert_eq!(
            bare.dn.as_ref().unwrap().as_str(),
            "hostname=localhost, o=grid"
        );
    }

    #[test]
    fn discoverable_through_gris_queries() {
        use crate::service::{InquiryRequest, InquiryService};
        let mut g = Gris::new(Dn::parse("o=grid").unwrap());
        g.register_provider(Box::new(ServerInfoProvider::new(info())));
        let hits = |f: &str, now| g.inquire(&InquiryRequest::parse(f, now).unwrap()).unwrap();
        assert_eq!(
            hits("(&(objectclass=GridFTPServerInfo)(port=2811))", 0)
                .entries
                .len(),
            1
        );
        assert_eq!(hits("(storagevolumes=/home/ftp)", 1).entries.len(), 1);
        assert_eq!(hits("(port=9999)", 2).entries.len(), 0);
    }

    #[test]
    fn cached_long_ttl() {
        let p = ServerInfoProvider::new(info());
        assert_eq!(p.ttl_secs(), 3_600);
    }
}
