//! The unified inquiry surface: [`InquiryService`].
//!
//! The paper's delivery path (§5) exists to answer user inquiries, and
//! those inquiries arrive at every level of the hierarchy — a per-site
//! GRIS, an aggregating GIIS, or the sharded serving layer in front of
//! both ([`crate::serve`]). All three speak the same shape: a filter
//! plus an inquiry time in, a set of entries with staleness and
//! provenance out. `inquire` takes `&self` — services synchronize
//! internally — so one handle can be shared across reader threads
//! without an external lock, which is what the serving benchmark
//! measures against the old `&mut self` surface.

use crate::error::InquiryError;
use crate::filter::Filter;
use crate::ldif::Entry;

/// One inquiry: a parsed LDAP-style filter plus the inquiry clock.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct InquiryRequest {
    /// The search filter.
    pub filter: Filter,
    /// Inquiry time, Unix seconds. Drives TTL refresh decisions and the
    /// `stalenesssecs` stamps on degraded entries.
    pub now_unix: u64,
    /// Optional microsecond arrival timestamp for the serving layer's
    /// open-loop admission model. Must be nondecreasing across requests
    /// to one server. `None` derives `now_unix * 1_000_000`.
    pub arrival_us: Option<u64>,
}

impl InquiryRequest {
    /// An inquiry at `now_unix` with no explicit arrival timestamp.
    pub fn new(filter: Filter, now_unix: u64) -> Self {
        InquiryRequest {
            filter,
            now_unix,
            arrival_us: None,
        }
    }

    /// Parse the filter from its string form.
    pub fn parse(filter: &str, now_unix: u64) -> Result<Self, InquiryError> {
        Ok(InquiryRequest::new(crate::filter::parse(filter)?, now_unix))
    }

    /// Set the microsecond arrival timestamp (admission-model clock).
    pub fn at_micros(mut self, arrival_us: u64) -> Self {
        self.arrival_us = Some(arrival_us);
        self
    }

    /// The arrival timestamp, defaulting to `now_unix` in microseconds.
    pub fn arrival_micros(&self) -> u64 {
        self.arrival_us
            .unwrap_or_else(|| self.now_unix.saturating_mul(1_000_000))
    }
}

/// Who produced an [`InquiryResponse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServedBy {
    /// A per-site GRIS answered directly.
    Gris,
    /// A GIIS merged its registrants' answers.
    Giis,
    /// The sharded serving layer answered from snapshots.
    ShardedServer,
}

/// How the serving layer's per-shard prediction cache participated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum CacheStatus {
    /// The answering service has no cache on this path (GRIS/GIIS).
    Uncached,
    /// Every consulted shard answered from its cache.
    Hit,
    /// Every consulted shard computed the filter fresh.
    Miss,
    /// Some shards hit, some missed.
    Mixed,
}

/// Where an answer came from: service kind, cache participation, and
/// the snapshot generation of every shard consulted.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct Provenance {
    /// The answering service kind.
    pub source: ServedBy,
    /// Cache participation.
    pub cache: CacheStatus,
    /// `(shard index, snapshot generation)` for each shard consulted.
    /// Empty for unsharded services. Within one shard every entry comes
    /// from a single immutable snapshot — the single-generation
    /// guarantee the direct locked path cannot make.
    pub shards: Vec<(usize, u64)>,
    /// Modeled queueing latency (microseconds) when the serving layer's
    /// admission model is on; `None` otherwise.
    pub modeled_latency_us: Option<u64>,
    /// Whether the admission model coalesced this inquiry onto an
    /// identical in-flight one.
    pub coalesced: bool,
}

impl Provenance {
    /// Provenance for an unsharded, uncached service.
    pub(crate) fn direct(source: ServedBy) -> Self {
        Provenance {
            source,
            cache: CacheStatus::Uncached,
            shards: Vec::new(),
            modeled_latency_us: None,
            coalesced: false,
        }
    }
}

/// The answer to an inquiry.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct InquiryResponse {
    /// Entries matching the filter, `stalenesssecs`-stamped where served
    /// from a degraded (last-known-good) cache.
    pub entries: Vec<Entry>,
    /// The largest `stalenesssecs` stamp across the returned entries
    /// (0 when everything is fresh).
    pub staleness_secs: u64,
    /// Where the answer came from.
    pub provenance: Provenance,
}

impl InquiryResponse {
    pub(crate) fn new(entries: Vec<Entry>, staleness_secs: u64, provenance: Provenance) -> Self {
        InquiryResponse {
            entries,
            staleness_secs,
            provenance,
        }
    }
}

/// Anything that can answer a filtered inquiry: a [`crate::Gris`], a
/// [`crate::Giis`], or the sharded [`crate::serve::ShardedServer`].
///
/// `inquire` takes `&self`: implementations synchronize internally, so a
/// shared handle (`Arc<dyn InquiryService>`) serves concurrent readers
/// without an external mutex.
pub trait InquiryService: Send + Sync {
    /// Answer one inquiry.
    fn inquire(&self, req: &InquiryRequest) -> Result<InquiryResponse, InquiryError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_parses_and_carries_the_clock() {
        let req = InquiryRequest::parse("(a=1)", 42).unwrap();
        assert_eq!(req.now_unix, 42);
        assert_eq!(req.arrival_micros(), 42_000_000);
        let req = req.at_micros(42_000_137);
        assert_eq!(req.arrival_micros(), 42_000_137);
        assert!(InquiryRequest::parse("(((", 0).is_err());
    }
}
