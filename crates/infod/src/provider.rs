//! The GridFTP performance information provider (§5.1, Figure 6).
//!
//! The provider digests a server's transfer log into directory entries:
//! one [`Entry`] per remote endpoint seen in the log, carrying summary
//! statistics (min/avg/max bandwidth, per-size-class averages — the
//! `avgrdbandwidthtenmbrange` style attributes of Figure 6) and
//! predictions of the next transfer's bandwidth per size class. The
//! paper's provider filtered ~700 log entries in 1–2 s on 2001 hardware;
//! the `provider_filter` bench shows this implementation is orders of
//! magnitude inside that.

use std::path::PathBuf;
use std::sync::Arc;

use parking_lot::RwLock;
use wanpred_logfmt::{Operation, TransferLog, TransferRecord};
use wanpred_predict::prelude::*;

use crate::gris::{InfoProvider, ProviderError};
use crate::ldif::{Dn, Entry};

/// Configuration of one provider instance.
#[derive(Debug, Clone)]
pub struct ProviderConfig {
    /// Server host name (Figure 6 `hostname`).
    pub hostname: String,
    /// Server address (used in DNs alongside the remote `cn`).
    pub address: String,
    /// GridFTP URL (Figure 6 `gridftpurl`).
    pub url: String,
    /// Directory suffix, e.g. `dc=lbl, dc=gov, o=grid`.
    pub suffix: String,
    /// Cache lifetime for produced entries.
    pub ttl_secs: u64,
}

impl ProviderConfig {
    /// Reasonable defaults for a host.
    pub fn new(hostname: impl Into<String>, address: impl Into<String>) -> Self {
        let hostname = hostname.into();
        let domain_dcs: String = hostname
            .split('.')
            .skip(1)
            .map(|c| format!("dc={c}"))
            .collect::<Vec<_>>()
            .join(", ");
        let suffix = if domain_dcs.is_empty() {
            "o=grid".to_string()
        } else {
            format!("{domain_dcs}, o=grid")
        };
        ProviderConfig {
            url: format!("gsiftp://{hostname}:2811"),
            hostname,
            address: address.into(),
            suffix,
            ttl_secs: 30,
        }
    }
}

/// Where the provider reads its log from.
pub enum LogSource {
    /// A fixed snapshot.
    Snapshot(TransferLog),
    /// A live, shared log the transfer service keeps appending to.
    Shared(Arc<RwLock<TransferLog>>),
    /// A ULM file on disk, re-read (through the salvage decoder) on
    /// every refresh. The only source that can *fail*: an unreadable
    /// file surfaces as a [`ProviderError`] and the GRIS degrades to its
    /// last-known-good cache.
    File(PathBuf),
}

/// The provider.
pub struct GridFtpPerfProvider {
    cfg: ProviderConfig,
    source: LogSource,
}

impl GridFtpPerfProvider {
    /// Build over a log snapshot.
    pub fn from_snapshot(cfg: ProviderConfig, log: TransferLog) -> Self {
        GridFtpPerfProvider {
            cfg,
            source: LogSource::Snapshot(log),
        }
    }

    /// Build over a live shared log.
    pub fn from_shared(cfg: ProviderConfig, log: Arc<RwLock<TransferLog>>) -> Self {
        GridFtpPerfProvider {
            cfg,
            source: LogSource::Shared(log),
        }
    }

    /// Build over a ULM file re-read on every refresh (fallible).
    pub fn from_file(cfg: ProviderConfig, path: impl Into<PathBuf>) -> Self {
        GridFtpPerfProvider {
            cfg,
            source: LogSource::File(path.into()),
        }
    }

    fn with_log<R>(&self, f: impl FnOnce(&TransferLog) -> R) -> Result<R, ProviderError> {
        match &self.source {
            LogSource::Snapshot(l) => Ok(f(l)),
            LogSource::Shared(l) => Ok(f(&l.read())),
            LogSource::File(p) => {
                let (log, _) = TransferLog::load_ulm_salvaged(p)
                    .map_err(|e| ProviderError::unavailable(p.display().to_string(), e))?;
                Ok(f(&log))
            }
        }
    }

    /// Build the entries for the current log contents, surfacing log
    /// source failures (only a [`LogSource::File`] can fail).
    pub fn try_build_entries(&self, now_unix: u64) -> Result<Vec<Entry>, ProviderError> {
        self.with_log(|log| {
            let mut sources: Vec<&str> = log.records().iter().map(|r| r.source.as_str()).collect();
            sources.sort_unstable();
            sources.dedup();
            sources
                .iter()
                .map(|src| self.entry_for_source(log, src, now_unix))
                .collect()
        })
    }

    /// Build the entries for the current log contents (public so callers
    /// can bypass the GRIS cache, e.g. the figure binaries).
    ///
    /// # Panics
    /// If the log source fails — use [`GridFtpPerfProvider::try_build_entries`]
    /// with a [`LogSource::File`] source.
    pub fn build_entries(&self, now_unix: u64) -> Vec<Entry> {
        self.try_build_entries(now_unix)
            .expect("log source unavailable")
    }

    fn entry_for_source(&self, log: &TransferLog, source: &str, now_unix: u64) -> Entry {
        let records: Vec<&TransferRecord> = log
            .records()
            .iter()
            .filter(|r| r.source == source)
            .collect();

        let dn = Dn::parse(&format!(
            "cn={source}, hostname={}, {}",
            self.cfg.hostname, self.cfg.suffix
        ))
        .expect("non-empty dn");
        let mut e = Entry::new(dn);
        e.add("objectclass", "GridFTPPerfInfo");
        e.add("cn", source);
        e.add("hostname", &self.cfg.hostname);
        e.add("gridftpurl", &self.cfg.url);
        e.add("numtransfers", records.len().to_string());

        for (op, tag) in [(Operation::Read, "rd"), (Operation::Write, "wr")] {
            let bw: Vec<f64> = records
                .iter()
                .filter(|r| r.operation == op)
                .map(|r| r.bandwidth_kbs())
                .collect();
            e.add(&format!("num{tag}transfers"), bw.len().to_string());
            if bw.is_empty() {
                continue;
            }
            let min = bw.iter().copied().fold(f64::INFINITY, f64::min);
            let max = bw.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let avg = bw.iter().sum::<f64>() / bw.len() as f64;
            e.add(
                &format!("min{tag}bandwidth"),
                format!("{}", min.round() as i64),
            );
            e.add(
                &format!("max{tag}bandwidth"),
                format!("{}", max.round() as i64),
            );
            e.add(
                &format!("avg{tag}bandwidth"),
                format!("{}", avg.round() as i64),
            );
        }

        // Per-size-class read averages and predictions (Figure 6's
        // avgrdbandwidthtenmbrange etc.). The prediction attribute uses
        // the classified AVG25 predictor; class attributes use the range
        // names of the schema.
        let obs: Vec<Observation> = records
            .iter()
            .filter(|r| r.operation == Operation::Read)
            .map(|r| Observation::from_record(r))
            .collect();
        if let Some(last) = records.iter().map(|r| r.end_unix).max() {
            e.add("lasttransfertime", last.to_string());
        }
        // §5.1: the provider advertises "a set of recent measurements as
        // well as some summary statistic data" — the last five read
        // bandwidths, multi-valued, newest last.
        let recent_start = obs.len().saturating_sub(5);
        for o in &obs[recent_start..] {
            e.add(
                "recentrdbandwidth",
                format!("{}", o.bandwidth_kbs.round() as i64),
            );
        }
        let predictor = NamedPredictor::new(Box::new(MeanPredictor::new(Window::LastN(25))), true);
        for (class, range) in [
            (SizeClass::C10MB, "tenmbrange"),
            (SizeClass::C100MB, "hundredmbrange"),
            (SizeClass::C500MB, "fivehundredmbrange"),
            (SizeClass::C1GB, "onegbrange"),
        ] {
            let class_obs = filter_class(&obs, class);
            if class_obs.is_empty() {
                continue;
            }
            let avg =
                class_obs.iter().map(|o| o.bandwidth_kbs).sum::<f64>() / class_obs.len() as f64;
            e.add(
                &format!("avgrdbandwidth{range}"),
                format!("{}", avg.round() as i64),
            );
            let (lo, _) = class.byte_range();
            // Representative size strictly inside the class.
            let rep = lo + PAPER_MB;
            if let Some(p) = predictor.predict(&obs, now_unix, rep) {
                e.add(
                    &format!("predictrdbandwidth{range}"),
                    format!("{}", p.round() as i64),
                );
            }
        }
        // Overall prediction: unclassified AVG25.
        let overall = MeanPredictor::new(Window::LastN(25));
        if let Some(p) = overall.predict(&obs, now_unix) {
            e.add("predictrdbandwidth", format!("{}", p.round() as i64));
        }
        // NWS-style accuracy estimate next to the forecast: the running
        // mean absolute percentage error of the published (classified
        // AVG25) predictor replayed over this endpoint's history.
        let reports = Evaluation::replay(
            &obs,
            std::slice::from_ref(&predictor),
            EvalEngine::Naive,
            EvalOptions::default(),
            &wanpred_obs::ObsSink::disabled(),
        );
        if let Some(m) = reports.first().and_then(|r| r.mape()) {
            e.add("predicterrorpct", format!("{}", m.round() as i64));
        }
        e
    }
}

impl InfoProvider for GridFtpPerfProvider {
    fn name(&self) -> &str {
        "gridftp-perf"
    }

    fn provide(&mut self, now_unix: u64) -> Result<Vec<Entry>, ProviderError> {
        self.try_build_entries(now_unix)
    }

    fn ttl_secs(&self) -> u64 {
        self.cfg.ttl_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use wanpred_logfmt::TransferRecordBuilder;

    fn record(source: &str, size: u64, secs: f64, start: u64, op: Operation) -> TransferRecord {
        TransferRecordBuilder::new()
            .source(source)
            .host("dpsslx04.lbl.gov")
            .file_name("/home/ftp/f")
            .file_size(size)
            .volume("/home/ftp")
            .start_unix(start)
            .end_unix(start + secs as u64)
            .total_time_s(secs)
            .streams(8)
            .tcp_buffer(1_000_000)
            .operation(op)
            .build()
            .unwrap()
    }

    fn sample_log() -> TransferLog {
        let mut log = TransferLog::new();
        // ANL client: two 10MB-class reads at 2000/4000 KB/s, one 1GB-class
        // read at 8000 KB/s, one write.
        log.append(record(
            "140.221.65.69",
            10_240_000,
            5.12,
            1_000,
            Operation::Read,
        ));
        log.append(record(
            "140.221.65.69",
            10_240_000,
            2.56,
            2_000,
            Operation::Read,
        ));
        log.append(record(
            "140.221.65.69",
            1_024_000_000,
            128.0,
            3_000,
            Operation::Read,
        ));
        log.append(record(
            "140.221.65.69",
            10_240_000,
            4.0,
            4_000,
            Operation::Write,
        ));
        // A second client.
        log.append(record(
            "128.9.160.11",
            10_240_000,
            8.0,
            5_000,
            Operation::Read,
        ));
        log
    }

    fn provider() -> GridFtpPerfProvider {
        GridFtpPerfProvider::from_snapshot(
            ProviderConfig::new("dpsslx04.lbl.gov", "131.243.2.11"),
            sample_log(),
        )
    }

    #[test]
    fn one_entry_per_remote_endpoint() {
        let entries = provider().build_entries(10_000);
        assert_eq!(entries.len(), 2);
        let anl = entries
            .iter()
            .find(|e| e.get("cn") == Some("140.221.65.69"))
            .unwrap();
        assert_eq!(anl.get("numtransfers"), Some("4"));
        assert_eq!(anl.get("numrdtransfers"), Some("3"));
        assert_eq!(anl.get("numwrtransfers"), Some("1"));
    }

    #[test]
    fn figure6_statistics_present_and_correct() {
        let entries = provider().build_entries(10_000);
        let anl = entries
            .iter()
            .find(|e| e.get("cn") == Some("140.221.65.69"))
            .unwrap();
        // Read bandwidths: 2000, 4000, 8000 KB/s.
        assert_eq!(anl.get("minrdbandwidth"), Some("2000"));
        assert_eq!(anl.get("maxrdbandwidth"), Some("8000"));
        assert_eq!(anl.get("avgrdbandwidth"), Some("4667"));
        // Class averages: 10MB class = (2000+4000)/2; 1GB class = 8000.
        assert_eq!(anl.get("avgrdbandwidthtenmbrange"), Some("3000"));
        assert_eq!(anl.get("avgrdbandwidthonegbrange"), Some("8000"));
        assert!(anl.get("avgrdbandwidthhundredmbrange").is_none());
        // Predictions exist for populated classes.
        assert_eq!(anl.get("predictrdbandwidthtenmbrange"), Some("3000"));
        assert_eq!(anl.get("predictrdbandwidth"), Some("4667"));
        assert_eq!(
            anl.get("gridftpurl"),
            Some("gsiftp://dpsslx04.lbl.gov:2811")
        );
    }

    #[test]
    fn entries_validate_against_schema() {
        let schema = Schema::standard();
        for e in provider().build_entries(10_000) {
            assert_eq!(schema.validate(&e), Ok(()), "{}", e.to_ldif());
        }
    }

    #[test]
    fn dn_matches_figure6_shape() {
        let entries = provider().build_entries(0);
        let dn = entries[0].dn.as_ref().unwrap().as_str();
        assert!(dn.contains("hostname=dpsslx04.lbl.gov"), "{dn}");
        assert!(dn.contains("dc=lbl"), "{dn}");
        assert!(dn.contains("dc=gov"), "{dn}");
        assert!(dn.ends_with("o=grid"), "{dn}");
    }

    #[test]
    fn shared_log_sees_appends() {
        let shared = Arc::new(RwLock::new(TransferLog::new()));
        let p = GridFtpPerfProvider::from_shared(
            ProviderConfig::new("h.x.y", "1.2.3.4"),
            shared.clone(),
        );
        assert!(p.build_entries(0).is_empty());
        shared
            .write()
            .append(record("9.9.9.9", 10_240_000, 4.0, 1, Operation::Read));
        let entries = p.build_entries(10);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].get("cn"), Some("9.9.9.9"));
    }

    #[test]
    fn recent_measurements_advertised_newest_last() {
        let entries = provider().build_entries(10_000);
        let anl = entries
            .iter()
            .find(|e| e.get("cn") == Some("140.221.65.69"))
            .unwrap();
        // Three reads at 2000, 4000, 8000 KB/s in time order.
        assert_eq!(
            anl.get_all("recentrdbandwidth"),
            &["2000".to_string(), "4000".to_string(), "8000".to_string()]
        );
    }

    #[test]
    fn error_estimate_published_with_enough_history() {
        // 30 identical-class transfers: AVG25+C replay yields an error
        // estimate; with constant bandwidth the error is ~0.
        let mut log = TransferLog::new();
        for i in 0..30u64 {
            log.append(record(
                "1.2.3.4",
                102_400_000,
                12.8,
                1_000 + i * 600,
                Operation::Read,
            ));
        }
        let p = GridFtpPerfProvider::from_snapshot(ProviderConfig::new("h.x.y", "0.0.0.0"), log);
        let entries = p.build_entries(100_000);
        let err: f64 = entries[0].get("predicterrorpct").unwrap().parse().unwrap();
        assert!(err < 1.0, "constant series predicts exactly: {err}");
        // The sample log (5 records) is below the 15-value training set:
        // no estimate is published.
        let small = provider().build_entries(10_000);
        assert!(small[0].get("predicterrorpct").is_none());
    }

    #[test]
    fn file_source_is_fallible_and_salvages() {
        let dir = std::env::temp_dir().join(format!("wanpred-provider-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("transfers.ulm");
        let p = GridFtpPerfProvider::from_file(ProviderConfig::new("h.x.y", "1.2.3.4"), &path);
        // Missing file: the provider fails rather than inventing data.
        assert!(p.try_build_entries(0).is_err());
        // A damaged file still yields the intact records.
        let mut doc = sample_log().to_ulm_string_checksummed();
        doc.push_str("torn gar\n");
        std::fs::write(&path, doc).unwrap();
        let entries = p.try_build_entries(10_000).unwrap();
        assert_eq!(entries.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_log_produces_no_entries() {
        let p = GridFtpPerfProvider::from_snapshot(
            ProviderConfig::new("h.x.y", "1.2.3.4"),
            TransferLog::new(),
        );
        assert!(p.build_entries(0).is_empty());
    }
}
