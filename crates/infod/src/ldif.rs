//! LDAP-style directory entries and LDIF serialization.
//!
//! MDS-2 publishes information as LDAP entries: a distinguished name (DN)
//! plus attribute/value pairs, grouped under object classes, rendered in
//! LDIF. We implement the subset the GridFTP information provider needs:
//! multi-valued attributes, case-insensitive attribute names, and LDIF
//! text output matching the Figure 6 fragment's structure.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A distinguished name, stored as its string form, e.g.
/// `cn=140.221.65.69, hostname=dpsslx04.lbl.gov, dc=lbl, dc=gov, o=grid`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Dn(String);

impl Dn {
    /// Build from relative components, most-specific first.
    pub fn from_components(parts: &[(&str, &str)]) -> Self {
        let s = parts
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(", ");
        Dn(s)
    }

    /// Parse from string form (no validation beyond non-emptiness).
    pub fn parse(s: &str) -> Option<Self> {
        let t = s.trim();
        if t.is_empty() {
            None
        } else {
            Some(Dn(t.to_string()))
        }
    }

    /// The string form.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Whether this DN ends with (is under) the given suffix.
    pub fn is_under(&self, suffix: &Dn) -> bool {
        let a = self.0.replace(", ", ",");
        let b = suffix.0.replace(", ", ",");
        a == b || a.ends_with(&format!(",{b}"))
    }
}

impl fmt::Display for Dn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A directory entry: DN plus multi-valued attributes. Attribute names
/// are normalized to lowercase (LDAP attribute names are
/// case-insensitive).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Entry {
    /// The entry's distinguished name.
    pub dn: Option<Dn>,
    attrs: BTreeMap<String, Vec<String>>,
}

impl Entry {
    /// Empty entry with a DN.
    pub fn new(dn: Dn) -> Self {
        Entry {
            dn: Some(dn),
            attrs: BTreeMap::new(),
        }
    }

    /// Add one attribute value (appends for multi-valued attributes).
    ///
    /// # Panics
    /// Panics on the reserved name `dn`, which is not an attribute in
    /// LDIF — set [`Entry::dn`] instead.
    pub fn add(&mut self, attr: &str, value: impl Into<String>) -> &mut Self {
        assert!(
            !attr.eq_ignore_ascii_case("dn"),
            "'dn' is not an attribute; set Entry::dn"
        );
        self.attrs
            .entry(attr.to_ascii_lowercase())
            .or_default()
            .push(value.into());
        self
    }

    /// Replace all values of an attribute.
    ///
    /// # Panics
    /// Panics on the reserved name `dn` (see [`Entry::add`]).
    pub fn set(&mut self, attr: &str, value: impl Into<String>) -> &mut Self {
        assert!(
            !attr.eq_ignore_ascii_case("dn"),
            "'dn' is not an attribute; set Entry::dn"
        );
        self.attrs
            .insert(attr.to_ascii_lowercase(), vec![value.into()]);
        self
    }

    /// First value of an attribute.
    pub fn get(&self, attr: &str) -> Option<&str> {
        self.attrs
            .get(&attr.to_ascii_lowercase())
            .and_then(|v| v.first())
            .map(String::as_str)
    }

    /// All values of an attribute.
    pub fn get_all(&self, attr: &str) -> &[String] {
        self.attrs
            .get(&attr.to_ascii_lowercase())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Whether the attribute exists with at least one value.
    pub fn has(&self, attr: &str) -> bool {
        !self.get_all(attr).is_empty()
    }

    /// Iterate attributes in name order.
    pub fn attrs(&self) -> impl Iterator<Item = (&str, &[String])> {
        self.attrs.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// Number of distinct attribute names.
    pub fn attr_count(&self) -> usize {
        self.attrs.len()
    }

    /// Render as an LDIF block (DN line then `name: value` lines).
    pub fn to_ldif(&self) -> String {
        let mut s = String::new();
        if let Some(dn) = &self.dn {
            s.push_str("dn: ");
            s.push_str(dn.as_str());
            s.push('\n');
        }
        for (k, vals) in &self.attrs {
            for v in vals {
                s.push_str(k);
                s.push_str(": ");
                s.push_str(v);
                s.push('\n');
            }
        }
        s
    }

    /// Parse one LDIF block (inverse of [`Entry::to_ldif`], ignoring
    /// blank lines and `#` comments).
    pub fn from_ldif(block: &str) -> Result<Entry, LdifError> {
        let mut e = Entry::default();
        for (i, line) in block.lines().enumerate() {
            let line = line.trim_end();
            if line.trim().is_empty() || line.starts_with('#') {
                continue;
            }
            let (k, v) = line.split_once(':').ok_or(LdifError::MissingColon(i + 1))?;
            let k = k.trim();
            let v = v.trim();
            if k.eq_ignore_ascii_case("dn") {
                e.dn = Dn::parse(v);
                if e.dn.is_none() {
                    return Err(LdifError::EmptyDn(i + 1));
                }
            } else if k.is_empty() {
                return Err(LdifError::MissingColon(i + 1));
            } else {
                e.add(k, v);
            }
        }
        Ok(e)
    }
}

/// LDIF parse errors (1-based line numbers within the block).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LdifError {
    /// A non-empty line lacked the `name: value` colon.
    MissingColon(usize),
    /// A `dn:` line had no value.
    EmptyDn(usize),
}

impl fmt::Display for LdifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LdifError::MissingColon(n) => write!(f, "line {n}: missing ':'"),
            LdifError::EmptyDn(n) => write!(f, "line {n}: empty dn"),
        }
    }
}

impl std::error::Error for LdifError {}

/// Render several entries as an LDIF document separated by blank lines.
pub fn to_ldif_document(entries: &[Entry]) -> String {
    entries
        .iter()
        .map(Entry::to_ldif)
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Entry {
        let mut e = Entry::new(Dn::from_components(&[
            ("cn", "140.221.65.69"),
            ("hostname", "dpsslx04.lbl.gov"),
            ("dc", "lbl"),
            ("dc", "gov"),
            ("o", "grid"),
        ]));
        e.add("objectclass", "GridFTPPerfInfo");
        e.add("hostname", "dpsslx04.lbl.gov");
        e.add("gridftpurl", "gsiftp://dpsslx04.lbl.gov:61000");
        e.add("minrdbandwidth", "1462");
        e
    }

    #[test]
    fn dn_construction_and_suffix() {
        let dn = Dn::from_components(&[("cn", "x"), ("o", "grid")]);
        assert_eq!(dn.as_str(), "cn=x, o=grid");
        let suffix = Dn::parse("o=grid").unwrap();
        assert!(dn.is_under(&suffix));
        assert!(dn.is_under(&dn));
        assert!(!Dn::parse("o=grid").unwrap().is_under(&dn));
        assert!(!Dn::parse("cn=y,o=grid")
            .unwrap()
            .is_under(&Dn::parse("cn=x,o=grid").unwrap()));
    }

    #[test]
    fn attributes_case_insensitive_multivalued() {
        let mut e = Entry::default();
        e.add("DC", "lbl");
        e.add("dc", "gov");
        assert_eq!(e.get_all("Dc"), &["lbl".to_string(), "gov".to_string()]);
        assert_eq!(e.get("dc"), Some("lbl"));
        assert!(e.has("DC"));
        assert!(!e.has("cn"));
    }

    #[test]
    fn set_replaces() {
        let mut e = Entry::default();
        e.add("a", "1");
        e.add("a", "2");
        e.set("a", "3");
        assert_eq!(e.get_all("a"), &["3".to_string()]);
    }

    #[test]
    fn ldif_roundtrip() {
        let e = sample();
        let text = e.to_ldif();
        assert!(text.starts_with("dn: cn=140.221.65.69"));
        assert!(text.contains("minrdbandwidth: 1462"));
        let back = Entry::from_ldif(&text).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn ldif_parse_errors() {
        assert_eq!(
            Entry::from_ldif("garbage line"),
            Err(LdifError::MissingColon(1))
        );
        assert_eq!(Entry::from_ldif("dn: "), Err(LdifError::EmptyDn(1)));
    }

    #[test]
    fn ldif_document_joins_blocks() {
        let doc = to_ldif_document(&[sample(), sample()]);
        assert_eq!(doc.matches("dn: ").count(), 2);
        assert!(doc.contains("\n\ndn: "));
    }

    #[test]
    #[should_panic]
    fn dn_attribute_rejected() {
        Entry::default().add("DN", "x");
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let e = Entry::from_ldif("# comment\n\ndn: o=grid\na: 1\n").unwrap();
        assert_eq!(e.dn.as_ref().unwrap().as_str(), "o=grid");
        assert_eq!(e.get("a"), Some("1"));
    }
}
