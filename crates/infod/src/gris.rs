//! The Grid Resource Information Service: a per-site directory server
//! fed by pluggable information providers, with TTL caching and
//! degraded-mode serving.
//!
//! MDS-2's GRIS invokes its providers on demand and caches their output
//! for a provider-declared lifetime (information like transfer statistics
//! is expensive to recompute, and inquiry rates can be high). Search
//! applies an LDAP filter over the cached entries.
//!
//! Providers are *fallible*: a provider whose backing store is
//! unavailable (log unreadable, filesystem gone) returns a
//! [`ProviderError`] instead of entries. The GRIS then keeps serving the
//! last-known-good cache, stamping every served entry with a
//! `stalenesssecs` attribute — the age of the data at inquiry time — so
//! downstream consumers (the replica broker's ranking in particular) can
//! discount it instead of either trusting it blindly or losing the site
//! entirely. On the next successful refresh the stamp disappears.
//!
//! ## Read path vs refresh path
//!
//! The inquiry surface is the `&self` [`InquiryService::inquire`]; the
//! refresh path is [`Gris::materialize`], which runs the TTL-gated
//! provider refreshes and returns *unstamped* entries with per-entry
//! last-known-good timestamps. The sharded serving layer
//! ([`crate::serve`]) calls `materialize` from its background refresher
//! and stamps `stalenesssecs` at read time, so a snapshot taken once can
//! keep serving correctly-aged entries long after it was cut.

use parking_lot::Mutex;
use wanpred_obs::{names, ObsSink};

use crate::error::InquiryError;
use crate::filter::Filter;
use crate::ldif::{Dn, Entry};
use crate::service::{InquiryRequest, InquiryResponse, InquiryService, Provenance, ServedBy};

/// Why a provider refresh failed. Downstream code can match on the
/// variant (transient resource outage vs. provider-internal failure)
/// instead of parsing a rendered string.
#[derive(Debug)]
#[non_exhaustive]
pub enum ProviderError {
    /// The provider's backing resource (log file, filesystem) could not
    /// be read. Carries the underlying error as `source`.
    Unavailable {
        /// What could not be read — a path or resource name.
        resource: String,
        /// The underlying failure.
        source: Box<dyn std::error::Error + Send + Sync>,
    },
    /// A provider-internal failure with a rendered cause.
    Failed(String),
}

impl ProviderError {
    /// A provider-internal error with a human-readable cause.
    pub fn new(message: impl Into<String>) -> Self {
        ProviderError::Failed(message.into())
    }

    /// A backing-resource failure, preserving the cause chain.
    pub fn unavailable(
        resource: impl Into<String>,
        source: impl std::error::Error + Send + Sync + 'static,
    ) -> Self {
        ProviderError::Unavailable {
            resource: resource.into(),
            source: Box::new(source),
        }
    }

    /// The rendered cause.
    pub fn message(&self) -> String {
        match self {
            ProviderError::Unavailable { resource, source } => format!("{resource}: {source}"),
            ProviderError::Failed(m) => m.clone(),
        }
    }
}

impl std::fmt::Display for ProviderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "provider refresh failed: {}", self.message())
    }
}

impl std::error::Error for ProviderError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProviderError::Unavailable { source, .. } => Some(source.as_ref()),
            ProviderError::Failed(_) => None,
        }
    }
}

/// A pluggable information source.
pub trait InfoProvider: Send {
    /// Provider name (diagnostics).
    fn name(&self) -> &str;

    /// Produce the provider's current entries. `now_unix` is the inquiry
    /// time, letting providers compute temporal-window statistics. A
    /// failing provider returns an error; the GRIS degrades to its
    /// last-known-good cache.
    fn provide(&mut self, now_unix: u64) -> Result<Vec<Entry>, ProviderError>;

    /// Seconds the produced entries may be served from cache.
    fn ttl_secs(&self) -> u64 {
        30
    }
}

/// The attribute stamped onto entries served from a cache whose refresh
/// failed: seconds since the data was last known good.
pub const STALENESS_ATTR: &str = "stalenesssecs";

/// One entry of a [`Materialized`] refresh: the raw (unstamped) entry
/// plus, when its provider is degraded, the time its data was last known
/// good. Consumers stamp `stalenesssecs = now - last_good_unix` at the
/// moment they actually serve the entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaterializedEntry {
    /// The entry, without a staleness stamp.
    pub entry: Entry,
    /// `Some(t)` when the producing provider is degraded and `t` is when
    /// its cache was last refreshed successfully; `None` when fresh.
    pub last_good_unix: Option<u64>,
}

impl MaterializedEntry {
    /// The entry as served at `now_unix`: stamped with its age when the
    /// provider is degraded, untouched when fresh. Returns the stamp age.
    pub fn stamped(&self, now_unix: u64) -> (Entry, u64) {
        match self.last_good_unix {
            None => (self.entry.clone(), 0),
            Some(t) => {
                let age = now_unix.saturating_sub(t);
                let mut e = self.entry.clone();
                e.set(STALENESS_ATTR, age.to_string());
                (e, age)
            }
        }
    }
}

/// The result of one refresh pass over a GRIS: every provider's current
/// entries, from a single refresh generation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Materialized {
    /// Per-entry payloads in provider registration order.
    pub entries: Vec<MaterializedEntry>,
}

/// A source the sharded serving layer can snapshot: one TTL-gated
/// refresh pass returning unstamped entries with degraded-mode ages.
pub trait SnapshotSource: Send + Sync {
    /// Run due provider refreshes and return the current entry set.
    fn materialize(&self, now_unix: u64) -> Materialized;
}

struct Slot {
    provider: Box<dyn InfoProvider>,
    cache: Vec<Entry>,
    /// When the cache contents were last produced successfully.
    last_good_at: Option<u64>,
    /// When the provider was last invoked (success or failure) — TTL
    /// scheduling runs off this so a dead provider is retried once per
    /// TTL, not on every inquiry.
    checked_at: Option<u64>,
    consecutive_failures: u32,
}

#[derive(Default)]
struct GrisState {
    slots: Vec<Slot>,
    /// Cumulative provider invocations (cache-miss counter for tests and
    /// the provider-cost bench).
    invocations: u64,
    /// Cumulative failed refresh attempts.
    refresh_failures: u64,
}

/// A GRIS instance.
///
/// All inquiry methods take `&self`: the provider slots live behind an
/// internal mutex, so a `Gris` shared through an `Arc` answers
/// [`InquiryService::inquire`] calls directly. This internal lock is the
/// "direct locked access" baseline the serving benchmark compares the
/// sharded snapshot path against — every inquiry serializes behind every
/// other, refreshes run inline on the inquiry path.
pub struct Gris {
    base_dn: Dn,
    state: Mutex<GrisState>,
    /// Observability sink (null by default).
    obs: ObsSink,
}

impl Gris {
    /// Create a GRIS rooted at `base_dn`.
    pub fn new(base_dn: Dn) -> Self {
        Gris {
            base_dn,
            state: Mutex::new(GrisState::default()),
            obs: ObsSink::disabled(),
        }
    }

    /// Attach an observability sink: refresh outcomes, cache hits, and
    /// search counts are emitted through it, with a span per provider
    /// refresh keyed on the inquiry clock.
    pub fn set_obs(&mut self, obs: ObsSink) {
        self.obs = obs;
    }

    /// The directory suffix this GRIS serves.
    pub fn base_dn(&self) -> &Dn {
        &self.base_dn
    }

    /// Plug in a provider.
    pub fn register_provider(&mut self, provider: Box<dyn InfoProvider>) {
        self.state.get_mut().slots.push(Slot {
            provider,
            cache: Vec::new(),
            last_good_at: None,
            checked_at: None,
            consecutive_failures: 0,
        });
    }

    /// Number of registered providers.
    pub fn provider_count(&self) -> usize {
        self.state.lock().slots.len()
    }

    /// Total provider invocations so far.
    pub fn invocations(&self) -> u64 {
        self.state.lock().invocations
    }

    /// Total failed refresh attempts so far.
    pub fn refresh_failures(&self) -> u64 {
        self.state.lock().refresh_failures
    }

    /// Names of providers currently serving stale (degraded-mode) data.
    pub fn degraded_providers(&self) -> Vec<String> {
        self.state
            .lock()
            .slots
            .iter()
            .filter(|s| s.consecutive_failures > 0)
            .map(|s| s.provider.name().to_string())
            .collect()
    }

    /// The refresh path: run TTL-due provider refreshes and return the
    /// resulting entry set, unstamped, with per-entry last-known-good
    /// ages for degraded providers. One call is one refresh generation —
    /// every entry in the result was cut under a single lock hold, which
    /// is the guarantee the sharded serving layer's snapshots propagate
    /// to readers.
    pub fn materialize(&self, now_unix: u64) -> Materialized {
        let mut st = self.state.lock();
        let st = &mut *st;
        let mut out = Materialized::default();
        for s in &mut st.slots {
            let due = match s.checked_at {
                None => true,
                Some(t) => now_unix.saturating_sub(t) >= s.provider.ttl_secs(),
            };
            if due {
                st.invocations += 1;
                s.checked_at = Some(now_unix);
                self.obs
                    .span_enter(names::INFOD_GRIS_REFRESH, now_unix * 1_000_000);
                match s.provider.provide(now_unix) {
                    Ok(entries) => {
                        s.cache = entries;
                        s.last_good_at = Some(now_unix);
                        s.consecutive_failures = 0;
                        self.obs.inc(names::INFOD_GRIS_REFRESH_OK);
                    }
                    Err(_) => {
                        st.refresh_failures += 1;
                        s.consecutive_failures += 1;
                        self.obs.inc(names::INFOD_GRIS_REFRESH_FAIL);
                    }
                }
                // Provider invocation is instantaneous on the directory
                // clock (second granularity), so the span closes at its
                // entry timestamp; count and nesting are what matter.
                self.obs
                    .span_exit(names::INFOD_GRIS_REFRESH, now_unix * 1_000_000);
            } else {
                self.obs.inc(names::INFOD_GRIS_CACHE_HITS);
            }
            let last_good = if s.consecutive_failures > 0 {
                // Degraded: the age anchor is the last successful
                // refresh, or the epoch when there never was one (an
                // empty cache contributes no entries either way).
                Some(s.last_good_at.unwrap_or(0))
            } else {
                None
            };
            out.entries
                .extend(s.cache.iter().map(|e| MaterializedEntry {
                    entry: e.clone(),
                    last_good_unix: last_good,
                }));
        }
        out
    }

    /// All current entries, refreshing stale caches. A provider whose
    /// refresh fails keeps serving its last-known-good entries, each
    /// stamped with [`STALENESS_ATTR`].
    #[deprecated(note = "use `InquiryService::inquire`; entries() is the pre-service surface")]
    pub fn entries(&self, now_unix: u64) -> Vec<Entry> {
        self.materialize(now_unix)
            .entries
            .iter()
            .map(|me| me.stamped(now_unix).0)
            .collect()
    }

    /// Search: refresh stale providers, apply the filter.
    #[deprecated(note = "use `InquiryService::inquire`; search() is the pre-service surface")]
    pub fn search(&self, filter: &Filter, now_unix: u64) -> Vec<Entry> {
        self.inquire(&InquiryRequest::new(filter.clone(), now_unix))
            .map(|r| r.entries)
            .unwrap_or_default()
    }
}

impl SnapshotSource for Gris {
    fn materialize(&self, now_unix: u64) -> Materialized {
        Gris::materialize(self, now_unix)
    }
}

impl InquiryService for Gris {
    fn inquire(&self, req: &InquiryRequest) -> Result<InquiryResponse, InquiryError> {
        self.obs.inc(names::INFOD_GRIS_SEARCHES);
        let mut entries = Vec::new();
        let mut max_staleness = 0u64;
        for me in &self.materialize(req.now_unix).entries {
            let (e, age) = me.stamped(req.now_unix);
            if req.filter.matches(&e) {
                max_staleness = max_staleness.max(age);
                entries.push(e);
            }
        }
        Ok(InquiryResponse::new(
            entries,
            max_staleness,
            Provenance::direct(ServedBy::Gris),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter;

    fn search(g: &Gris, f: &Filter, now: u64) -> Vec<Entry> {
        g.inquire(&InquiryRequest::new(f.clone(), now))
            .unwrap()
            .entries
    }

    fn entries(g: &Gris, now: u64) -> Vec<Entry> {
        search(g, &filter::parse("(|(calls=*)(site=*))").unwrap(), now)
    }

    struct Counter {
        calls: u64,
        ttl: u64,
    }

    impl InfoProvider for Counter {
        fn name(&self) -> &str {
            "counter"
        }
        fn provide(&mut self, now_unix: u64) -> Result<Vec<Entry>, ProviderError> {
            self.calls += 1;
            let mut e = Entry::new(Dn::parse("cn=c, o=grid").unwrap());
            e.add("calls", self.calls.to_string());
            e.add("now", now_unix.to_string());
            Ok(vec![e])
        }
        fn ttl_secs(&self) -> u64 {
            self.ttl
        }
    }

    /// A provider whose availability is scripted per call.
    struct Flaky {
        outcomes: std::collections::VecDeque<bool>,
        calls: u64,
    }

    impl Flaky {
        fn new(outcomes: &[bool]) -> Self {
            Flaky {
                outcomes: outcomes.iter().copied().collect(),
                calls: 0,
            }
        }
    }

    impl InfoProvider for Flaky {
        fn name(&self) -> &str {
            "flaky"
        }
        fn provide(&mut self, _now: u64) -> Result<Vec<Entry>, ProviderError> {
            self.calls += 1;
            if self.outcomes.pop_front().unwrap_or(false) {
                let mut e = Entry::new(Dn::parse("cn=f, o=grid").unwrap());
                e.add("calls", self.calls.to_string());
                Ok(vec![e])
            } else {
                Err(ProviderError::new("log unreadable"))
            }
        }
        fn ttl_secs(&self) -> u64 {
            10
        }
    }

    #[test]
    fn cache_serves_within_ttl() {
        let mut g = Gris::new(Dn::parse("o=grid").unwrap());
        g.register_provider(Box::new(Counter { calls: 0, ttl: 30 }));
        let e1 = entries(&g, 100);
        let e2 = entries(&g, 120); // within TTL
        assert_eq!(e1[0].get("calls"), Some("1"));
        assert_eq!(e2[0].get("calls"), Some("1"));
        assert_eq!(g.invocations(), 1);
        let e3 = entries(&g, 130); // 30s elapsed: refresh
        assert_eq!(e3[0].get("calls"), Some("2"));
        assert_eq!(g.invocations(), 2);
    }

    #[test]
    fn search_applies_filter() {
        let mut g = Gris::new(Dn::parse("o=grid").unwrap());
        g.register_provider(Box::new(Counter {
            calls: 0,
            ttl: 1_000,
        }));
        let f = filter::parse("(calls=1)").unwrap();
        assert_eq!(search(&g, &f, 0).len(), 1);
        let f = filter::parse("(calls=99)").unwrap();
        assert_eq!(search(&g, &f, 1).len(), 0);
    }

    #[test]
    fn deprecated_shims_still_answer() {
        // The old `&mut self`-era surface is a thin veneer over the
        // service path; its results must agree with inquire().
        #![allow(deprecated)]
        let mut g = Gris::new(Dn::parse("o=grid").unwrap());
        g.register_provider(Box::new(Counter { calls: 0, ttl: 30 }));
        let via_shim = g.entries(100);
        assert_eq!(via_shim.len(), 1);
        assert_eq!(via_shim[0].get("calls"), Some("1"));
        let f = filter::parse("(calls=1)").unwrap();
        assert_eq!(g.search(&f, 110), search(&g, &f, 110));
    }

    #[test]
    fn multiple_providers_merge() {
        let mut g = Gris::new(Dn::parse("o=grid").unwrap());
        g.register_provider(Box::new(Counter { calls: 0, ttl: 10 }));
        g.register_provider(Box::new(Counter { calls: 10, ttl: 10 }));
        assert_eq!(g.provider_count(), 2);
        let all = entries(&g, 0);
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn failed_refresh_serves_stale_entries_with_staleness_stamp() {
        let mut g = Gris::new(Dn::parse("o=grid").unwrap());
        g.register_provider(Box::new(Flaky::new(&[true, false, false])));
        // First inquiry succeeds: fresh data, no stamp.
        let fresh = entries(&g, 100);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].get(STALENESS_ATTR), None);
        // TTL lapses, refresh fails: last-known-good served, stamped with
        // its age (115 - 100 = 15s).
        let stale = entries(&g, 115);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].get("calls"), Some("1"));
        assert_eq!(stale[0].get(STALENESS_ATTR), Some("15"));
        assert_eq!(g.refresh_failures(), 1);
        assert_eq!(g.degraded_providers(), vec!["flaky".to_string()]);
        // Still failing later: the stamp grows.
        let staler = entries(&g, 130);
        assert_eq!(staler[0].get(STALENESS_ATTR), Some("30"));
        assert_eq!(g.refresh_failures(), 2);
    }

    #[test]
    fn recovery_clears_the_staleness_stamp() {
        let mut g = Gris::new(Dn::parse("o=grid").unwrap());
        g.register_provider(Box::new(Flaky::new(&[true, false, true])));
        entries(&g, 0);
        let stale = entries(&g, 10);
        assert_eq!(stale[0].get(STALENESS_ATTR), Some("10"));
        // Provider comes back: fresh entries, no stamp, counters reset.
        let fresh = entries(&g, 20);
        assert_eq!(fresh[0].get("calls"), Some("3"));
        assert_eq!(fresh[0].get(STALENESS_ATTR), None);
        assert!(g.degraded_providers().is_empty());
    }

    #[test]
    fn dead_provider_with_no_history_serves_nothing_but_is_retried() {
        let mut g = Gris::new(Dn::parse("o=grid").unwrap());
        g.register_provider(Box::new(Flaky::new(&[false, false, true])));
        assert!(entries(&g, 0).is_empty());
        // Within TTL the failure is not retried (no hammering).
        assert!(entries(&g, 5).is_empty());
        assert_eq!(g.invocations(), 1);
        // After the TTL it is.
        assert!(entries(&g, 10).is_empty());
        assert_eq!(g.invocations(), 2);
        // Eventually it comes up.
        assert_eq!(entries(&g, 20).len(), 1);
    }

    #[test]
    fn staleness_is_searchable() {
        let mut g = Gris::new(Dn::parse("o=grid").unwrap());
        g.register_provider(Box::new(Flaky::new(&[true, false])));
        entries(&g, 0);
        let hits = search(&g, &filter::parse("(stalenesssecs=*)").unwrap(), 10);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn inquire_reports_staleness_and_provenance() {
        let mut g = Gris::new(Dn::parse("o=grid").unwrap());
        g.register_provider(Box::new(Flaky::new(&[true, false])));
        let req = |now| InquiryRequest::parse("(calls=*)", now).unwrap();
        let fresh = g.inquire(&req(0)).unwrap();
        assert_eq!(fresh.staleness_secs, 0);
        assert_eq!(fresh.provenance.source, ServedBy::Gris);
        assert!(fresh.provenance.shards.is_empty());
        let stale = g.inquire(&req(25)).unwrap();
        assert_eq!(stale.staleness_secs, 25);
    }

    #[test]
    fn materialize_returns_unstamped_entries_with_ages() {
        let mut g = Gris::new(Dn::parse("o=grid").unwrap());
        g.register_provider(Box::new(Flaky::new(&[true, false])));
        let fresh = g.materialize(100);
        assert_eq!(fresh.entries.len(), 1);
        assert_eq!(fresh.entries[0].last_good_unix, None);
        let degraded = g.materialize(115);
        assert_eq!(degraded.entries[0].last_good_unix, Some(100));
        // The raw entry is unstamped; stamping happens at serve time.
        assert_eq!(degraded.entries[0].entry.get(STALENESS_ATTR), None);
        let (served, age) = degraded.entries[0].stamped(140);
        assert_eq!(age, 40);
        assert_eq!(served.get(STALENESS_ATTR), Some("40"));
    }
}
