//! The Grid Resource Information Service: a per-site directory server
//! fed by pluggable information providers, with TTL caching.
//!
//! MDS-2's GRIS invokes its providers on demand and caches their output
//! for a provider-declared lifetime (information like transfer statistics
//! is expensive to recompute, and inquiry rates can be high). Search
//! applies an LDAP filter over the cached entries.

use crate::filter::Filter;
use crate::ldif::{Dn, Entry};

/// A pluggable information source.
pub trait InfoProvider: Send {
    /// Provider name (diagnostics).
    fn name(&self) -> &str;

    /// Produce the provider's current entries. `now_unix` is the inquiry
    /// time, letting providers compute temporal-window statistics.
    fn provide(&mut self, now_unix: u64) -> Vec<Entry>;

    /// Seconds the produced entries may be served from cache.
    fn ttl_secs(&self) -> u64 {
        30
    }
}

struct Slot {
    provider: Box<dyn InfoProvider>,
    cache: Vec<Entry>,
    fetched_at: Option<u64>,
}

/// A GRIS instance.
pub struct Gris {
    base_dn: Dn,
    slots: Vec<Slot>,
    /// Cumulative provider invocations (cache-miss counter for tests and
    /// the provider-cost bench).
    invocations: u64,
}

impl Gris {
    /// Create a GRIS rooted at `base_dn`.
    pub fn new(base_dn: Dn) -> Self {
        Gris {
            base_dn,
            slots: Vec::new(),
            invocations: 0,
        }
    }

    /// The directory suffix this GRIS serves.
    pub fn base_dn(&self) -> &Dn {
        &self.base_dn
    }

    /// Plug in a provider.
    pub fn register_provider(&mut self, provider: Box<dyn InfoProvider>) {
        self.slots.push(Slot {
            provider,
            cache: Vec::new(),
            fetched_at: None,
        });
    }

    /// Number of registered providers.
    pub fn provider_count(&self) -> usize {
        self.slots.len()
    }

    /// Total provider invocations so far.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// All current entries, refreshing stale caches.
    pub fn entries(&mut self, now_unix: u64) -> Vec<Entry> {
        let mut out = Vec::new();
        let mut invocations = 0;
        for s in &mut self.slots {
            let stale = match s.fetched_at {
                None => true,
                Some(t) => now_unix.saturating_sub(t) >= s.provider.ttl_secs(),
            };
            if stale {
                s.cache = s.provider.provide(now_unix);
                s.fetched_at = Some(now_unix);
                invocations += 1;
            }
            out.extend(s.cache.iter().cloned());
        }
        self.invocations += invocations;
        out
    }

    /// Search: refresh stale providers, apply the filter.
    pub fn search(&mut self, filter: &Filter, now_unix: u64) -> Vec<Entry> {
        self.entries(now_unix)
            .into_iter()
            .filter(|e| filter.matches(e))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter;

    struct Counter {
        calls: u64,
        ttl: u64,
    }

    impl InfoProvider for Counter {
        fn name(&self) -> &str {
            "counter"
        }
        fn provide(&mut self, now_unix: u64) -> Vec<Entry> {
            self.calls += 1;
            let mut e = Entry::new(Dn::parse("cn=c, o=grid").unwrap());
            e.add("calls", self.calls.to_string());
            e.add("now", now_unix.to_string());
            vec![e]
        }
        fn ttl_secs(&self) -> u64 {
            self.ttl
        }
    }

    #[test]
    fn cache_serves_within_ttl() {
        let mut g = Gris::new(Dn::parse("o=grid").unwrap());
        g.register_provider(Box::new(Counter { calls: 0, ttl: 30 }));
        let e1 = g.entries(100);
        let e2 = g.entries(120); // within TTL
        assert_eq!(e1[0].get("calls"), Some("1"));
        assert_eq!(e2[0].get("calls"), Some("1"));
        assert_eq!(g.invocations(), 1);
        let e3 = g.entries(130); // 30s elapsed: refresh
        assert_eq!(e3[0].get("calls"), Some("2"));
        assert_eq!(g.invocations(), 2);
    }

    #[test]
    fn search_applies_filter() {
        let mut g = Gris::new(Dn::parse("o=grid").unwrap());
        g.register_provider(Box::new(Counter {
            calls: 0,
            ttl: 1_000,
        }));
        let f = filter::parse("(calls=1)").unwrap();
        assert_eq!(g.search(&f, 0).len(), 1);
        let f = filter::parse("(calls=99)").unwrap();
        assert_eq!(g.search(&f, 1).len(), 0);
    }

    #[test]
    fn multiple_providers_merge() {
        let mut g = Gris::new(Dn::parse("o=grid").unwrap());
        g.register_provider(Box::new(Counter { calls: 0, ttl: 10 }));
        g.register_provider(Box::new(Counter { calls: 10, ttl: 10 }));
        assert_eq!(g.provider_count(), 2);
        let all = g.entries(0);
        assert_eq!(all.len(), 2);
    }
}
