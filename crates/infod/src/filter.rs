//! LDAP search-filter subset (RFC 2254 style) for GRIS/GIIS inquiries.
//!
//! Supported grammar:
//!
//! ```text
//! filter     = "(" filtercomp ")"
//! filtercomp = and | or | not | item
//! and        = "&" filter+
//! or         = "|" filter+
//! not        = "!" filter
//! item       = attr "=" value      (equality; value "*" = presence)
//!            | attr ">=" value     (numeric-or-lexical >=)
//!            | attr "<=" value
//!            | attr "=" v*v*v      (substring)
//! ```
//!
//! Numeric comparison is used when both sides parse as `f64`, matching
//! how MDS consumers compare bandwidth attributes.

use std::fmt;

use crate::ldif::Entry;

/// A parsed search filter.
#[derive(Debug, Clone, PartialEq)]
pub enum Filter {
    /// Conjunction.
    And(Vec<Filter>),
    /// Disjunction.
    Or(Vec<Filter>),
    /// Negation.
    Not(Box<Filter>),
    /// Attribute present (any value).
    Present(String),
    /// Attribute equals value.
    Eq(String, String),
    /// Attribute >= value.
    Ge(String, String),
    /// Attribute <= value.
    Le(String, String),
    /// Substring match with `*` wildcards.
    Substring(String, Vec<String>),
}

/// Filter parse errors with byte offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterError {
    /// Byte offset of the problem.
    pub at: usize,
    /// Description.
    pub msg: &'static str,
}

impl fmt::Display for FilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "filter error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for FilterError {}

/// Parse a filter string.
pub fn parse(s: &str) -> Result<Filter, FilterError> {
    let bytes = s.trim();
    let mut p = Parser { s: bytes, pos: 0 };
    let f = p.parse_filter()?;
    p.skip_ws();
    if p.pos != p.s.len() {
        return Err(FilterError {
            at: p.pos,
            msg: "trailing characters",
        });
    }
    Ok(f)
}

struct Parser<'a> {
    s: &'a str,
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<char> {
        self.s[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    fn expect(&mut self, c: char) -> Result<(), FilterError> {
        if self.peek() == Some(c) {
            self.bump();
            Ok(())
        } else {
            Err(FilterError {
                at: self.pos,
                msg: "unexpected character",
            })
        }
    }

    fn parse_filter(&mut self) -> Result<Filter, FilterError> {
        self.skip_ws();
        self.expect('(')?;
        self.skip_ws();
        let f = match self.peek() {
            Some('&') => {
                self.bump();
                Filter::And(self.parse_list()?)
            }
            Some('|') => {
                self.bump();
                Filter::Or(self.parse_list()?)
            }
            Some('!') => {
                self.bump();
                Filter::Not(Box::new(self.parse_filter()?))
            }
            Some(_) => self.parse_item()?,
            None => {
                return Err(FilterError {
                    at: self.pos,
                    msg: "unterminated filter",
                })
            }
        };
        self.skip_ws();
        self.expect(')')?;
        Ok(f)
    }

    fn parse_list(&mut self) -> Result<Vec<Filter>, FilterError> {
        let mut out = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some('(') {
                out.push(self.parse_filter()?);
            } else {
                break;
            }
        }
        if out.is_empty() {
            return Err(FilterError {
                at: self.pos,
                msg: "empty and/or list",
            });
        }
        Ok(out)
    }

    fn parse_item(&mut self) -> Result<Filter, FilterError> {
        let start = self.pos;
        // Attribute name: up to an operator character.
        let mut attr = String::new();
        while let Some(c) = self.peek() {
            if c == '=' || c == '>' || c == '<' || c == ')' {
                break;
            }
            attr.push(c);
            self.bump();
        }
        let attr = attr.trim().to_ascii_lowercase();
        if attr.is_empty() {
            return Err(FilterError {
                at: start,
                msg: "empty attribute name",
            });
        }
        let op = match self.bump() {
            Some('=') => '=',
            Some('>') => {
                self.expect('=')?;
                '>'
            }
            Some('<') => {
                self.expect('=')?;
                '<'
            }
            _ => {
                return Err(FilterError {
                    at: self.pos,
                    msg: "expected comparison operator",
                })
            }
        };
        // Value: up to the closing paren.
        let mut value = String::new();
        while let Some(c) = self.peek() {
            if c == ')' {
                break;
            }
            value.push(c);
            self.bump();
        }
        let value = value.trim().to_string();
        Ok(match op {
            '>' => Filter::Ge(attr, value),
            '<' => Filter::Le(attr, value),
            _ => {
                if value == "*" {
                    Filter::Present(attr)
                } else if value.contains('*') {
                    let parts = value.split('*').map(str::to_string).collect();
                    Filter::Substring(attr, parts)
                } else {
                    Filter::Eq(attr, value)
                }
            }
        })
    }
}

/// Compare two attribute values: numerically when both parse as finite
/// numbers, lexically when neither does. `None` means *not comparable* —
/// a NaN (which `"NaN".parse::<f64>()` happily produces) or a
/// numeric/non-numeric mix must not satisfy an ordering filter.
fn cmp_values(a: &str, b: &str) -> Option<std::cmp::Ordering> {
    match (a.parse::<f64>(), b.parse::<f64>()) {
        // tidy: allow(float-ord): None on NaN is the point — a NaN value must not satisfy >=/<= filters
        (Ok(x), Ok(y)) => x.partial_cmp(&y),
        (Err(_), Err(_)) => Some(a.cmp(b)),
        _ => None,
    }
}

fn substring_match(parts: &[String], value: &str) -> bool {
    // parts are the fragments between '*'s; first/last anchor prefix and
    // suffix when non-empty.
    let lower = value.to_ascii_lowercase();
    let mut at = 0usize;
    for (i, part) in parts.iter().enumerate() {
        let p = part.to_ascii_lowercase();
        if p.is_empty() {
            continue;
        }
        if i == 0 {
            if !lower.starts_with(&p) {
                return false;
            }
            at = p.len();
        } else if i == parts.len() - 1 {
            return lower[at..].ends_with(&p);
        } else {
            match lower[at..].find(&p) {
                Some(idx) => at += idx + p.len(),
                None => return false,
            }
        }
    }
    true
}

impl fmt::Display for Filter {
    /// Render the canonical string form — parseable back to an equal
    /// filter, so it can key the serving layer's per-shard result cache.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Filter::And(fs) => {
                f.write_str("(&")?;
                for sub in fs {
                    write!(f, "{sub}")?;
                }
                f.write_str(")")
            }
            Filter::Or(fs) => {
                f.write_str("(|")?;
                for sub in fs {
                    write!(f, "{sub}")?;
                }
                f.write_str(")")
            }
            Filter::Not(sub) => write!(f, "(!{sub})"),
            Filter::Present(a) => write!(f, "({a}=*)"),
            Filter::Eq(a, v) => write!(f, "({a}={v})"),
            Filter::Ge(a, v) => write!(f, "({a}>={v})"),
            Filter::Le(a, v) => write!(f, "({a}<={v})"),
            Filter::Substring(a, parts) => write!(f, "({a}={})", parts.join("*")),
        }
    }
}

impl Filter {
    /// Evaluate against an entry.
    pub fn matches(&self, e: &Entry) -> bool {
        match self {
            Filter::And(fs) => fs.iter().all(|f| f.matches(e)),
            Filter::Or(fs) => fs.iter().any(|f| f.matches(e)),
            Filter::Not(f) => !f.matches(e),
            Filter::Present(a) => e.has(a),
            Filter::Eq(a, v) => e.get_all(a).iter().any(|x| x.eq_ignore_ascii_case(v)),
            Filter::Ge(a, v) => e.get_all(a).iter().any(|x| {
                matches!(
                    cmp_values(x, v),
                    Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
                )
            }),
            Filter::Le(a, v) => e.get_all(a).iter().any(|x| {
                matches!(
                    cmp_values(x, v),
                    Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
                )
            }),
            Filter::Substring(a, parts) => e.get_all(a).iter().any(|x| substring_match(parts, x)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ldif::Dn;

    fn entry() -> Entry {
        let mut e = Entry::new(Dn::parse("cn=x, o=grid").unwrap());
        e.add("objectclass", "GridFTPPerfInfo");
        e.add("hostname", "dpsslx04.lbl.gov");
        e.add("avgrdbandwidth", "6062");
        e.add("dc", "lbl");
        e.add("dc", "gov");
        e
    }

    #[test]
    fn equality_and_presence() {
        let e = entry();
        assert!(parse("(objectclass=GridFTPPerfInfo)").unwrap().matches(&e));
        assert!(parse("(objectclass=gridftpperfinfo)").unwrap().matches(&e));
        assert!(parse("(hostname=*)").unwrap().matches(&e));
        assert!(!parse("(missing=*)").unwrap().matches(&e));
        assert!(!parse("(hostname=other)").unwrap().matches(&e));
    }

    #[test]
    fn numeric_comparisons() {
        let e = entry();
        assert!(parse("(avgrdbandwidth>=5000)").unwrap().matches(&e));
        assert!(!parse("(avgrdbandwidth>=7000)").unwrap().matches(&e));
        assert!(parse("(avgrdbandwidth<=7000)").unwrap().matches(&e));
        // Numeric, not lexical: "999" < "6062".
        assert!(parse("(avgrdbandwidth>=999)").unwrap().matches(&e));
    }

    /// Regression: `partial_cmp(..).unwrap_or(Equal)` made NaN and
    /// non-numeric attribute values satisfy every `>=`/`<=` filter. A
    /// value that is not comparable to the bound must not match.
    #[test]
    fn non_comparable_values_fail_ordering_filters() {
        let mut e = Entry::new(Dn::parse("cn=y, o=grid").unwrap());
        e.add("avgrdbandwidth", "NaN");
        assert!(!parse("(avgrdbandwidth>=1)").unwrap().matches(&e));
        assert!(!parse("(avgrdbandwidth<=1)").unwrap().matches(&e));

        let mut e2 = Entry::new(Dn::parse("cn=z, o=grid").unwrap());
        e2.add("avgrdbandwidth", "unknown");
        // Mixed numeric bound vs non-numeric value: not comparable.
        assert!(!parse("(avgrdbandwidth>=1)").unwrap().matches(&e2));
        assert!(!parse("(avgrdbandwidth<=1)").unwrap().matches(&e2));
        // Two non-numeric values still compare lexically.
        assert!(parse("(avgrdbandwidth>=aaa)").unwrap().matches(&e2));
        assert!(!parse("(avgrdbandwidth<=aaa)").unwrap().matches(&e2));
    }

    #[test]
    fn boolean_combinators() {
        let e = entry();
        assert!(
            parse("(&(objectclass=GridFTPPerfInfo)(avgrdbandwidth>=5000))")
                .unwrap()
                .matches(&e)
        );
        assert!(parse("(|(hostname=nope)(dc=gov))").unwrap().matches(&e));
        assert!(parse("(!(hostname=nope))").unwrap().matches(&e));
        assert!(!parse("(&(dc=lbl)(dc=nope))").unwrap().matches(&e));
    }

    #[test]
    fn multivalued_attributes_match_any() {
        let e = entry();
        assert!(parse("(dc=lbl)").unwrap().matches(&e));
        assert!(parse("(dc=gov)").unwrap().matches(&e));
    }

    #[test]
    fn substring_matching() {
        let e = entry();
        assert!(parse("(hostname=*.lbl.gov)").unwrap().matches(&e));
        assert!(parse("(hostname=dpss*)").unwrap().matches(&e));
        assert!(parse("(hostname=*lbl*)").unwrap().matches(&e));
        assert!(!parse("(hostname=*isi*)").unwrap().matches(&e));
        assert!(parse("(hostname=dpss*gov)").unwrap().matches(&e));
    }

    #[test]
    fn parse_errors() {
        assert!(parse("hostname=x").is_err());
        assert!(parse("(hostname=x").is_err());
        assert!(parse("(&)").is_err());
        assert!(parse("(=x)").is_err());
        assert!(parse("(a>=1)(b<=2)").is_err()); // trailing
    }

    #[test]
    fn display_round_trips() {
        for s in [
            "(objectclass=GridFTPPerfInfo)",
            "(hostname=*)",
            "(avgrdbandwidth>=5000)",
            "(avgrdbandwidth<=7000)",
            "(hostname=dpss*gov)",
            "(hostname=*.lbl.gov)",
            "(&(|(a=1)(b=2))(!(c=3)))",
        ] {
            let f = parse(s).unwrap();
            let rendered = f.to_string();
            assert_eq!(parse(&rendered).unwrap(), f, "round trip of {s}");
            // Rendering is a fixed point: attribute names are already
            // lowercased, whitespace already canonical.
            assert_eq!(parse(&rendered).unwrap().to_string(), rendered);
        }
    }

    #[test]
    fn nested_combinators_parse() {
        let f = parse("(&(|(a=1)(b=2))(!(c=3)))").unwrap();
        match f {
            Filter::And(fs) => {
                assert_eq!(fs.len(), 2);
                assert!(matches!(fs[0], Filter::Or(_)));
                assert!(matches!(fs[1], Filter::Not(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
