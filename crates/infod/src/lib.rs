//! # wanpred-infod
//!
//! The delivery infrastructure (§5): an MDS-2-style information service
//! making transfer statistics and predictions discoverable.
//!
//! * [`ldif`] — LDAP-style entries with DNs, multi-valued attributes and
//!   LDIF serialization (the Figure 6 output format).
//! * [`schema`] — the `GridFTPPerfInfo` / `GridFTPServerInfo` object
//!   classes and entry validation.
//! * [`filter`] — an RFC 2254-subset search-filter language for
//!   inquiries.
//! * [`gris`] — the per-site Grid Resource Information Service with
//!   pluggable, TTL-cached information providers.
//! * [`giis`] — the aggregate index with the soft-state registration
//!   protocol (Figure 5).
//! * [`provider`] — the GridFTP performance provider that digests
//!   transfer logs into statistics and predictions.
//! * [`server_provider`] — static `GridFTPServerInfo` endpoint facts
//!   (URL, port, exported volumes).
//! * [`service`] — the unified [`InquiryService`] surface all directory
//!   services answer through.
//! * [`serve`] — the sharded, snapshot-swapping serving layer with
//!   admission control and the open-loop load generator.
//! * [`error`] — the crate-wide [`Error`] every fallible surface
//!   converges on.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod error;
pub mod filter;
pub mod giis;
pub mod gris;
pub mod ldif;
pub mod provider;
pub mod schema;
pub mod serve;
pub mod server_provider;
pub mod service;

pub use error::{Error, InquiryError};
pub use filter::{parse as parse_filter, Filter, FilterError};
pub use giis::{Directory, Giis, RegisterOutcome, Registration, RegistrationBackoff};
pub use gris::{
    Gris, InfoProvider, Materialized, MaterializedEntry, ProviderError, SnapshotSource,
    STALENESS_ATTR,
};
pub use ldif::{to_ldif_document, Dn, Entry, LdifError};
pub use provider::{GridFtpPerfProvider, LogSource, ProviderConfig};
pub use schema::{Schema, SchemaError, GRIDFTP_PERF_INFO, GRIDFTP_SERVER_INFO};
pub use serve::loadgen::{run_open_loop, OpenLoopConfig, OpenLoopReport};
pub use serve::{AdmissionConfig, ServeConfig, ShardedServer};
pub use server_provider::{ServerInfo, ServerInfoProvider};
pub use service::{
    CacheStatus, InquiryRequest, InquiryResponse, InquiryService, Provenance, ServedBy,
};
