//! The Grid Index Information Service: an aggregate directory fed by
//! soft-state GRIS registrations (Figure 5).
//!
//! A GRIS announces itself to a GIIS with a registration carrying a
//! lifetime; unless renewed before the lifetime lapses, the registration
//! silently expires — the *soft-state* protocol that lets MDS tolerate
//! vanishing resources without explicit deregistration. Inquiries are
//! answered by merging search results from all currently live
//! registrants.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::filter::Filter;
use crate::gris::Gris;
use crate::ldif::Entry;

/// Anything that can answer a filtered inquiry at a point in time: a
/// GRIS, or another GIIS — MDS-2 indexes form hierarchies (Figure 5), so
/// a site GIIS can register into an organizational one.
pub trait Directory: Send {
    /// Entries matching the filter at `now_unix`.
    fn search_dir(&mut self, filter: &Filter, now_unix: u64) -> Vec<Entry>;
}

impl Directory for Gris {
    fn search_dir(&mut self, filter: &Filter, now_unix: u64) -> Vec<Entry> {
        self.search(filter, now_unix)
    }
}

impl Directory for Giis {
    fn search_dir(&mut self, filter: &Filter, now_unix: u64) -> Vec<Entry> {
        self.search(filter, now_unix)
    }
}

/// A soft-state registration message (the wire protocol's payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Registration {
    /// Unique registrant identifier (typically the GRIS host).
    pub id: String,
    /// Seconds the registration stays valid without renewal.
    pub ttl_secs: u64,
}

/// Outcome of processing a registration message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegisterOutcome {
    /// First registration of this id.
    New,
    /// Existing registration refreshed.
    Renewed,
}

struct Registrant {
    dir: Arc<Mutex<dyn Directory>>,
    ttl_secs: u64,
    last_seen: u64,
}

/// A GIIS instance.
pub struct Giis {
    name: String,
    registrants: BTreeMap<String, Registrant>,
}

impl Giis {
    /// Create a named GIIS.
    pub fn new(name: impl Into<String>) -> Self {
        Giis {
            name: name.into(),
            registrants: BTreeMap::new(),
        }
    }

    /// The index's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Process a registration (initial or renewal) from a GRIS.
    pub fn register(
        &mut self,
        msg: Registration,
        gris: Arc<Mutex<Gris>>,
        now_unix: u64,
    ) -> RegisterOutcome {
        self.register_directory(msg, gris, now_unix)
    }

    /// Register any directory — a GRIS or a child GIIS (hierarchical
    /// indexes, Figure 5).
    pub fn register_directory(
        &mut self,
        msg: Registration,
        dir: Arc<Mutex<dyn Directory>>,
        now_unix: u64,
    ) -> RegisterOutcome {
        let outcome = if self.registrants.contains_key(&msg.id) {
            RegisterOutcome::Renewed
        } else {
            RegisterOutcome::New
        };
        self.registrants.insert(
            msg.id,
            Registrant {
                dir,
                ttl_secs: msg.ttl_secs,
                last_seen: now_unix,
            },
        );
        outcome
    }

    /// Renew an existing registration without re-sending the handle.
    /// Returns `false` if the id is unknown (already expired): the GRIS
    /// must then re-register fully, as in MDS.
    pub fn renew(&mut self, id: &str, now_unix: u64) -> bool {
        match self.registrants.get_mut(id) {
            Some(r) => {
                r.last_seen = now_unix;
                true
            }
            None => false,
        }
    }

    /// Drop registrations whose lifetime lapsed; returns how many.
    pub fn expire(&mut self, now_unix: u64) -> usize {
        let before = self.registrants.len();
        self.registrants
            .retain(|_, r| now_unix.saturating_sub(r.last_seen) < r.ttl_secs);
        before - self.registrants.len()
    }

    /// Ids of currently live registrants (after expiry at `now_unix`).
    pub fn live_registrants(&mut self, now_unix: u64) -> Vec<String> {
        self.expire(now_unix);
        self.registrants.keys().cloned().collect()
    }

    /// Answer an inquiry: merge matching entries from every live
    /// registrant (expiring stale ones first).
    pub fn search(&mut self, filter: &Filter, now_unix: u64) -> Vec<Entry> {
        self.expire(now_unix);
        let mut out = Vec::new();
        for r in self.registrants.values() {
            out.extend(r.dir.lock().search_dir(filter, now_unix));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter;
    use crate::gris::InfoProvider;
    use crate::ldif::Dn;

    struct Fixed {
        tag: &'static str,
    }

    impl InfoProvider for Fixed {
        fn name(&self) -> &str {
            self.tag
        }
        fn provide(&mut self, _now: u64) -> Vec<Entry> {
            let mut e = Entry::new(Dn::parse(format!("cn={}, o=grid", self.tag).as_str()).unwrap());
            e.add("site", self.tag);
            vec![e]
        }
    }

    fn gris_with(tag: &'static str) -> Arc<Mutex<Gris>> {
        let mut g = Gris::new(Dn::parse("o=grid").unwrap());
        g.register_provider(Box::new(Fixed { tag }));
        Arc::new(Mutex::new(g))
    }

    #[test]
    fn register_and_search_aggregates() {
        let mut giis = Giis::new("top");
        giis.register(
            Registration {
                id: "lbl".into(),
                ttl_secs: 300,
            },
            gris_with("lbl"),
            0,
        );
        giis.register(
            Registration {
                id: "isi".into(),
                ttl_secs: 300,
            },
            gris_with("isi"),
            0,
        );
        let all = giis.search(&filter::parse("(site=*)").unwrap(), 10);
        assert_eq!(all.len(), 2);
        let lbl = giis.search(&filter::parse("(site=lbl)").unwrap(), 10);
        assert_eq!(lbl.len(), 1);
    }

    #[test]
    fn soft_state_expiry() {
        let mut giis = Giis::new("top");
        giis.register(
            Registration {
                id: "lbl".into(),
                ttl_secs: 60,
            },
            gris_with("lbl"),
            0,
        );
        // Alive just inside the ttl.
        assert_eq!(giis.live_registrants(59), vec!["lbl".to_string()]);
        // Dead at exactly ttl with no renewal.
        assert_eq!(giis.live_registrants(60), Vec::<String>::new());
        // Search after expiry finds nothing.
        assert!(giis
            .search(&filter::parse("(site=*)").unwrap(), 61)
            .is_empty());
    }

    #[test]
    fn renewal_extends_lifetime() {
        let mut giis = Giis::new("top");
        giis.register(
            Registration {
                id: "lbl".into(),
                ttl_secs: 60,
            },
            gris_with("lbl"),
            0,
        );
        assert!(giis.renew("lbl", 50));
        assert_eq!(giis.live_registrants(100).len(), 1);
        // After expiry, renew fails and full re-registration is needed.
        assert_eq!(giis.live_registrants(200).len(), 0);
        assert!(!giis.renew("lbl", 201));
        let outcome = giis.register(
            Registration {
                id: "lbl".into(),
                ttl_secs: 60,
            },
            gris_with("lbl"),
            202,
        );
        assert_eq!(outcome, RegisterOutcome::New);
    }

    #[test]
    fn reregistration_is_renewal_when_live() {
        let mut giis = Giis::new("top");
        let g = gris_with("lbl");
        giis.register(
            Registration {
                id: "lbl".into(),
                ttl_secs: 60,
            },
            g.clone(),
            0,
        );
        let outcome = giis.register(
            Registration {
                id: "lbl".into(),
                ttl_secs: 60,
            },
            g,
            30,
        );
        assert_eq!(outcome, RegisterOutcome::Renewed);
    }

    #[test]
    fn hierarchical_giis_aggregates_child_indexes() {
        // site GIISes each index one GRIS; the organizational GIIS
        // indexes both site GIISes (Figure 5's tree).
        let mut lbl_giis = Giis::new("lbl-site");
        lbl_giis.register(
            Registration {
                id: "lbl-gris".into(),
                ttl_secs: 600,
            },
            gris_with("lbl"),
            0,
        );
        let mut isi_giis = Giis::new("isi-site");
        isi_giis.register(
            Registration {
                id: "isi-gris".into(),
                ttl_secs: 600,
            },
            gris_with("isi"),
            0,
        );
        let mut org = Giis::new("org");
        org.register_directory(
            Registration {
                id: "lbl-site".into(),
                ttl_secs: 600,
            },
            Arc::new(Mutex::new(lbl_giis)),
            0,
        );
        org.register_directory(
            Registration {
                id: "isi-site".into(),
                ttl_secs: 600,
            },
            Arc::new(Mutex::new(isi_giis)),
            0,
        );
        let all = org.search(&filter::parse("(site=*)").unwrap(), 10);
        assert_eq!(all.len(), 2);
        let lbl = org.search(&filter::parse("(site=lbl)").unwrap(), 10);
        assert_eq!(lbl.len(), 1);
        // Expiry cascades naturally: after the ttl the whole subtree is
        // unreachable from the org index.
        assert!(org
            .search(&filter::parse("(site=*)").unwrap(), 700)
            .is_empty());
    }

    #[test]
    fn expire_reports_count() {
        let mut giis = Giis::new("top");
        for (i, tag) in ["a", "b", "c"].iter().enumerate() {
            giis.register(
                Registration {
                    id: (*tag).into(),
                    ttl_secs: 10 * (i as u64 + 1),
                },
                gris_with("lbl"),
                0,
            );
        }
        assert_eq!(giis.expire(15), 1); // "a" (ttl 10) gone
        assert_eq!(giis.expire(25), 1); // "b" (ttl 20) gone
        assert_eq!(giis.expire(25), 0);
    }
}
