//! The Grid Index Information Service: an aggregate directory fed by
//! soft-state GRIS registrations (Figure 5).
//!
//! A GRIS announces itself to a GIIS with a registration carrying a
//! lifetime; unless renewed before the lifetime lapses, the registration
//! silently expires — the *soft-state* protocol that lets MDS tolerate
//! vanishing resources without explicit deregistration. Inquiries are
//! answered by merging search results from all currently live
//! registrants.
//!
//! Registration and inquiry both take `&self`: the registrant table
//! lives behind an internal mutex, so a `Giis` shared through an `Arc`
//! accepts registrations and answers [`InquiryService::inquire`] calls
//! concurrently. Child directories are queried *outside* the table lock,
//! so one slow registrant does not block registrations or other
//! inquiries at the index.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use wanpred_obs::{names, ObsSink};

use crate::error::InquiryError;
use crate::filter::Filter;
use crate::gris::{Gris, STALENESS_ATTR};
use crate::ldif::Entry;
use crate::service::{InquiryRequest, InquiryResponse, InquiryService, Provenance, ServedBy};

/// Anything that can answer a filtered inquiry at a point in time: a
/// GRIS, or another GIIS — MDS-2 indexes form hierarchies (Figure 5), so
/// a site GIIS can register into an organizational one.
///
/// New code should register an [`InquiryService`] handle instead (via
/// [`Giis::register_service`]); this trait remains for callers that still
/// hold `Arc<Mutex<dyn Directory>>` handles.
pub trait Directory: Send {
    /// Entries matching the filter at `now_unix`.
    fn search_dir(&mut self, filter: &Filter, now_unix: u64) -> Vec<Entry>;
}

impl Directory for Gris {
    fn search_dir(&mut self, filter: &Filter, now_unix: u64) -> Vec<Entry> {
        self.inquire(&InquiryRequest::new(filter.clone(), now_unix))
            .map(|r| r.entries)
            .unwrap_or_default()
    }
}

impl Directory for Giis {
    fn search_dir(&mut self, filter: &Filter, now_unix: u64) -> Vec<Entry> {
        self.inquire(&InquiryRequest::new(filter.clone(), now_unix))
            .map(|r| r.entries)
            .unwrap_or_default()
    }
}

/// Per-registrant retry backoff for the soft-state registration
/// protocol: when a GIIS is unreachable (or rejects a registration), the
/// GRIS must not hammer it on a fixed cadence — MDS deployments stagger
/// retries with exponential backoff and *jitter* so that a recovering
/// index is not hit by a synchronized thundering herd.
///
/// The jitter is deterministic: it is derived by hashing `(registrant id,
/// attempt)` (FNV-1a + splitmix64 avalanche, the same derivation idiom as
/// the simulator's `MasterSeed`), so campaigns stay replayable while
/// distinct registrants still spread out.
#[derive(Debug, Clone, PartialEq)]
pub struct RegistrationBackoff {
    /// Delay after the first failure, seconds.
    pub base_secs: u64,
    /// Delay ceiling, seconds.
    pub max_secs: u64,
    /// Jitter half-width as a fraction of the delay (0.25 → ±25%).
    pub jitter: f64,
    consecutive_failures: u32,
}

impl Default for RegistrationBackoff {
    fn default() -> Self {
        RegistrationBackoff::mds_default()
    }
}

impl RegistrationBackoff {
    /// The deployment defaults: 30 s base, 10 min ceiling, ±25% jitter.
    pub fn mds_default() -> Self {
        RegistrationBackoff {
            base_secs: 30,
            max_secs: 600,
            jitter: 0.25,
            consecutive_failures: 0,
        }
    }

    /// Failures since the last success.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// Record a failed registration attempt; returns the seconds to wait
    /// before the next attempt for this registrant.
    pub fn on_failure(&mut self, id: &str) -> u64 {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        self.delay_secs(id)
    }

    /// Record a successful registration: the schedule resets.
    pub fn on_success(&mut self) {
        self.consecutive_failures = 0;
    }

    /// The current delay for a registrant (0 when healthy): exponential
    /// in the failure count, capped, with deterministic jitter.
    pub fn delay_secs(&self, id: &str) -> u64 {
        if self.consecutive_failures == 0 {
            return 0;
        }
        let exp = self.consecutive_failures.saturating_sub(1).min(32);
        let raw = self
            .base_secs
            .saturating_mul(1u64 << exp.min(63))
            .min(self.max_secs);
        let u = jitter_unit(id, self.consecutive_failures);
        let factor = 1.0 - self.jitter + 2.0 * self.jitter * u;
        ((raw as f64 * factor).round() as u64).max(1)
    }
}

/// Deterministic uniform-[0,1) jitter from `(id, attempt)`: FNV-1a over
/// the id folded with the attempt, finished with a splitmix64 avalanche.
fn jitter_unit(id: &str, attempt: u32) -> f64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ (u64::from(attempt).rotate_left(17));
    for b in id.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A soft-state registration message (the wire protocol's payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Registration {
    /// Unique registrant identifier (typically the GRIS host).
    pub id: String,
    /// Seconds the registration stays valid without renewal.
    pub ttl_secs: u64,
}

/// Outcome of processing a registration message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegisterOutcome {
    /// First registration of this id.
    New,
    /// Existing registration refreshed.
    Renewed,
}

/// A registrant's inquiry handle: the modern lock-free service surface,
/// or a legacy mutex-wrapped [`Directory`].
#[derive(Clone)]
enum Handle {
    Service(Arc<dyn InquiryService>),
    Legacy(Arc<Mutex<dyn Directory>>),
}

impl Handle {
    /// Query the child; returns `(entries, max staleness stamp)`.
    /// Legacy directories report no structured staleness, so it is
    /// recovered from the entries' [`STALENESS_ATTR`] stamps.
    fn query(&self, req: &InquiryRequest) -> (Vec<Entry>, u64) {
        match self {
            Handle::Service(svc) => match svc.inquire(req) {
                Ok(resp) => (resp.entries, resp.staleness_secs),
                // A failing child contributes nothing; the merge is
                // best-effort, like MDS answering from reachable sites.
                Err(_) => (Vec::new(), 0),
            },
            Handle::Legacy(dir) => {
                let entries = dir.lock().search_dir(&req.filter, req.now_unix);
                let staleness = entries
                    .iter()
                    .filter_map(|e| e.get(STALENESS_ATTR).and_then(|v| v.parse().ok()))
                    .max()
                    .unwrap_or(0);
                (entries, staleness)
            }
        }
    }
}

struct Registrant {
    handle: Handle,
    ttl_secs: u64,
    last_seen: u64,
}

#[derive(Default)]
struct GiisState {
    registrants: BTreeMap<String, Registrant>,
    /// Whether the index currently accepts registrations (a down GIIS
    /// refuses them; registrants back off and retry).
    available: bool,
    /// Per-registrant retry schedules, kept across registration expiry
    /// so a flapping registrant cannot reset its own backoff.
    backoffs: BTreeMap<String, RegistrationBackoff>,
}

/// A GIIS instance.
pub struct Giis {
    name: String,
    state: Mutex<GiisState>,
    /// Observability sink (null by default).
    obs: ObsSink,
}

impl Giis {
    /// Create a named GIIS.
    pub fn new(name: impl Into<String>) -> Self {
        Giis {
            name: name.into(),
            state: Mutex::new(GiisState {
                registrants: BTreeMap::new(),
                available: true,
                backoffs: BTreeMap::new(),
            }),
            obs: ObsSink::disabled(),
        }
    }

    /// Attach an observability sink: soft-state protocol counters
    /// (registrations, renewals, expirations, refusals, searches) are
    /// emitted through it.
    pub fn set_obs(&mut self, obs: ObsSink) {
        self.obs = obs;
    }

    /// The index's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Mark the index up or down (fault injection / maintenance).
    pub fn set_available(&self, available: bool) {
        self.state.lock().available = available;
    }

    /// Whether the index currently accepts registrations.
    pub fn is_available(&self) -> bool {
        self.state.lock().available
    }

    /// A registrant's current retry delay in seconds (0 when healthy).
    pub fn backoff_delay(&self, id: &str) -> u64 {
        self.state
            .lock()
            .backoffs
            .get(id)
            .map_or(0, |b| b.delay_secs(id))
    }

    /// Process a registration attempt against a possibly-down index.
    /// On success the registrant's backoff resets; on refusal the
    /// per-registrant schedule advances and `Err(delay_secs)` tells the
    /// registrant how long to wait before retrying (exponential, capped,
    /// deterministically jittered — see [`RegistrationBackoff`]).
    pub fn try_register(
        &self,
        msg: Registration,
        dir: Arc<Mutex<dyn Directory>>,
        now_unix: u64,
    ) -> Result<RegisterOutcome, u64> {
        self.try_admit(msg, Handle::Legacy(dir), now_unix)
    }

    /// [`Giis::try_register`] for the modern service surface.
    pub fn try_register_service(
        &self,
        msg: Registration,
        svc: Arc<dyn InquiryService>,
        now_unix: u64,
    ) -> Result<RegisterOutcome, u64> {
        self.try_admit(msg, Handle::Service(svc), now_unix)
    }

    fn try_admit(
        &self,
        msg: Registration,
        handle: Handle,
        now_unix: u64,
    ) -> Result<RegisterOutcome, u64> {
        let id = msg.id.clone();
        let mut st = self.state.lock();
        if !st.available {
            let delay = st.backoffs.entry(id.clone()).or_default().on_failure(&id);
            self.obs.inc(names::INFOD_GIIS_REFUSALS);
            return Err(delay);
        }
        if let Some(b) = st.backoffs.get_mut(&id) {
            b.on_success();
        }
        Ok(self.admit(&mut st, msg, handle, now_unix))
    }

    /// Process a registration (initial or renewal) from a GRIS.
    pub fn register(
        &self,
        msg: Registration,
        gris: Arc<Mutex<Gris>>,
        now_unix: u64,
    ) -> RegisterOutcome {
        self.register_directory(msg, gris, now_unix)
    }

    /// Register any directory — a GRIS or a child GIIS (hierarchical
    /// indexes, Figure 5) — through the legacy mutex-wrapped surface.
    pub fn register_directory(
        &self,
        msg: Registration,
        dir: Arc<Mutex<dyn Directory>>,
        now_unix: u64,
    ) -> RegisterOutcome {
        let mut st = self.state.lock();
        self.admit(&mut st, msg, Handle::Legacy(dir), now_unix)
    }

    /// Register an [`InquiryService`] — the modern surface: the handle is
    /// queried directly, with no wrapping mutex, so concurrent inquiries
    /// at the index fan out to children without serializing on them.
    pub fn register_service(
        &self,
        msg: Registration,
        svc: Arc<dyn InquiryService>,
        now_unix: u64,
    ) -> RegisterOutcome {
        let mut st = self.state.lock();
        self.admit(&mut st, msg, Handle::Service(svc), now_unix)
    }

    fn admit(
        &self,
        st: &mut GiisState,
        msg: Registration,
        handle: Handle,
        now_unix: u64,
    ) -> RegisterOutcome {
        let outcome = if st.registrants.contains_key(&msg.id) {
            self.obs.inc(names::INFOD_GIIS_RENEWALS);
            RegisterOutcome::Renewed
        } else {
            self.obs.inc(names::INFOD_GIIS_REGISTRATIONS);
            RegisterOutcome::New
        };
        st.registrants.insert(
            msg.id,
            Registrant {
                handle,
                ttl_secs: msg.ttl_secs,
                last_seen: now_unix,
            },
        );
        outcome
    }

    /// Renew an existing registration without re-sending the handle.
    /// Returns `false` if the id is unknown (already expired): the GRIS
    /// must then re-register fully, as in MDS.
    pub fn renew(&self, id: &str, now_unix: u64) -> bool {
        match self.state.lock().registrants.get_mut(id) {
            Some(r) => {
                r.last_seen = now_unix;
                true
            }
            None => false,
        }
    }

    /// Drop registrations whose lifetime lapsed; returns how many.
    pub fn expire(&self, now_unix: u64) -> usize {
        let mut st = self.state.lock();
        let before = st.registrants.len();
        st.registrants
            .retain(|_, r| now_unix.saturating_sub(r.last_seen) < r.ttl_secs);
        let expired = before - st.registrants.len();
        if expired > 0 {
            self.obs
                .inc_by(names::INFOD_GIIS_EXPIRATIONS, expired as u64);
        }
        expired
    }

    /// Ids of currently live registrants (after expiry at `now_unix`).
    pub fn live_registrants(&self, now_unix: u64) -> Vec<String> {
        self.expire(now_unix);
        self.state.lock().registrants.keys().cloned().collect()
    }

    /// Answer an inquiry: merge matching entries from every live
    /// registrant (expiring stale ones first).
    #[deprecated(note = "use `InquiryService::inquire`; search() is the pre-service surface")]
    pub fn search(&self, filter: &Filter, now_unix: u64) -> Vec<Entry> {
        self.inquire(&InquiryRequest::new(filter.clone(), now_unix))
            .map(|r| r.entries)
            .unwrap_or_default()
    }
}

impl InquiryService for Giis {
    fn inquire(&self, req: &InquiryRequest) -> Result<InquiryResponse, InquiryError> {
        self.obs.inc(names::INFOD_GIIS_SEARCHES);
        self.expire(req.now_unix);
        // Clone the handles out of the table lock: children are queried
        // without holding it, so a slow registrant cannot block the
        // index's registration path or other inquiries.
        let handles: Vec<Handle> = self
            .state
            .lock()
            .registrants
            .values()
            .map(|r| r.handle.clone())
            .collect();
        let mut entries = Vec::new();
        let mut max_staleness = 0u64;
        for h in &handles {
            let (child_entries, staleness) = h.query(req);
            max_staleness = max_staleness.max(staleness);
            entries.extend(child_entries);
        }
        Ok(InquiryResponse::new(
            entries,
            max_staleness,
            Provenance::direct(ServedBy::Giis),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter;
    use crate::gris::{InfoProvider, ProviderError};
    use crate::ldif::Dn;

    fn search(giis: &Giis, f: &Filter, now: u64) -> Vec<Entry> {
        giis.inquire(&InquiryRequest::new(f.clone(), now))
            .unwrap()
            .entries
    }

    struct Fixed {
        tag: &'static str,
    }

    impl InfoProvider for Fixed {
        fn name(&self) -> &str {
            self.tag
        }
        fn provide(&mut self, _now: u64) -> Result<Vec<Entry>, ProviderError> {
            let mut e = Entry::new(Dn::parse(format!("cn={}, o=grid", self.tag).as_str()).unwrap());
            e.add("site", self.tag);
            Ok(vec![e])
        }
    }

    fn gris_with(tag: &'static str) -> Arc<Mutex<Gris>> {
        let mut g = Gris::new(Dn::parse("o=grid").unwrap());
        g.register_provider(Box::new(Fixed { tag }));
        Arc::new(Mutex::new(g))
    }

    fn gris_service(tag: &'static str) -> Arc<dyn InquiryService> {
        let mut g = Gris::new(Dn::parse("o=grid").unwrap());
        g.register_provider(Box::new(Fixed { tag }));
        Arc::new(g)
    }

    #[test]
    fn register_and_search_aggregates() {
        let giis = Giis::new("top");
        giis.register(
            Registration {
                id: "lbl".into(),
                ttl_secs: 300,
            },
            gris_with("lbl"),
            0,
        );
        giis.register_service(
            Registration {
                id: "isi".into(),
                ttl_secs: 300,
            },
            gris_service("isi"),
            0,
        );
        let all = search(&giis, &filter::parse("(site=*)").unwrap(), 10);
        assert_eq!(all.len(), 2);
        let lbl = search(&giis, &filter::parse("(site=lbl)").unwrap(), 10);
        assert_eq!(lbl.len(), 1);
    }

    #[test]
    fn deprecated_search_shim_matches_inquire() {
        #![allow(deprecated)]
        let giis = Giis::new("top");
        giis.register(
            Registration {
                id: "lbl".into(),
                ttl_secs: 300,
            },
            gris_with("lbl"),
            0,
        );
        let f = filter::parse("(site=lbl)").unwrap();
        assert_eq!(giis.search(&f, 10), search(&giis, &f, 10));
    }

    #[test]
    fn soft_state_expiry() {
        let giis = Giis::new("top");
        giis.register(
            Registration {
                id: "lbl".into(),
                ttl_secs: 60,
            },
            gris_with("lbl"),
            0,
        );
        // Alive just inside the ttl.
        assert_eq!(giis.live_registrants(59), vec!["lbl".to_string()]);
        // Dead at exactly ttl with no renewal.
        assert_eq!(giis.live_registrants(60), Vec::<String>::new());
        // Search after expiry finds nothing.
        assert!(search(&giis, &filter::parse("(site=*)").unwrap(), 61).is_empty());
    }

    #[test]
    fn renewal_extends_lifetime() {
        let giis = Giis::new("top");
        giis.register(
            Registration {
                id: "lbl".into(),
                ttl_secs: 60,
            },
            gris_with("lbl"),
            0,
        );
        assert!(giis.renew("lbl", 50));
        assert_eq!(giis.live_registrants(100).len(), 1);
        // After expiry, renew fails and full re-registration is needed.
        assert_eq!(giis.live_registrants(200).len(), 0);
        assert!(!giis.renew("lbl", 201));
        let outcome = giis.register(
            Registration {
                id: "lbl".into(),
                ttl_secs: 60,
            },
            gris_with("lbl"),
            202,
        );
        assert_eq!(outcome, RegisterOutcome::New);
    }

    #[test]
    fn reregistration_is_renewal_when_live() {
        let giis = Giis::new("top");
        let g = gris_with("lbl");
        giis.register(
            Registration {
                id: "lbl".into(),
                ttl_secs: 60,
            },
            g.clone(),
            0,
        );
        let outcome = giis.register(
            Registration {
                id: "lbl".into(),
                ttl_secs: 60,
            },
            g,
            30,
        );
        assert_eq!(outcome, RegisterOutcome::Renewed);
    }

    #[test]
    fn hierarchical_giis_aggregates_child_indexes() {
        // site GIISes each index one GRIS; the organizational GIIS
        // indexes both site GIISes (Figure 5's tree). The child indexes
        // register as services — no wrapping mutex.
        let lbl_giis = Giis::new("lbl-site");
        lbl_giis.register(
            Registration {
                id: "lbl-gris".into(),
                ttl_secs: 600,
            },
            gris_with("lbl"),
            0,
        );
        let isi_giis = Giis::new("isi-site");
        isi_giis.register(
            Registration {
                id: "isi-gris".into(),
                ttl_secs: 600,
            },
            gris_with("isi"),
            0,
        );
        let org = Giis::new("org");
        org.register_service(
            Registration {
                id: "lbl-site".into(),
                ttl_secs: 600,
            },
            Arc::new(lbl_giis),
            0,
        );
        org.register_service(
            Registration {
                id: "isi-site".into(),
                ttl_secs: 600,
            },
            Arc::new(isi_giis),
            0,
        );
        let all = search(&org, &filter::parse("(site=*)").unwrap(), 10);
        assert_eq!(all.len(), 2);
        let lbl = search(&org, &filter::parse("(site=lbl)").unwrap(), 10);
        assert_eq!(lbl.len(), 1);
        // Expiry cascades naturally: after the ttl the whole subtree is
        // unreachable from the org index.
        assert!(search(&org, &filter::parse("(site=*)").unwrap(), 700).is_empty());
    }

    #[test]
    fn down_index_refuses_with_exponential_jittered_backoff() {
        let giis = Giis::new("top");
        giis.set_available(false);
        let reg = || Registration {
            id: "lbl".into(),
            ttl_secs: 300,
        };
        let d1 = giis.try_register(reg(), gris_with("lbl"), 0).unwrap_err();
        let d2 = giis.try_register(reg(), gris_with("lbl"), 10).unwrap_err();
        let d3 = giis
            .try_register_service(reg(), gris_service("lbl"), 20)
            .unwrap_err();
        // Exponential growth around base 30 with ±25% jitter.
        assert!((23..=38).contains(&d1), "first delay {d1}");
        assert!((45..=75).contains(&d2), "second delay {d2}");
        assert!((90..=150).contains(&d3), "third delay {d3}");
        assert_eq!(giis.backoff_delay("lbl"), d3);
        // Deterministic: a replay produces identical delays.
        let replay = Giis::new("top");
        replay.set_available(false);
        assert_eq!(
            replay.try_register(reg(), gris_with("lbl"), 0).unwrap_err(),
            d1
        );
        // Distinct registrants get decorrelated jitter.
        let other = giis
            .try_register(
                Registration {
                    id: "isi".into(),
                    ttl_secs: 300,
                },
                gris_with("isi"),
                0,
            )
            .unwrap_err();
        assert_ne!(other, d1);
    }

    #[test]
    fn backoff_caps_and_resets_on_success() {
        let mut b = RegistrationBackoff::mds_default();
        let mut last = 0;
        for _ in 0..12 {
            last = b.on_failure("lbl");
        }
        // Capped at max_secs ± jitter.
        assert!(last <= 750, "capped delay {last}");
        assert!(last >= 450, "capped delay {last}");
        b.on_success();
        assert_eq!(b.consecutive_failures(), 0);
        assert_eq!(b.delay_secs("lbl"), 0);

        // And through the Giis: recovery accepts and clears the schedule.
        let giis = Giis::new("top");
        giis.set_available(false);
        let reg = || Registration {
            id: "lbl".into(),
            ttl_secs: 300,
        };
        giis.try_register(reg(), gris_with("lbl"), 0).unwrap_err();
        giis.set_available(true);
        let outcome = giis.try_register(reg(), gris_with("lbl"), 60).unwrap();
        assert_eq!(outcome, RegisterOutcome::New);
        assert_eq!(giis.backoff_delay("lbl"), 0);
        assert_eq!(giis.live_registrants(100), vec!["lbl".to_string()]);
    }

    #[test]
    fn expire_reports_count() {
        let giis = Giis::new("top");
        for (i, tag) in ["a", "b", "c"].iter().enumerate() {
            giis.register(
                Registration {
                    id: (*tag).into(),
                    ttl_secs: 10 * (i as u64 + 1),
                },
                gris_with("lbl"),
                0,
            );
        }
        assert_eq!(giis.expire(15), 1); // "a" (ttl 10) gone
        assert_eq!(giis.expire(25), 1); // "b" (ttl 20) gone
        assert_eq!(giis.expire(25), 0);
    }

    #[test]
    fn failing_service_child_degrades_to_best_effort_merge() {
        struct Failing;
        impl InquiryService for Failing {
            fn inquire(&self, _req: &InquiryRequest) -> Result<InquiryResponse, InquiryError> {
                Err(InquiryError::Overloaded {
                    queued: 1,
                    limit: 0,
                })
            }
        }
        let giis = Giis::new("top");
        giis.register_service(
            Registration {
                id: "dead".into(),
                ttl_secs: 300,
            },
            Arc::new(Failing),
            0,
        );
        giis.register_service(
            Registration {
                id: "live".into(),
                ttl_secs: 300,
            },
            gris_service("lbl"),
            0,
        );
        // The index still answers from the reachable child.
        let all = search(&giis, &filter::parse("(site=*)").unwrap(), 10);
        assert_eq!(all.len(), 1);
    }
}
