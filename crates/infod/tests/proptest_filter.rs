//! Property tests for the LDAP-filter subset and LDIF layer.

use proptest::prelude::*;
use wanpred_infod::{parse_filter, Dn, Entry, Filter};

fn arb_attr() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z][a-z0-9]{0,15}")
        .expect("valid regex")
        .prop_filter("dn is reserved", |a| a != "dn")
}

fn arb_value() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z0-9._/-]{1,24}").expect("valid regex")
}

fn arb_entry() -> impl Strategy<Value = Entry> {
    prop::collection::vec((arb_attr(), arb_value()), 1..12).prop_map(|kvs| {
        let mut e = Entry::new(Dn::parse("cn=test, o=grid").expect("const"));
        for (k, v) in kvs {
            e.add(&k, v);
        }
        e
    })
}

/// Render a filter back to its string form.
fn render(f: &Filter) -> String {
    match f {
        Filter::And(fs) => format!("(&{})", fs.iter().map(render).collect::<String>()),
        Filter::Or(fs) => format!("(|{})", fs.iter().map(render).collect::<String>()),
        Filter::Not(f) => format!("(!{})", render(f)),
        Filter::Present(a) => format!("({a}=*)"),
        Filter::Eq(a, v) => format!("({a}={v})"),
        Filter::Ge(a, v) => format!("({a}>={v})"),
        Filter::Le(a, v) => format!("({a}<={v})"),
        Filter::Substring(a, parts) => format!("({a}={})", parts.join("*")),
    }
}

fn arb_filter() -> impl Strategy<Value = Filter> {
    let leaf = prop_oneof![
        arb_attr().prop_map(Filter::Present),
        (arb_attr(), arb_value()).prop_map(|(a, v)| Filter::Eq(a, v)),
        (arb_attr(), (0u32..100_000).prop_map(|n| n.to_string()))
            .prop_map(|(a, v)| Filter::Ge(a, v)),
        (arb_attr(), (0u32..100_000).prop_map(|n| n.to_string()))
            .prop_map(|(a, v)| Filter::Le(a, v)),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(Filter::And),
            prop::collection::vec(inner.clone(), 1..4).prop_map(Filter::Or),
            inner.prop_map(|f| Filter::Not(Box::new(f))),
        ]
    })
}

proptest! {
    /// Any filter we can represent round-trips through its string form.
    #[test]
    fn filter_roundtrips_through_parser(f in arb_filter()) {
        let s = render(&f);
        let parsed = parse_filter(&s).unwrap_or_else(|e| panic!("{s}: {e}"));
        prop_assert_eq!(parsed, f);
    }

    /// De Morgan: !(a & b) matches exactly when (!a | !b) does.
    #[test]
    fn de_morgan_holds(e in arb_entry(), a in arb_filter(), b in arb_filter()) {
        let not_and = Filter::Not(Box::new(Filter::And(vec![a.clone(), b.clone()])));
        let or_nots = Filter::Or(vec![
            Filter::Not(Box::new(a)),
            Filter::Not(Box::new(b)),
        ]);
        prop_assert_eq!(not_and.matches(&e), or_nots.matches(&e));
    }

    /// Double negation is the identity.
    #[test]
    fn double_negation(e in arb_entry(), f in arb_filter()) {
        let nn = Filter::Not(Box::new(Filter::Not(Box::new(f.clone()))));
        prop_assert_eq!(nn.matches(&e), f.matches(&e));
    }

    /// Presence is implied by any equality match.
    #[test]
    fn equality_implies_presence(e in arb_entry(), a in arb_attr(), v in arb_value()) {
        let eq = Filter::Eq(a.clone(), v);
        if eq.matches(&e) {
            prop_assert!(Filter::Present(a).matches(&e));
        }
    }

    /// LDIF round-trips arbitrary entries.
    #[test]
    fn ldif_roundtrips(e in arb_entry()) {
        let text = e.to_ldif();
        let back = Entry::from_ldif(&text).unwrap();
        prop_assert_eq!(back, e);
    }

    /// The parser never panics on arbitrary printable input.
    #[test]
    fn parser_total_on_garbage(s in "[ -~]{0,128}") {
        let _ = parse_filter(&s);
    }
}
