//! The per-transfer log record — the schema of the paper's Figure 3.
//!
//! One record is written for every file transfer a GridFTP server
//! performs: source address, file name and size, logical volume, start and
//! end timestamps, total time, aggregate bandwidth, operation direction,
//! stream count and TCP buffer size. The end-to-end bandwidth definition
//! is the paper's: `BW = file size / transfer time` — the whole transfer
//! function including storage and protocol overheads, not just wire time.

use serde::{Deserialize, Serialize};

/// Direction of a transfer from the *server's* point of view.
///
/// `Read` = the server read the file from its disk and sent it (a client
/// `get`); `Write` = the server stored an incoming file (a client `put`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operation {
    /// Server-side read (client retrieval).
    Read,
    /// Server-side write (client store).
    Write,
}

impl Operation {
    /// The ULM token for this operation.
    pub fn as_str(self) -> &'static str {
        match self {
            Operation::Read => "Read",
            Operation::Write => "Write",
        }
    }

    /// Parse a ULM token.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "Read" | "read" | "RETR" => Some(Operation::Read),
            "Write" | "write" | "STOR" => Some(Operation::Write),
            _ => None,
        }
    }
}

/// One transfer-log entry (Figure 3 of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferRecord {
    /// Address of the remote endpoint (the paper logs the source IP).
    pub source: String,
    /// Hostname of the server that wrote the record.
    pub host: String,
    /// Absolute path of the transferred file.
    pub file_name: String,
    /// File size in bytes.
    pub file_size: u64,
    /// Logical volume the file was moved to/from.
    pub volume: String,
    /// Transfer start, Unix seconds.
    pub start_unix: u64,
    /// Transfer end, Unix seconds.
    pub end_unix: u64,
    /// Total elapsed transfer time in seconds, with sub-second precision
    /// (the paper's logs round to whole seconds; we retain milliseconds so
    /// 1 MB transfers don't divide by zero).
    pub total_time_s: f64,
    /// Number of parallel data streams used.
    pub streams: u32,
    /// Per-stream TCP buffer size in bytes.
    pub tcp_buffer: u64,
    /// Operation direction.
    pub operation: Operation,
}

/// A structural inconsistency in a [`TransferRecord`], found by
/// [`TransferRecord::validate`]. Each variant carries the offending
/// values so callers can report or quarantine without re-deriving them.
#[derive(Debug, Clone, PartialEq)]
pub enum ValidateError {
    /// The end timestamp is earlier than the start timestamp.
    EndPrecedesStart {
        /// Transfer start, Unix seconds.
        start: u64,
        /// Transfer end, Unix seconds.
        end: u64,
    },
    /// The total time is NaN, infinite, or negative.
    BadTotalTime(f64),
    /// The total time disagrees with the start/end stamps beyond rounding.
    TimeInconsistent {
        /// The recorded elapsed time in seconds.
        total_time_s: f64,
        /// The span implied by the timestamps, `end - start`, in seconds.
        span_s: f64,
    },
    /// The record claims zero parallel streams.
    ZeroStreams,
}

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidateError::EndPrecedesStart { start, end } => {
                write!(f, "end {end} precedes start {start}")
            }
            ValidateError::BadTotalTime(t) => write!(f, "bad total time {t}"),
            ValidateError::TimeInconsistent {
                total_time_s,
                span_s,
            } => {
                write!(
                    f,
                    "total time {total_time_s} inconsistent with stamps ({span_s})"
                )
            }
            ValidateError::ZeroStreams => write!(f, "zero streams"),
        }
    }
}

impl std::error::Error for ValidateError {}

impl TransferRecord {
    /// End-to-end bandwidth in KB/s (1 KB = 1000 bytes, matching
    /// Figure 3: 10_240_000 bytes / 4 s = 2560 KB/s).
    pub fn bandwidth_kbs(&self) -> f64 {
        if self.total_time_s <= 0.0 {
            return 0.0;
        }
        self.file_size as f64 / self.total_time_s / 1_000.0
    }

    /// End-to-end bandwidth in MB/s (1 MB = 10^6 bytes).
    pub fn bandwidth_mbs(&self) -> f64 {
        self.bandwidth_kbs() / 1_000.0
    }

    /// Basic internal consistency checks; returns the first violation,
    /// if any, as a typed [`ValidateError`].
    pub fn validate(&self) -> Result<(), ValidateError> {
        if self.end_unix < self.start_unix {
            return Err(ValidateError::EndPrecedesStart {
                start: self.start_unix,
                end: self.end_unix,
            });
        }
        if !self.total_time_s.is_finite() || self.total_time_s < 0.0 {
            return Err(ValidateError::BadTotalTime(self.total_time_s));
        }
        // total_time must be consistent with the stamps within rounding.
        let span = (self.end_unix - self.start_unix) as f64;
        if (self.total_time_s - span).abs() > 1.5 {
            return Err(ValidateError::TimeInconsistent {
                total_time_s: self.total_time_s,
                span_s: span,
            });
        }
        if self.streams == 0 {
            return Err(ValidateError::ZeroStreams);
        }
        Ok(())
    }
}

/// Builder for [`TransferRecord`] used by the instrumentation layer.
#[derive(Debug, Clone, Default)]
pub struct TransferRecordBuilder {
    source: Option<String>,
    host: Option<String>,
    file_name: Option<String>,
    file_size: Option<u64>,
    volume: Option<String>,
    start_unix: Option<u64>,
    end_unix: Option<u64>,
    total_time_s: Option<f64>,
    streams: Option<u32>,
    tcp_buffer: Option<u64>,
    operation: Option<Operation>,
}

macro_rules! setter {
    ($name:ident, $ty:ty) => {
        /// Set this field.
        pub fn $name(mut self, v: $ty) -> Self {
            self.$name = Some(v);
            self
        }
    };
}

impl TransferRecordBuilder {
    /// Start an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    setter!(file_size, u64);
    setter!(start_unix, u64);
    setter!(end_unix, u64);
    setter!(total_time_s, f64);
    setter!(streams, u32);
    setter!(tcp_buffer, u64);
    setter!(operation, Operation);

    /// Set the remote endpoint address.
    pub fn source(mut self, v: impl Into<String>) -> Self {
        self.source = Some(v.into());
        self
    }

    /// Set the logging server's hostname.
    pub fn host(mut self, v: impl Into<String>) -> Self {
        self.host = Some(v.into());
        self
    }

    /// Set the file path.
    pub fn file_name(mut self, v: impl Into<String>) -> Self {
        self.file_name = Some(v.into());
        self
    }

    /// Set the logical volume.
    pub fn volume(mut self, v: impl Into<String>) -> Self {
        self.volume = Some(v.into());
        self
    }

    /// Finish, failing with the name of the first missing field.
    pub fn build(self) -> Result<TransferRecord, &'static str> {
        let r = TransferRecord {
            source: self.source.ok_or("source")?,
            host: self.host.ok_or("host")?,
            file_name: self.file_name.ok_or("file_name")?,
            file_size: self.file_size.ok_or("file_size")?,
            volume: self.volume.ok_or("volume")?,
            start_unix: self.start_unix.ok_or("start_unix")?,
            end_unix: self.end_unix.ok_or("end_unix")?,
            total_time_s: self.total_time_s.ok_or("total_time_s")?,
            streams: self.streams.ok_or("streams")?,
            tcp_buffer: self.tcp_buffer.ok_or("tcp_buffer")?,
            operation: self.operation.ok_or("operation")?,
        };
        Ok(r)
    }
}

/// A convenient fully-populated sample record (Figure 3's first row).
pub fn sample_record() -> TransferRecord {
    TransferRecordBuilder::new()
        .source("140.221.65.69")
        .host("dpsslx04.lbl.gov")
        .file_name("/home/ftp/vazhkuda/10MB")
        .file_size(10_240_000)
        .volume("/home/ftp")
        .start_unix(998_988_165)
        .end_unix(998_988_169)
        .total_time_s(4.0)
        .streams(8)
        .tcp_buffer(1_000_000)
        .operation(Operation::Read)
        .build()
        .expect("all fields set")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_bandwidth_matches() {
        let r = sample_record();
        assert!((r.bandwidth_kbs() - 2560.0).abs() < 1e-9);
        assert!((r.bandwidth_mbs() - 2.56).abs() < 1e-9);
    }

    #[test]
    fn builder_reports_missing_field() {
        let err = TransferRecordBuilder::new()
            .source("x")
            .build()
            .unwrap_err();
        assert_eq!(err, "host");
    }

    #[test]
    fn validate_accepts_sample() {
        assert!(sample_record().validate().is_ok());
    }

    #[test]
    fn validate_rejects_time_travel() {
        let mut r = sample_record();
        r.end_unix = r.start_unix - 1;
        assert_eq!(
            r.validate(),
            Err(ValidateError::EndPrecedesStart {
                start: r.start_unix,
                end: r.end_unix,
            })
        );
    }

    #[test]
    fn validate_rejects_inconsistent_total_time() {
        let mut r = sample_record();
        r.total_time_s = 100.0;
        assert_eq!(
            r.validate(),
            Err(ValidateError::TimeInconsistent {
                total_time_s: 100.0,
                span_s: 4.0,
            })
        );
    }

    #[test]
    fn validate_rejects_non_finite_total_time() {
        let mut r = sample_record();
        r.total_time_s = f64::NAN;
        assert!(matches!(r.validate(), Err(ValidateError::BadTotalTime(_))));
    }

    #[test]
    fn validate_rejects_zero_streams() {
        let mut r = sample_record();
        r.streams = 0;
        assert_eq!(r.validate(), Err(ValidateError::ZeroStreams));
    }

    #[test]
    fn validate_error_messages_describe_the_violation() {
        let mut r = sample_record();
        r.streams = 0;
        let err = r.validate().unwrap_err();
        assert_eq!(err.to_string(), "zero streams");
        let err: Box<dyn std::error::Error> = Box::new(err);
        assert_eq!(err.to_string(), "zero streams");
    }

    #[test]
    fn zero_time_bandwidth_is_zero_not_nan() {
        let mut r = sample_record();
        r.total_time_s = 0.0;
        assert_eq!(r.bandwidth_kbs(), 0.0);
    }

    #[test]
    fn operation_tokens_roundtrip() {
        assert_eq!(Operation::parse("Read"), Some(Operation::Read));
        assert_eq!(Operation::parse("STOR"), Some(Operation::Write));
        assert_eq!(Operation::parse("bogus"), None);
        assert_eq!(Operation::Read.as_str(), "Read");
    }

    #[test]
    fn serde_json_roundtrip() {
        let r = sample_record();
        let s = serde_json::to_string(&r).unwrap();
        let back: TransferRecord = serde_json::from_str(&s).unwrap();
        assert_eq!(r, back);
    }
}
