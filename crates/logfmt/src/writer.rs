//! A rotating on-disk log writer: the NetLogger strategy from §3
//! ("flush the logs to persistent storage and restart logging") as a
//! streaming component — hardened for crashes.
//!
//! The writer appends ULM lines to an *active* file; when the active
//! file reaches the configured entry limit, it is renamed to a numbered
//! archive segment (`<stem>.1.ulm`, `<stem>.2.ulm`, …) and a fresh
//! active file starts. Readers that want full history concatenate the
//! archives; predictors that only want recent data read the active file.
//!
//! Durability contract (see DESIGN.md § "Durability and degraded mode"):
//!
//! * Rotation and whole-file writes go through [`atomic_write`]'s
//!   tmp-file + fsync + rename protocol; a crash leaves either the old
//!   state or the new one, never a half-written file.
//! * [`RotatingLogWriter::open`] first adopts or discards leftover
//!   `.tmp` files, then *salvages* the active file: a torn tail (crash
//!   mid-`append`) or any other damaged line is moved to the quarantine
//!   file (`<stem>.quarantine`, annotated with line number and reason)
//!   and the active file is atomically rewritten to the last good
//!   record. Reopening is therefore always possible.
//! * With [`RotationConfig::checksums`] on (the default), every line
//!   carries a CRC trailer ([`crate::integrity`]) so salvage can reject
//!   damaged-but-parsable lines, not just torn ones.

use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::integrity;
use crate::log::{LogError, TransferLog};
use crate::record::TransferRecord;
use crate::salvage::{salvage_doc, SalvageOptions, SalvageReport};
use crate::ulm;

/// Configuration of a rotating writer.
#[derive(Debug, Clone)]
pub struct RotationConfig {
    /// Entries per segment before rotation.
    pub max_entries: usize,
    /// Append a CRC integrity trailer to every line (backward compatible:
    /// readers without trailer support ignore the extra keyword).
    pub checksums: bool,
}

impl Default for RotationConfig {
    fn default() -> Self {
        RotationConfig {
            max_entries: 10_000,
            checksums: true,
        }
    }
}

impl RotationConfig {
    /// Default config with an explicit rotation limit.
    pub fn with_max_entries(max_entries: usize) -> Self {
        RotationConfig {
            max_entries,
            ..RotationConfig::default()
        }
    }
}

/// The tmp-file twin of `path` used by [`atomic_write`].
fn tmp_path(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("atomic");
    path.with_file_name(format!("{name}.tmp"))
}

/// Write `contents` to `path` atomically: write a tmp twin, fsync it,
/// rename over the destination. A crash at any point leaves either the
/// old file or the complete new one.
pub fn atomic_write(path: &Path, contents: &str) -> io::Result<()> {
    let tmp = tmp_path(path);
    {
        let mut w = BufWriter::new(File::create(&tmp)?);
        w.write_all(contents.as_bytes())?;
        w.flush()?;
        w.get_ref().sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// The rotating ULM log writer.
pub struct RotatingLogWriter {
    /// Active file path, e.g. `/var/log/gridftp/transfers.ulm`.
    active_path: PathBuf,
    cfg: RotationConfig,
    out: BufWriter<File>,
    entries_in_active: usize,
    segments: usize,
    /// What the salvage pass found (and quarantined) on open.
    open_report: SalvageReport,
}

impl RotatingLogWriter {
    /// Open (creating or appending to) the active file. Leftover `.tmp`
    /// files from an interrupted atomic write are adopted or discarded,
    /// the active file is salvaged (torn tails and damaged lines move to
    /// the quarantine file), and pre-existing records count toward the
    /// rotation limit.
    pub fn open(active_path: impl Into<PathBuf>, cfg: RotationConfig) -> Result<Self, LogError> {
        assert!(cfg.max_entries > 0, "rotation limit must be positive");
        let active_path = active_path.into();
        if let Some(dir) = active_path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        Self::recover_tmp_files(&active_path)?;
        let segments = Self::existing_segments(&active_path);
        let (entries_in_active, open_report) = Self::recover_active(&active_path, &cfg)?;
        let out = BufWriter::new(
            OpenOptions::new()
                .create(true)
                .append(true)
                .open(&active_path)?,
        );
        Ok(RotatingLogWriter {
            active_path,
            cfg,
            out,
            entries_in_active,
            segments,
            open_report,
        })
    }

    /// Finish (or roll back) atomic writes a crash interrupted: a `.tmp`
    /// whose final file exists is stale and dropped; one whose final file
    /// is missing is incomplete by definition (rename is the commit
    /// point) and also dropped.
    fn recover_tmp_files(active: &Path) -> Result<(), LogError> {
        let leftover = tmp_path(active);
        if leftover.exists() {
            std::fs::remove_file(&leftover)?;
        }
        let mut n = 1;
        loop {
            let seg = Self::segment_path(active, n);
            let seg_tmp = tmp_path(&seg);
            if seg_tmp.exists() {
                std::fs::remove_file(&seg_tmp)?;
            } else if !seg.exists() {
                break;
            }
            n += 1;
        }
        Ok(())
    }

    /// Salvage the active file: keep intact records, append everything
    /// else to the quarantine file, and truncate (atomically rewrite) the
    /// active file to the kept records. Returns the kept count.
    fn recover_active(
        active: &Path,
        cfg: &RotationConfig,
    ) -> Result<(usize, SalvageReport), LogError> {
        let doc = match std::fs::read_to_string(active) {
            Ok(d) => d,
            Err(_) => return Ok((0, SalvageReport::default())),
        };
        let (log, report) = salvage_doc(&doc, &SalvageOptions::default());
        if report.is_clean() {
            return Ok((log.len(), report));
        }
        Self::append_quarantine(&Self::quarantine_path_for(active), &report)?;
        let mut clean = String::new();
        for r in log.records() {
            clean.push_str(&Self::encode_line(r, cfg));
            clean.push('\n');
        }
        atomic_write(active, &clean)?;
        Ok((log.len(), report))
    }

    fn encode_line(r: &TransferRecord, cfg: &RotationConfig) -> String {
        let line = ulm::encode(r);
        if cfg.checksums {
            integrity::append_crc(&line)
        } else {
            line
        }
    }

    fn append_quarantine(path: &Path, report: &SalvageReport) -> Result<(), LogError> {
        let mut out = BufWriter::new(OpenOptions::new().create(true).append(true).open(path)?);
        for q in &report.quarantined {
            writeln!(out, "# line {}: {}", q.line, q.reason)?;
            writeln!(out, "{}", q.content)?;
        }
        out.flush()?;
        Ok(())
    }

    fn quarantine_path_for(active: &Path) -> PathBuf {
        let stem = active
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("transfers");
        active.with_file_name(format!("{stem}.quarantine"))
    }

    fn segment_path(active: &Path, n: usize) -> PathBuf {
        let stem = active
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("transfers");
        let ext = active.extension().and_then(|s| s.to_str()).unwrap_or("ulm");
        active.with_file_name(format!("{stem}.{n}.{ext}"))
    }

    fn existing_segments(active: &Path) -> usize {
        let mut n = 0;
        while Self::segment_path(active, n + 1).exists() {
            n += 1;
        }
        n
    }

    /// Where damaged lines salvaged from the active file end up.
    pub fn quarantine_path(&self) -> PathBuf {
        Self::quarantine_path_for(&self.active_path)
    }

    /// What the salvage pass at [`RotatingLogWriter::open`] kept and
    /// quarantined (clean when the active file was intact or absent).
    pub fn open_report(&self) -> &SalvageReport {
        &self.open_report
    }

    /// Append one record, rotating first if the active file is full.
    pub fn append(&mut self, r: &TransferRecord) -> Result<(), LogError> {
        if self.entries_in_active >= self.cfg.max_entries {
            self.rotate()?;
        }
        writeln!(self.out, "{}", Self::encode_line(r, &self.cfg))?;
        self.entries_in_active += 1;
        Ok(())
    }

    /// Force a rotation: flush + fsync, archive the active file via an
    /// atomic rename, start fresh. A no-op when the active file is empty.
    pub fn rotate(&mut self) -> Result<(), LogError> {
        if self.entries_in_active == 0 {
            return Ok(());
        }
        self.out.flush()?;
        self.out.get_ref().sync_all()?;
        let seg = Self::segment_path(&self.active_path, self.segments + 1);
        std::fs::rename(&self.active_path, &seg)?;
        self.segments += 1;
        self.out = BufWriter::new(
            OpenOptions::new()
                .create(true)
                .append(true)
                .open(&self.active_path)?,
        );
        self.entries_in_active = 0;
        Ok(())
    }

    /// Flush buffered lines to disk.
    pub fn flush(&mut self) -> Result<(), LogError> {
        self.out.flush()?;
        Ok(())
    }

    /// Number of archived segments.
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// Entries currently in the active file.
    pub fn active_entries(&self) -> usize {
        self.entries_in_active
    }

    /// Load the *full* history: all archive segments in order followed
    /// by the active file, through the salvage decoder (damage in any
    /// segment costs only the damaged lines, never the load).
    pub fn load_all(&mut self) -> Result<TransferLog, LogError> {
        Ok(self.load_all_salvaged()?.0)
    }

    /// Like [`RotatingLogWriter::load_all`], also returning the combined
    /// salvage report (line numbers are local to each segment).
    pub fn load_all_salvaged(&mut self) -> Result<(TransferLog, SalvageReport), LogError> {
        self.flush()?;
        let mut log = TransferLog::new();
        let mut report = SalvageReport::default();
        for n in 1..=self.segments {
            let seg = Self::segment_path(&self.active_path, n);
            let doc = std::fs::read_to_string(&seg)?;
            let (part, part_report) = salvage_doc(&doc, &SalvageOptions::default());
            for r in part.records() {
                log.append(r.clone());
            }
            report.merge(part_report);
        }
        if self.active_path.exists() {
            let doc = std::fs::read_to_string(&self.active_path)?;
            let (part, part_report) = salvage_doc(&doc, &SalvageOptions::default());
            for r in part.records() {
                log.append(r.clone());
            }
            report.merge(part_report);
        }
        Ok((log, report))
    }

    /// Load only the active (post-flush) window — what a NetLogger-style
    /// predictor consumes after a restart. Salvaging, like
    /// [`RotatingLogWriter::load_all`].
    pub fn load_active(&mut self) -> Result<TransferLog, LogError> {
        self.flush()?;
        if self.active_path.exists() {
            let doc = std::fs::read_to_string(&self.active_path)?;
            Ok(salvage_doc(&doc, &SalvageOptions::default()).0)
        } else {
            Ok(TransferLog::new())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::sample_record;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("wanpred-writer-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn rec(i: u64) -> TransferRecord {
        let mut r = sample_record();
        r.start_unix = 1_000 + i;
        r.end_unix = r.start_unix + 4;
        r
    }

    #[test]
    fn rotation_at_limit() {
        let dir = tmpdir("rotate");
        let path = dir.join("transfers.ulm");
        let mut w = RotatingLogWriter::open(&path, RotationConfig::with_max_entries(3)).unwrap();
        for i in 0..7 {
            w.append(&rec(i)).unwrap();
        }
        // 7 entries with limit 3: two archived segments (3+3) + 1 active.
        assert_eq!(w.segments(), 2);
        assert_eq!(w.active_entries(), 1);
        assert!(dir.join("transfers.1.ulm").exists());
        assert!(dir.join("transfers.2.ulm").exists());
        let all = w.load_all().unwrap();
        assert_eq!(all.len(), 7);
        // Order preserved across segments.
        let starts: Vec<u64> = all.records().iter().map(|r| r.start_unix).collect();
        assert_eq!(starts, (1_000..1_007).collect::<Vec<_>>());
        let active = w.load_active().unwrap();
        assert_eq!(active.len(), 1);
        assert_eq!(active.records()[0].start_unix, 1_006);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_counts_existing_entries_and_segments() {
        let dir = tmpdir("reopen");
        let path = dir.join("t.ulm");
        {
            let mut w =
                RotatingLogWriter::open(&path, RotationConfig::with_max_entries(2)).unwrap();
            for i in 0..3 {
                w.append(&rec(i)).unwrap();
            }
            w.flush().unwrap();
        }
        // Re-open: 1 segment archived, 1 active entry.
        let mut w = RotatingLogWriter::open(&path, RotationConfig::with_max_entries(2)).unwrap();
        assert_eq!(w.segments(), 1);
        assert_eq!(w.active_entries(), 1);
        assert!(w.open_report().is_clean());
        w.append(&rec(3)).unwrap();
        w.append(&rec(4)).unwrap(); // triggers rotation (limit 2)
        assert_eq!(w.segments(), 2);
        assert_eq!(w.load_all().unwrap().len(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_after_torn_final_line_recovers() {
        // Regression: a crash mid-append leaves a partial final line; the
        // old open() counted it as an entry and load_all() then refused
        // the whole log with LogError::Parse.
        let dir = tmpdir("torn");
        let path = dir.join("t.ulm");
        {
            let mut w = RotatingLogWriter::open(&path, RotationConfig::default()).unwrap();
            for i in 0..3 {
                w.append(&rec(i)).unwrap();
            }
            w.flush().unwrap();
        }
        // Simulate the crash: append a partial line with no newline.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "SRC=1.2.3.4 HOST=h FI").unwrap();
        }
        let mut w = RotatingLogWriter::open(&path, RotationConfig::default()).unwrap();
        assert_eq!(w.active_entries(), 3, "torn tail must not count");
        assert_eq!(w.open_report().kept, 3);
        assert_eq!(w.open_report().quarantined.len(), 1);
        // The torn prefix landed in the quarantine file.
        let q = std::fs::read_to_string(w.quarantine_path()).unwrap();
        assert!(q.contains("SRC=1.2.3.4 HOST=h FI"), "{q}");
        assert!(q.contains("# line 4:"), "{q}");
        // The log loads, appends keep working, and the record count is
        // exactly the intact history.
        w.append(&rec(3)).unwrap();
        let all = w.load_all().unwrap();
        assert_eq!(all.len(), 4);
        let starts: Vec<u64> = all.records().iter().map(|r| r.start_unix).collect();
        assert_eq!(starts, vec![1_000, 1_001, 1_002, 1_003]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checksummed_lines_catch_bit_rot_on_load() {
        let dir = tmpdir("bitrot");
        let path = dir.join("t.ulm");
        let mut w = RotatingLogWriter::open(&path, RotationConfig::default()).unwrap();
        for i in 0..4 {
            w.append(&rec(i)).unwrap();
        }
        w.flush().unwrap();
        // Flip a digit inside the second line's SIZE field on disk.
        let doc = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = doc.lines().map(str::to_string).collect();
        lines[1] = lines[1].replacen("START=1001", "START=1091", 1);
        std::fs::write(&path, format!("{}\n", lines.join("\n"))).unwrap();

        let (log, report) = w.load_all_salvaged().unwrap();
        assert_eq!(log.len(), 3, "the rotted line must be dropped");
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(
            report.quarantined[0].reason,
            crate::salvage::SalvageReason::ChecksumMismatch
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn leftover_tmp_files_are_discarded_on_open() {
        let dir = tmpdir("tmpfiles");
        let path = dir.join("t.ulm");
        {
            let mut w = RotatingLogWriter::open(&path, RotationConfig::default()).unwrap();
            w.append(&rec(0)).unwrap();
            w.flush().unwrap();
        }
        // A crashed atomic write left tmp twins behind.
        std::fs::write(dir.join("t.ulm.tmp"), "half-written").unwrap();
        std::fs::write(dir.join("t.1.ulm.tmp"), "half-rotated").unwrap();
        let mut w = RotatingLogWriter::open(&path, RotationConfig::default()).unwrap();
        assert!(!dir.join("t.ulm.tmp").exists());
        assert!(!dir.join("t.1.ulm.tmp").exists());
        assert_eq!(w.segments(), 0);
        assert_eq!(w.load_all().unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_unchecksummed_logs_still_load() {
        let dir = tmpdir("legacy");
        let path = dir.join("t.ulm");
        {
            let cfg = RotationConfig {
                checksums: false,
                ..RotationConfig::default()
            };
            let mut w = RotatingLogWriter::open(&path, cfg).unwrap();
            for i in 0..3 {
                w.append(&rec(i)).unwrap();
            }
            w.flush().unwrap();
        }
        let doc = std::fs::read_to_string(&path).unwrap();
        assert!(!doc.contains("CRC="), "legacy mode must not seal lines");
        // A checksummed writer reopens the legacy file fine.
        let mut w = RotatingLogWriter::open(&path, RotationConfig::default()).unwrap();
        assert_eq!(w.active_entries(), 3);
        assert_eq!(w.load_all().unwrap().len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manual_rotate_and_empty_noop() {
        let dir = tmpdir("manual");
        let path = dir.join("t.ulm");
        let mut w = RotatingLogWriter::open(&path, RotationConfig::default()).unwrap();
        // Rotating an empty active file does nothing.
        w.rotate().unwrap();
        assert_eq!(w.segments(), 0);
        w.append(&rec(0)).unwrap();
        w.rotate().unwrap();
        assert_eq!(w.segments(), 1);
        assert_eq!(w.active_entries(), 0);
        assert_eq!(w.load_all().unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_write_replaces_contents() {
        let dir = tmpdir("atomic");
        let path = dir.join("f.txt");
        atomic_write(&path, "first").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first");
        atomic_write(&path, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        assert!(!tmp_path(&path).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic]
    fn zero_limit_rejected() {
        let dir = tmpdir("zero");
        let _ = RotatingLogWriter::open(dir.join("t.ulm"), RotationConfig::with_max_entries(0));
    }
}
