//! A rotating on-disk log writer: the NetLogger strategy from §3
//! ("flush the logs to persistent storage and restart logging") as a
//! streaming component.
//!
//! The writer appends ULM lines to an *active* file; when the active
//! file reaches the configured entry limit, it is renamed to a numbered
//! archive segment (`<stem>.1.ulm`, `<stem>.2.ulm`, …) and a fresh
//! active file starts. Readers that want full history concatenate the
//! archives; predictors that only want recent data read the active file.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::log::{LogError, TransferLog};
use crate::record::TransferRecord;
use crate::ulm;

/// Configuration of a rotating writer.
#[derive(Debug, Clone)]
pub struct RotationConfig {
    /// Entries per segment before rotation.
    pub max_entries: usize,
}

impl Default for RotationConfig {
    fn default() -> Self {
        RotationConfig {
            max_entries: 10_000,
        }
    }
}

/// The rotating ULM log writer.
pub struct RotatingLogWriter {
    /// Active file path, e.g. `/var/log/gridftp/transfers.ulm`.
    active_path: PathBuf,
    cfg: RotationConfig,
    out: BufWriter<File>,
    entries_in_active: usize,
    segments: usize,
}

impl RotatingLogWriter {
    /// Open (creating or appending to) the active file. Pre-existing
    /// entries in it count toward the rotation limit.
    pub fn open(active_path: impl Into<PathBuf>, cfg: RotationConfig) -> Result<Self, LogError> {
        assert!(cfg.max_entries > 0, "rotation limit must be positive");
        let active_path = active_path.into();
        if let Some(dir) = active_path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let entries_in_active = match std::fs::read_to_string(&active_path) {
            Ok(s) => s.lines().filter(|l| !l.trim().is_empty()).count(),
            Err(_) => 0,
        };
        let segments = Self::existing_segments(&active_path);
        let out = BufWriter::new(
            OpenOptions::new()
                .create(true)
                .append(true)
                .open(&active_path)?,
        );
        Ok(RotatingLogWriter {
            active_path,
            cfg,
            out,
            entries_in_active,
            segments,
        })
    }

    fn segment_path(active: &Path, n: usize) -> PathBuf {
        let stem = active
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("transfers");
        let ext = active.extension().and_then(|s| s.to_str()).unwrap_or("ulm");
        active.with_file_name(format!("{stem}.{n}.{ext}"))
    }

    fn existing_segments(active: &Path) -> usize {
        let mut n = 0;
        while Self::segment_path(active, n + 1).exists() {
            n += 1;
        }
        n
    }

    /// Append one record, rotating first if the active file is full.
    pub fn append(&mut self, r: &TransferRecord) -> Result<(), LogError> {
        if self.entries_in_active >= self.cfg.max_entries {
            self.rotate()?;
        }
        writeln!(self.out, "{}", ulm::encode(r))?;
        self.entries_in_active += 1;
        Ok(())
    }

    /// Force a rotation: flush, archive the active file, start fresh.
    /// A no-op when the active file is empty.
    pub fn rotate(&mut self) -> Result<(), LogError> {
        if self.entries_in_active == 0 {
            return Ok(());
        }
        self.out.flush()?;
        let seg = Self::segment_path(&self.active_path, self.segments + 1);
        std::fs::rename(&self.active_path, &seg)?;
        self.segments += 1;
        self.out = BufWriter::new(
            OpenOptions::new()
                .create(true)
                .append(true)
                .open(&self.active_path)?,
        );
        self.entries_in_active = 0;
        Ok(())
    }

    /// Flush buffered lines to disk.
    pub fn flush(&mut self) -> Result<(), LogError> {
        self.out.flush()?;
        Ok(())
    }

    /// Number of archived segments.
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// Entries currently in the active file.
    pub fn active_entries(&self) -> usize {
        self.entries_in_active
    }

    /// Load the *full* history: all archive segments in order followed
    /// by the active file.
    pub fn load_all(&mut self) -> Result<TransferLog, LogError> {
        self.flush()?;
        let mut log = TransferLog::new();
        for n in 1..=self.segments {
            let seg = Self::segment_path(&self.active_path, n);
            for r in TransferLog::load_ulm(&seg)?.records() {
                log.append(r.clone());
            }
        }
        if self.active_path.exists() {
            for r in TransferLog::load_ulm(&self.active_path)?.records() {
                log.append(r.clone());
            }
        }
        Ok(log)
    }

    /// Load only the active (post-flush) window — what a NetLogger-style
    /// predictor consumes after a restart.
    pub fn load_active(&mut self) -> Result<TransferLog, LogError> {
        self.flush()?;
        if self.active_path.exists() {
            TransferLog::load_ulm(&self.active_path)
        } else {
            Ok(TransferLog::new())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::sample_record;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("wanpred-writer-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn rec(i: u64) -> TransferRecord {
        let mut r = sample_record();
        r.start_unix = 1_000 + i;
        r.end_unix = r.start_unix + 4;
        r
    }

    #[test]
    fn rotation_at_limit() {
        let dir = tmpdir("rotate");
        let path = dir.join("transfers.ulm");
        let mut w = RotatingLogWriter::open(&path, RotationConfig { max_entries: 3 }).unwrap();
        for i in 0..7 {
            w.append(&rec(i)).unwrap();
        }
        // 7 entries with limit 3: two archived segments (3+3) + 1 active.
        assert_eq!(w.segments(), 2);
        assert_eq!(w.active_entries(), 1);
        assert!(dir.join("transfers.1.ulm").exists());
        assert!(dir.join("transfers.2.ulm").exists());
        let all = w.load_all().unwrap();
        assert_eq!(all.len(), 7);
        // Order preserved across segments.
        let starts: Vec<u64> = all.records().iter().map(|r| r.start_unix).collect();
        assert_eq!(starts, (1_000..1_007).collect::<Vec<_>>());
        let active = w.load_active().unwrap();
        assert_eq!(active.len(), 1);
        assert_eq!(active.records()[0].start_unix, 1_006);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_counts_existing_entries_and_segments() {
        let dir = tmpdir("reopen");
        let path = dir.join("t.ulm");
        {
            let mut w = RotatingLogWriter::open(&path, RotationConfig { max_entries: 2 }).unwrap();
            for i in 0..3 {
                w.append(&rec(i)).unwrap();
            }
            w.flush().unwrap();
        }
        // Re-open: 1 segment archived, 1 active entry.
        let mut w = RotatingLogWriter::open(&path, RotationConfig { max_entries: 2 }).unwrap();
        assert_eq!(w.segments(), 1);
        assert_eq!(w.active_entries(), 1);
        w.append(&rec(3)).unwrap();
        w.append(&rec(4)).unwrap(); // triggers rotation (limit 2)
        assert_eq!(w.segments(), 2);
        assert_eq!(w.load_all().unwrap().len(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manual_rotate_and_empty_noop() {
        let dir = tmpdir("manual");
        let path = dir.join("t.ulm");
        let mut w = RotatingLogWriter::open(&path, RotationConfig::default()).unwrap();
        // Rotating an empty active file does nothing.
        w.rotate().unwrap();
        assert_eq!(w.segments(), 0);
        w.append(&rec(0)).unwrap();
        w.rotate().unwrap();
        assert_eq!(w.segments(), 1);
        assert_eq!(w.active_entries(), 0);
        assert_eq!(w.load_all().unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic]
    fn zero_limit_rejected() {
        let dir = tmpdir("zero");
        let _ = RotatingLogWriter::open(dir.join("t.ulm"), RotationConfig { max_entries: 0 });
    }
}
