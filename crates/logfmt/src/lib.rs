//! # wanpred-logfmt
//!
//! GridFTP transfer logs in the Universal Logging Format (ULM)
//! `Keyword=Value` style used by the paper's instrumented server (§3,
//! Figure 3): the [`record::TransferRecord`] schema, ULM
//! encoding/parsing ([`ulm`]), the append-only [`log::TransferLog`] with
//! file persistence, the paper's two log-retention strategies
//! ([`trim`]): NWS-style running windows and NetLogger-style
//! flush-and-restart, and a rotating on-disk writer ([`writer`])
//! implementing the latter as a streaming component.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod log;
pub mod record;
pub mod trim;
pub mod ulm;
pub mod writer;

pub use crate::log::{LogError, TransferLog};
pub use crate::record::{sample_record, Operation, TransferRecord, TransferRecordBuilder};
pub use crate::trim::{TrimOutcome, TrimPolicy};
pub use crate::ulm::{decode, encode, UlmError};
pub use crate::writer::{RotatingLogWriter, RotationConfig};
