//! # wanpred-logfmt
//!
//! GridFTP transfer logs in the Universal Logging Format (ULM)
//! `Keyword=Value` style used by the paper's instrumented server (§3,
//! Figure 3): the [`record::TransferRecord`] schema, ULM
//! encoding/parsing ([`ulm`]), the append-only [`log::TransferLog`] with
//! file persistence, the paper's two log-retention strategies
//! ([`trim`]): NWS-style running windows and NetLogger-style
//! flush-and-restart, and a rotating on-disk writer ([`writer`])
//! implementing the latter as a streaming component.
//!
//! The durability layer (DESIGN.md § "Durability and degraded mode")
//! adds per-record integrity trailers ([`integrity`]), a salvage decoder
//! that recovers intact records from damaged documents ([`salvage`]),
//! crash-safe rotation with torn-tail recovery in [`writer`], and a
//! deterministic corruption injector ([`chaos`]) to prove all of it.
//!
//! The parse hot path (DESIGN.md § "Parse hot path") decodes borrowed:
//! [`ulm::tokenize_bytes`] + [`ulm::decode_borrowed`] produce records
//! without per-line allocation, and [`columns::TransferColumns`] stores
//! a whole log column-wise over a shared string arena. The original
//! allocating [`ulm::decode`] is retained as the differential oracle.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chaos;
pub mod columns;
pub mod integrity;
pub mod log;
pub mod record;
pub mod salvage;
pub mod trim;
pub mod ulm;
pub mod writer;

pub use crate::chaos::{corrupt_doc, ChaosConfig, ChaosOp, ChaosReport};
pub use crate::columns::TransferColumns;
pub use crate::integrity::{append_crc, check_line, crc32, CrcStatus};
pub use crate::log::{LogError, TransferLog};
pub use crate::record::{
    sample_record, Operation, TransferRecord, TransferRecordBuilder, ValidateError,
};
pub use crate::salvage::{
    salvage_doc, QuarantinedLine, SalvageOptions, SalvageReason, SalvageReport,
};
pub use crate::trim::{TrimOutcome, TrimPolicy};
pub use crate::ulm::{
    decode, decode_borrowed, encode, tokenize_bytes, DecodeScratch, RawToken, RawValue,
    TransferRecordRef, UlmError, UlmKey,
};
pub use crate::writer::{atomic_write, RotatingLogWriter, RotationConfig};
