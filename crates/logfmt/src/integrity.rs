//! Per-record integrity trailers: a CRC-32 (IEEE) over the ULM line,
//! appended as a final `CRC=xxxxxxxx` token.
//!
//! The trailer is backward compatible in both directions: [`crate::ulm::decode`]
//! ignores unknown keywords, so checksummed lines load in old readers, and
//! a reader that understands trailers treats their absence as a legacy
//! line rather than an error. What the trailer buys is *detection*: a torn
//! tail, a flipped bit, or two writers' buffers interleaved mid-line all
//! change the line without necessarily making it unparsable, and only a
//! checksum distinguishes "odd but intact" from "silently wrong". The
//! salvage decoder ([`crate::salvage`]) uses it to quarantine exactly the
//! damaged lines.
//!
//! The implementation is dependency-free: the CRC-32 table is built by a
//! `const fn` at compile time.

/// The trailer keyword. Kept out of [`crate::ulm::keys`] deliberately:
/// it is framing, not record vocabulary, and must not participate in the
/// encode/decode coherence check.
pub const CRC_KEY: &str = "CRC";

/// The ` CRC=` marker that separates record content from its trailer.
const MARKER: &str = " CRC=";

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = build_table();

/// CRC-32 (IEEE 802.3 polynomial, reflected) of a byte string.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Append the integrity trailer to one encoded ULM line (which must not
/// already carry one and must not contain a newline).
pub fn append_crc(line: &str) -> String {
    format!("{line}{MARKER}{:08x}", crc32(line.as_bytes()))
}

/// Outcome of checking one line's integrity trailer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrcStatus {
    /// No trailer present — a legacy line, fine under lenient decoding.
    Absent,
    /// Trailer present and it matches the content.
    Valid,
    /// Trailer present but wrong (bad hex, wrong length, or a checksum
    /// that does not match the content): the line was damaged.
    Mismatch,
}

/// Split a line into `(content, status)`. `content` excludes the trailer
/// when one is present (valid or not), so callers decode the original
/// record text. The *last* ` CRC=` occurrence is treated as the trailer:
/// quoted values may legally contain the marker, but the genuine trailer
/// is always appended after them.
pub fn check_line(line: &str) -> (&str, CrcStatus) {
    let Some(pos) = line.rfind(MARKER) else {
        return (line, CrcStatus::Absent);
    };
    let content = &line[..pos];
    let stored = &line[pos + MARKER.len()..];
    // Canonical trailers are exactly 8 lowercase hex digits; anything
    // else (including a case-flipped digit) counts as damage.
    let canonical = stored.len() == 8
        && stored
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b));
    let ok = canonical
        && u32::from_str_radix(stored, 16)
            .map(|s| s == crc32(content.as_bytes()))
            .unwrap_or(false);
    if ok {
        (content, CrcStatus::Valid)
    } else {
        (content, CrcStatus::Mismatch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::sample_record;
    use crate::ulm;

    #[test]
    fn known_vector() {
        // The classic CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_detects_any_single_bit_flip() {
        let line = ulm::encode(&sample_record());
        let sealed = append_crc(&line);
        let (content, status) = check_line(&sealed);
        assert_eq!(status, CrcStatus::Valid);
        assert_eq!(content, line);

        let bytes = sealed.as_bytes();
        for i in 0..bytes.len() {
            for bit in 0..7 {
                let mut flipped = bytes.to_vec();
                flipped[i] ^= 1 << bit;
                let s = String::from_utf8(flipped).expect("ascii stays utf8");
                let (_, status) = check_line(&s);
                assert_ne!(status, CrcStatus::Valid, "flip at byte {i} bit {bit}");
            }
        }
    }

    #[test]
    fn legacy_lines_report_absent() {
        let line = ulm::encode(&sample_record());
        let (content, status) = check_line(&line);
        assert_eq!(status, CrcStatus::Absent);
        assert_eq!(content, line);
    }

    #[test]
    fn truncated_trailer_is_a_mismatch() {
        let sealed = append_crc("SRC=1.2.3.4 HOST=h");
        let cut = &sealed[..sealed.len() - 3];
        let (_, status) = check_line(cut);
        assert_eq!(status, CrcStatus::Mismatch);
    }

    #[test]
    fn marker_inside_a_quoted_value_does_not_confuse_the_split() {
        let mut r = sample_record();
        r.file_name = "/data/weird CRC=deadbeef name".into();
        let line = ulm::encode(&r);
        let sealed = append_crc(&line);
        let (content, status) = check_line(&sealed);
        assert_eq!(status, CrcStatus::Valid);
        assert_eq!(content, line);
    }
}
