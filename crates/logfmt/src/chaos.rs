//! Deterministic corruption chaos for ULM documents.
//!
//! Campaigns need to *prove* the salvage path works, and they need the
//! proof to be reproducible: same seed, same damage, byte for byte. The
//! injector models the four failure shapes production log files actually
//! exhibit:
//!
//! * **Truncation mid-record** — a crash between `write` and `fsync`
//!   leaves a torn tail (or a torn middle, after concatenation).
//! * **Bit flips** — disk or transport rot; the line often still parses,
//!   which is exactly why records carry integrity trailers.
//! * **Line duplication** — a writer restarting after a crash replays its
//!   last buffer.
//! * **Interleaved partial writes** — two appenders race; one line's
//!   prefix is spliced onto the next line.
//!
//! Randomness comes from an inline splitmix64 stream seeded from the
//! campaign's master seed — no OS entropy anywhere (the workspace tidy
//! pass bans it on the simulation path), so double runs are identical.

use serde::{Deserialize, Serialize};

/// Chaos configuration: corruption rate and PRNG seed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Probability that any one record line is corrupted.
    pub rate: f64,
    /// Seed of the deterministic corruption stream.
    pub seed: u64,
}

impl ChaosConfig {
    /// Build a config.
    pub fn new(rate: f64, seed: u64) -> Self {
        ChaosConfig { rate, seed }
    }

    /// The same config with a different seed (per-target decorrelation).
    pub fn with_seed(self, seed: u64) -> Self {
        ChaosConfig { seed, ..self }
    }
}

/// Which corruption was applied to a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChaosOp {
    /// The line was cut somewhere strictly inside.
    Truncate,
    /// One bit of one byte was flipped (ASCII-preserving).
    BitFlip,
    /// The line was emitted twice (the original stays intact).
    Duplicate,
    /// The line's prefix was spliced onto the following line, consuming
    /// both.
    Interleave,
}

/// What the injector did, by 0-based index into the *original* document's
/// lines.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosReport {
    /// Record lines examined (blank/comment lines are never touched).
    pub lines_seen: usize,
    /// Every applied operation with the original line index it targeted.
    /// An [`ChaosOp::Interleave`] records two entries: the spliced line
    /// and the consumed follower.
    pub ops: Vec<(usize, ChaosOp)>,
}

impl ChaosReport {
    /// Indices of original lines whose record content was damaged or
    /// destroyed. [`ChaosOp::Duplicate`] leaves the original intact, so
    /// it does not appear here.
    pub fn lost_lines(&self) -> std::collections::BTreeSet<usize> {
        self.ops
            .iter()
            .filter(|(_, op)| *op != ChaosOp::Duplicate)
            .map(|(i, _)| *i)
            .collect()
    }
}

/// A splitmix64 stream: tiny, seedable, and plenty for fault injection.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn is_record(line: &str) -> bool {
    let t = line.trim();
    !t.is_empty() && !t.starts_with('#')
}

/// Cut a line strictly inside itself (on a char boundary).
fn truncate_line(line: &str, rng: &mut SplitMix) -> String {
    if line.len() < 2 {
        return String::new();
    }
    let mut cut = 1 + rng.next() as usize % (line.len() - 1);
    while !line.is_char_boundary(cut) {
        cut -= 1;
    }
    line[..cut].to_string()
}

/// Flip one low bit of one ASCII byte — guaranteed to change the byte
/// while keeping the document valid UTF-8.
fn flip_line(line: &str, rng: &mut SplitMix) -> String {
    let mut bytes = line.as_bytes().to_vec();
    let ascii: Vec<usize> = bytes
        .iter()
        .enumerate()
        .filter(|(_, b)| **b < 0x80)
        .map(|(i, _)| i)
        .collect();
    if ascii.is_empty() {
        return line.to_string();
    }
    let pos = ascii[rng.next() as usize % ascii.len()];
    bytes[pos] ^= 1 << rng.below(7);
    String::from_utf8(bytes).unwrap_or_else(|_| line.to_string())
}

/// Corrupt a document. Each record line is independently hit with
/// probability `cfg.rate`; blank lines and comments pass through. Returns
/// the damaged document and a report of what was done.
pub fn corrupt_doc(doc: &str, cfg: &ChaosConfig) -> (String, ChaosReport) {
    let lines: Vec<&str> = doc.lines().collect();
    let trailing_newline = doc.ends_with('\n');
    let mut rng = SplitMix(cfg.seed);
    let mut out: Vec<String> = Vec::with_capacity(lines.len());
    let mut report = ChaosReport::default();

    let mut i = 0;
    while i < lines.len() {
        let line = lines[i];
        if !is_record(line) {
            out.push(line.to_string());
            i += 1;
            continue;
        }
        report.lines_seen += 1;
        if rng.next_f64() >= cfg.rate {
            out.push(line.to_string());
            i += 1;
            continue;
        }
        let op = match rng.below(4) {
            0 => ChaosOp::Truncate,
            1 => ChaosOp::BitFlip,
            2 => ChaosOp::Duplicate,
            _ => ChaosOp::Interleave,
        };
        match op {
            ChaosOp::Truncate => {
                out.push(truncate_line(line, &mut rng));
                report.ops.push((i, ChaosOp::Truncate));
                i += 1;
            }
            ChaosOp::BitFlip => {
                out.push(flip_line(line, &mut rng));
                report.ops.push((i, ChaosOp::BitFlip));
                i += 1;
            }
            ChaosOp::Duplicate => {
                out.push(line.to_string());
                out.push(line.to_string());
                report.ops.push((i, ChaosOp::Duplicate));
                i += 1;
            }
            ChaosOp::Interleave => {
                if i + 1 < lines.len() && is_record(lines[i + 1]) {
                    // Writer A's buffer is cut short and writer B's line
                    // lands in the middle of it: one merged junk line.
                    let prefix = truncate_line(line, &mut rng);
                    out.push(format!("{prefix}{}", lines[i + 1]));
                    report.lines_seen += 1;
                    report.ops.push((i, ChaosOp::Interleave));
                    report.ops.push((i + 1, ChaosOp::Interleave));
                    i += 2;
                } else {
                    // No follower to splice with: degrade to truncation.
                    out.push(truncate_line(line, &mut rng));
                    report.ops.push((i, ChaosOp::Truncate));
                    i += 1;
                }
            }
        }
    }

    let mut damaged = out.join("\n");
    if trailing_newline && !damaged.is_empty() {
        damaged.push('\n');
    }
    (damaged, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrity::append_crc;
    use crate::record::sample_record;
    use crate::salvage::{salvage_doc, SalvageOptions};
    use crate::ulm::encode;

    fn doc(n: u64, sealed: bool) -> String {
        let mut s = String::new();
        for i in 0..n {
            let mut r = sample_record();
            r.start_unix = 1_000 + i * 10;
            r.end_unix = r.start_unix + 4;
            let line = encode(&r);
            s.push_str(&if sealed { append_crc(&line) } else { line });
            s.push('\n');
        }
        s
    }

    #[test]
    fn zero_rate_is_identity() {
        let d = doc(20, true);
        let (out, report) = corrupt_doc(&d, &ChaosConfig::new(0.0, 7));
        assert_eq!(out, d);
        assert_eq!(report.lines_seen, 20);
        assert!(report.ops.is_empty());
    }

    #[test]
    fn same_seed_same_damage_different_seed_different_damage() {
        let d = doc(50, true);
        let (a, ra) = corrupt_doc(&d, &ChaosConfig::new(0.3, 9));
        let (b, rb) = corrupt_doc(&d, &ChaosConfig::new(0.3, 9));
        assert_eq!(a, b);
        assert_eq!(ra, rb);
        let (c, _) = corrupt_doc(&d, &ChaosConfig::new(0.3, 10));
        assert_ne!(a, c);
    }

    #[test]
    fn full_rate_damages_every_line() {
        let d = doc(30, true);
        let (_, report) = corrupt_doc(&d, &ChaosConfig::new(1.0, 3));
        // Every original line appears in some op.
        let touched: std::collections::BTreeSet<usize> =
            report.ops.iter().map(|(i, _)| *i).collect();
        assert_eq!(touched.len(), 30);
    }

    #[test]
    fn strict_salvage_recovers_exactly_the_untouched_records() {
        let d = doc(200, true);
        let originals: Vec<&str> = d.lines().collect();
        let (damaged, report) = corrupt_doc(&d, &ChaosConfig::new(0.2, 42));
        let lost = report.lost_lines();
        let (log, salvage) = salvage_doc(&damaged, &SalvageOptions::strict());
        let expected: Vec<String> = originals
            .iter()
            .enumerate()
            .filter(|(i, _)| !lost.contains(i))
            .map(|(_, l)| l.to_string())
            .collect();
        assert_eq!(log.len(), expected.len());
        for (r, line) in log.records().iter().zip(&expected) {
            assert_eq!(&append_crc(&encode(r)), line);
        }
        assert!(!salvage.is_clean());
        assert_eq!(salvage.kept, expected.len());
    }

    #[test]
    fn comments_and_blanks_pass_through_untouched() {
        let d = format!("# header\n\n{}", doc(5, true));
        let (out, _) = corrupt_doc(&d, &ChaosConfig::new(1.0, 1));
        assert!(out.starts_with("# header\n\n"));
    }
}
