//! Log-trimming strategies.
//!
//! §3 of the paper: transfer logs grow quickly at a busy site, and old
//! data has less predictive relevance, so logs can be trimmed with a
//! running window "as is done in the NWS", or flushed to persistent
//! storage and restarted "as used by NetLogger". Both strategies are
//! implemented here; the ablation benches compare predictor accuracy
//! under each.

use crate::log::TransferLog;
use crate::record::TransferRecord;

/// A log-retention policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrimPolicy {
    /// Keep every record (the paper's experimental setting).
    KeepAll,
    /// NWS-style running window: keep only the most recent `n` records.
    LastRecords(usize),
    /// Running *time* window: keep records whose start time is within
    /// `secs` of the newest record.
    LastSeconds(u64),
    /// NetLogger-style: when the log exceeds `max` records, flush all of
    /// them out (to archival storage) and restart empty.
    FlushAt(usize),
}

/// Outcome of applying a policy.
#[derive(Debug, Default, PartialEq)]
pub struct TrimOutcome {
    /// Records removed from the active log (and, under `FlushAt`,
    /// destined for the archive).
    pub evicted: Vec<TransferRecord>,
}

impl TrimPolicy {
    /// Apply the policy to `log`, returning evicted records.
    pub fn apply(&self, log: &mut TransferLog) -> TrimOutcome {
        match self {
            TrimPolicy::KeepAll => TrimOutcome::default(),
            TrimPolicy::LastRecords(n) => {
                if log.len() <= *n {
                    return TrimOutcome::default();
                }
                let all = log.flush();
                let split = all.len() - n;
                let (old, keep) = all.split_at(split);
                let evicted = old.to_vec();
                for r in keep {
                    log.append(r.clone());
                }
                TrimOutcome { evicted }
            }
            TrimPolicy::LastSeconds(secs) => {
                let newest = match log.records().iter().map(|r| r.start_unix).max() {
                    Some(t) => t,
                    None => return TrimOutcome::default(),
                };
                let cutoff = newest.saturating_sub(*secs);
                let all = log.flush();
                let mut evicted = Vec::new();
                for r in all {
                    if r.start_unix >= cutoff {
                        log.append(r);
                    } else {
                        evicted.push(r);
                    }
                }
                TrimOutcome { evicted }
            }
            TrimPolicy::FlushAt(max) => {
                if log.len() <= *max {
                    return TrimOutcome::default();
                }
                TrimOutcome {
                    evicted: log.flush(),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::sample_record;

    fn log_with_starts(starts: &[u64]) -> TransferLog {
        starts
            .iter()
            .map(|&s| {
                let mut r = sample_record();
                r.start_unix = s;
                r.end_unix = s + 4;
                r
            })
            .collect()
    }

    #[test]
    fn keep_all_is_identity() {
        let mut log = log_with_starts(&[1, 2, 3]);
        let out = TrimPolicy::KeepAll.apply(&mut log);
        assert_eq!(log.len(), 3);
        assert!(out.evicted.is_empty());
    }

    #[test]
    fn last_records_evicts_oldest() {
        let mut log = log_with_starts(&[1, 2, 3, 4, 5]);
        let out = TrimPolicy::LastRecords(2).apply(&mut log);
        assert_eq!(log.len(), 2);
        assert_eq!(log.records()[0].start_unix, 4);
        assert_eq!(out.evicted.len(), 3);
        assert_eq!(out.evicted[0].start_unix, 1);
    }

    #[test]
    fn last_records_noop_when_small() {
        let mut log = log_with_starts(&[1, 2]);
        let out = TrimPolicy::LastRecords(5).apply(&mut log);
        assert_eq!(log.len(), 2);
        assert!(out.evicted.is_empty());
    }

    #[test]
    fn last_seconds_keeps_window_relative_to_newest() {
        let mut log = log_with_starts(&[100, 200, 290, 300]);
        let out = TrimPolicy::LastSeconds(50).apply(&mut log);
        // newest = 300, cutoff = 250.
        assert_eq!(log.len(), 2);
        assert_eq!(log.records()[0].start_unix, 290);
        assert_eq!(out.evicted.len(), 2);
    }

    #[test]
    fn last_seconds_empty_log_is_noop() {
        let mut log = TransferLog::new();
        let out = TrimPolicy::LastSeconds(50).apply(&mut log);
        assert!(out.evicted.is_empty());
    }

    #[test]
    fn flush_at_triggers_only_over_threshold() {
        let mut log = log_with_starts(&[1, 2, 3]);
        let out = TrimPolicy::FlushAt(3).apply(&mut log);
        assert!(out.evicted.is_empty());
        assert_eq!(log.len(), 3);
        let mut log = log_with_starts(&[1, 2, 3, 4]);
        let out = TrimPolicy::FlushAt(3).apply(&mut log);
        assert_eq!(out.evicted.len(), 4);
        assert!(log.is_empty());
    }
}
