//! The transfer log: an append-only sequence of records with query
//! helpers and ULM file persistence.
//!
//! The paper logs all transfers of a server to a single file in a
//! standard location (§3); the information provider and the predictors
//! consume it. Records are kept in arrival order; the controlled
//! experiments emit them in nondecreasing start-time order, but arbitrary
//! interleavings are tolerated by the query helpers.

use std::io;
use std::path::Path;

use crate::integrity;
use crate::record::TransferRecord;
use crate::salvage::{salvage_doc, SalvageOptions, SalvageReport};
use crate::ulm;
use crate::writer::atomic_write;

/// Errors from log file I/O.
#[derive(Debug)]
pub enum LogError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line failed to parse (with its 1-based line number).
    Parse(usize, ulm::UlmError),
}

impl std::fmt::Display for LogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogError::Io(e) => write!(f, "log I/O error: {e}"),
            LogError::Parse(n, e) => write!(f, "log parse error at line {n}: {e}"),
        }
    }
}

impl std::error::Error for LogError {}

impl From<io::Error> for LogError {
    fn from(e: io::Error) -> Self {
        LogError::Io(e)
    }
}

/// An in-memory transfer log.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TransferLog {
    records: Vec<TransferRecord>,
}

impl TransferLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one record.
    pub fn append(&mut self, r: TransferRecord) {
        self.records.push(r);
    }

    /// All records in arrival order.
    pub fn records(&self) -> &[TransferRecord] {
        &self.records
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records whose start time falls in `[from, to)` (Unix seconds).
    pub fn in_window(&self, from: u64, to: u64) -> impl Iterator<Item = &TransferRecord> {
        self.records
            .iter()
            .filter(move |r| r.start_unix >= from && r.start_unix < to)
    }

    /// Records for transfers with the given remote endpoint.
    pub fn for_source<'a>(
        &'a self,
        source: &'a str,
    ) -> impl Iterator<Item = &'a TransferRecord> + 'a {
        self.records.iter().filter(move |r| r.source == source)
    }

    /// Drop the oldest entries, keeping at most `n` (the NWS-style
    /// running-window trim; see [`crate::trim`] for policies).
    pub fn truncate_front(&mut self, n: usize) {
        if self.records.len() > n {
            self.records.drain(..self.records.len() - n);
        }
    }

    /// Remove all entries, returning them (the NetLogger-style
    /// flush-and-restart strategy).
    pub fn flush(&mut self) -> Vec<TransferRecord> {
        std::mem::take(&mut self.records)
    }

    /// Serialize every record as ULM, one line each.
    pub fn to_ulm_string(&self) -> String {
        let mut s = String::new();
        for r in &self.records {
            s.push_str(&ulm::encode(r));
            s.push('\n');
        }
        s
    }

    /// Like [`TransferLog::to_ulm_string`], with a CRC integrity trailer
    /// sealing every line (see [`crate::integrity`]). Old readers ignore
    /// the extra keyword; the salvage decoder uses it to reject damage.
    pub fn to_ulm_string_checksummed(&self) -> String {
        let mut s = String::new();
        for r in &self.records {
            s.push_str(&integrity::append_crc(&ulm::encode(r)));
            s.push('\n');
        }
        s
    }

    /// Parse a ULM document (one record per line; blank lines and `#`
    /// comments are skipped).
    ///
    /// Decoding goes through the zero-copy borrowed path
    /// ([`ulm::decode_borrowed`]); only the surviving record fields are
    /// materialised. The allocating [`ulm::decode`] stays available as
    /// the differential oracle.
    pub fn from_ulm_str(doc: &str) -> Result<Self, LogError> {
        let mut log = TransferLog::new();
        let mut scratch = ulm::DecodeScratch::new();
        for (i, line) in doc.lines().enumerate() {
            let t = line.trim();
            if t.is_empty() || t.starts_with('#') {
                continue;
            }
            let r = ulm::decode_borrowed(t, &mut scratch).map_err(|e| LogError::Parse(i + 1, e))?;
            log.append(r.to_owned());
        }
        Ok(log)
    }

    /// Salvage a ULM document under the lenient regime: keep every
    /// provably intact record, quarantine the rest. Never errors — a
    /// fully damaged document yields an empty log and a full quarantine.
    /// See [`crate::salvage`] for semantics.
    pub fn salvage_ulm(doc: &str) -> (Self, SalvageReport) {
        salvage_doc(doc, &SalvageOptions::default())
    }

    /// [`TransferLog::salvage_ulm`] with explicit decoding options
    /// (e.g. [`SalvageOptions::strict`]).
    pub fn salvage_ulm_with(doc: &str, opts: &SalvageOptions) -> (Self, SalvageReport) {
        salvage_doc(doc, opts)
    }

    /// Write the log to a file in ULM format. The write is atomic
    /// (tmp file + fsync + rename): a crash leaves either the previous
    /// file or the complete new one.
    pub fn save_ulm(&self, path: &Path) -> Result<(), LogError> {
        atomic_write(path, &self.to_ulm_string())?;
        Ok(())
    }

    /// Like [`TransferLog::save_ulm`], sealing every line with a CRC
    /// integrity trailer.
    pub fn save_ulm_checksummed(&self, path: &Path) -> Result<(), LogError> {
        atomic_write(path, &self.to_ulm_string_checksummed())?;
        Ok(())
    }

    /// Load a log from a ULM file.
    ///
    /// Reads the document in one shot and decodes it borrowed: a log is
    /// small next to memory (well under 512 bytes per record) and the
    /// zero-copy line decoder wants the whole text anyway.
    pub fn load_ulm(path: &Path) -> Result<Self, LogError> {
        let doc = std::fs::read_to_string(path)?;
        Self::from_ulm_str(&doc)
    }

    /// Load a log from a ULM file through the salvage decoder: I/O
    /// failures still error, but damaged lines are quarantined into the
    /// report instead of aborting the load.
    pub fn load_ulm_salvaged(path: &Path) -> Result<(Self, SalvageReport), LogError> {
        let doc = std::fs::read_to_string(path)?;
        Ok(Self::salvage_ulm(&doc))
    }

    /// The bandwidth series `(start_unix, KB/s)` in arrival order — the
    /// input shape every predictor consumes.
    pub fn bandwidth_series(&self) -> Vec<(u64, f64)> {
        self.records
            .iter()
            .map(|r| (r.start_unix, r.bandwidth_kbs()))
            .collect()
    }
}

impl FromIterator<TransferRecord> for TransferLog {
    fn from_iter<T: IntoIterator<Item = TransferRecord>>(iter: T) -> Self {
        TransferLog {
            records: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{sample_record, TransferRecord};

    fn rec(start: u64, size: u64) -> TransferRecord {
        let mut r = sample_record();
        r.start_unix = start;
        r.end_unix = start + 4;
        r.file_size = size;
        r
    }

    #[test]
    fn append_and_query_window() {
        let mut log = TransferLog::new();
        log.append(rec(100, 1));
        log.append(rec(200, 2));
        log.append(rec(300, 3));
        let got: Vec<u64> = log.in_window(150, 300).map(|r| r.start_unix).collect();
        assert_eq!(got, vec![200]);
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn source_filter() {
        let mut log = TransferLog::new();
        let mut a = rec(1, 1);
        a.source = "isi".into();
        log.append(a);
        log.append(rec(2, 2));
        assert_eq!(log.for_source("isi").count(), 1);
        assert_eq!(log.for_source("140.221.65.69").count(), 1);
    }

    #[test]
    fn ulm_document_roundtrip() {
        let mut log = TransferLog::new();
        for i in 0..5 {
            log.append(rec(i * 100, (i + 1) * 1000));
        }
        let doc = log.to_ulm_string();
        let back = TransferLog::from_ulm_str(&doc).unwrap();
        assert_eq!(back.len(), 5);
        assert_eq!(back.records()[3].file_size, 4000);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let doc = format!(
            "# header\n\n{}\n  \n# trailer\n",
            crate::ulm::encode(&sample_record())
        );
        let log = TransferLog::from_ulm_str(&doc).unwrap();
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn parse_error_carries_line_number() {
        let doc = format!("{}\ngarbage line\n", crate::ulm::encode(&sample_record()));
        match TransferLog::from_ulm_str(&doc) {
            Err(LogError::Parse(2, _)) => {}
            other => panic!("expected parse error at line 2, got {other:?}"),
        }
    }

    #[test]
    fn truncate_front_keeps_most_recent() {
        let mut log = TransferLog::new();
        for i in 0..10 {
            log.append(rec(i, 1));
        }
        log.truncate_front(3);
        assert_eq!(log.len(), 3);
        assert_eq!(log.records()[0].start_unix, 7);
    }

    #[test]
    fn flush_empties_and_returns() {
        let mut log = TransferLog::new();
        log.append(rec(1, 1));
        let got = log.flush();
        assert_eq!(got.len(), 1);
        assert!(log.is_empty());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("wanpred-logfmt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("transfers.ulm");
        let mut log = TransferLog::new();
        log.append(rec(10, 100));
        log.append(rec(20, 200));
        log.save_ulm(&path).unwrap();
        let back = TransferLog::load_ulm(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.records()[1].file_size, 200);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn salvage_ulm_keeps_intact_records_from_a_damaged_doc() {
        let mut log = TransferLog::new();
        for i in 0..4 {
            log.append(rec(i * 100, 1000));
        }
        let mut doc = log.to_ulm_string_checksummed();
        doc.push_str("torn gar\n");
        let (back, report) = TransferLog::salvage_ulm(&doc);
        assert_eq!(back.len(), 4);
        assert_eq!(report.kept, 4);
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].line, 5);
    }

    #[test]
    fn checksummed_file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("wanpred-logfmt-crc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sealed.ulm");
        let mut log = TransferLog::new();
        log.append(rec(10, 100));
        log.append(rec(20, 200));
        log.save_ulm_checksummed(&path).unwrap();
        let doc = std::fs::read_to_string(&path).unwrap();
        assert!(doc.lines().all(|l| l.contains(" CRC=")));
        // The strict loader tolerates the extra keyword...
        let back = TransferLog::load_ulm(&path).unwrap();
        assert_eq!(back, log);
        // ...and the salvaging loader verifies it.
        let (back, report) = TransferLog::load_ulm_salvaged(&path).unwrap();
        assert_eq!(back, log);
        assert!(report.is_clean());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bandwidth_series_shape() {
        let mut log = TransferLog::new();
        log.append(rec(100, 4_000_000)); // 4 MB in 4 s = 1000 KB/s
        let s = log.bandwidth_series();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].0, 100);
        assert!((s[0].1 - 1000.0).abs() < 1e-9);
    }
}
