//! The salvage decoder: recover every intact record from a damaged ULM
//! document instead of aborting on the first bad line.
//!
//! [`crate::log::TransferLog::from_ulm_str`] is deliberately strict — a
//! parse error means the document is not what the writer produced, and in
//! tests that should be loud. But a production log that survived a crash,
//! a disk hiccup, or two writers' interleaved buffers is *mostly* good,
//! and the paper's whole prediction path hangs off that history: throwing
//! away 10,000 records because line 7,313 is torn starves every predictor
//! downstream. Salvage keeps what is provably intact, quarantines what is
//! not (with the line number and a reason, so operators can audit the
//! damage), and reports both.
//!
//! Two decoding regimes:
//!
//! * **Lenient** ([`SalvageOptions::default`]) — checksums are verified
//!   when present; legacy lines without a trailer are accepted if they
//!   parse. Right for mixed-vintage logs.
//! * **Strict** ([`SalvageOptions::strict`]) — every line must carry a
//!   valid trailer and the decoded record must pass
//!   [`crate::record::TransferRecord::validate`]. This is the regime with
//!   an exactness guarantee: corruption cannot smuggle a plausible-but-
//!   wrong record past the decoder (property-tested in
//!   `tests/proptest_salvage.rs`).

use serde::{Deserialize, Serialize};

use crate::integrity::{check_line, CrcStatus};
use crate::log::TransferLog;
use crate::ulm;

/// Why one line was quarantined.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SalvageReason {
    /// The line failed ULM parsing (the carried string is the parse
    /// error's rendering — torn tails usually land here).
    Parse(String),
    /// The line carries an integrity trailer that does not match its
    /// content: bit rot or an interleaved partial write.
    ChecksumMismatch,
    /// Strict mode only: the line carries no integrity trailer.
    MissingChecksum,
    /// The line is byte-identical to the previously kept line — the
    /// duplicated-buffer failure mode of crashed writers.
    DuplicateLine,
    /// The line parsed but the record violates its own invariants.
    InvalidRecord(String),
}

impl std::fmt::Display for SalvageReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SalvageReason::Parse(e) => write!(f, "parse error: {e}"),
            SalvageReason::ChecksumMismatch => write!(f, "checksum mismatch"),
            SalvageReason::MissingChecksum => write!(f, "missing checksum"),
            SalvageReason::DuplicateLine => write!(f, "duplicate of previous line"),
            SalvageReason::InvalidRecord(e) => write!(f, "invalid record: {e}"),
        }
    }
}

/// One quarantined line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantinedLine {
    /// 1-based line number in the salvaged document.
    pub line: usize,
    /// Why it was rejected.
    pub reason: SalvageReason,
    /// The raw (trimmed) line content, preserved for the audit trail.
    pub content: String,
}

/// What a salvage pass kept and threw away.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SalvageReport {
    /// Records recovered.
    pub kept: usize,
    /// Lines rejected, in document order.
    pub quarantined: Vec<QuarantinedLine>,
}

impl SalvageReport {
    /// Non-blank, non-comment lines examined.
    pub fn lines_seen(&self) -> usize {
        self.kept + self.quarantined.len()
    }

    /// Fraction of examined lines recovered (1.0 for an empty document).
    pub fn recovery_fraction(&self) -> f64 {
        let seen = self.lines_seen();
        if seen == 0 {
            1.0
        } else {
            self.kept as f64 / seen as f64
        }
    }

    /// Whether nothing was quarantined.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty()
    }

    /// Fold another report into this one (multi-segment loads). Line
    /// numbers stay local to each segment.
    pub fn merge(&mut self, other: SalvageReport) {
        self.kept += other.kept;
        self.quarantined.extend(other.quarantined);
    }
}

/// Salvage decoding knobs. The default is the lenient regime: checksums
/// verified when present, legacy lines accepted, records not revalidated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SalvageOptions {
    /// Reject lines without an integrity trailer (strict provenance).
    pub require_checksum: bool,
    /// Reject records failing [`crate::record::TransferRecord::validate`].
    pub validate_records: bool,
}

impl SalvageOptions {
    /// The exactness regime: checksums mandatory, records validated.
    pub fn strict() -> Self {
        SalvageOptions {
            require_checksum: true,
            validate_records: true,
        }
    }
}

/// Salvage a ULM document: decode every line that is provably intact,
/// quarantine the rest. Blank lines and `#` comments are skipped without
/// being counted.
pub fn salvage_doc(doc: &str, opts: &SalvageOptions) -> (TransferLog, SalvageReport) {
    let mut log = TransferLog::new();
    let mut report = SalvageReport::default();
    let mut last_kept: Option<&str> = None;
    let mut scratch = ulm::DecodeScratch::new();
    for (i, raw) in doc.lines().enumerate() {
        let t = raw.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let quarantine = |reason: SalvageReason, report: &mut SalvageReport| {
            report.quarantined.push(QuarantinedLine {
                line: i + 1,
                reason,
                content: t.to_string(),
            });
        };
        let (content, status) = check_line(t);
        match status {
            CrcStatus::Mismatch => {
                quarantine(SalvageReason::ChecksumMismatch, &mut report);
                continue;
            }
            CrcStatus::Absent if opts.require_checksum => {
                quarantine(SalvageReason::MissingChecksum, &mut report);
                continue;
            }
            _ => {}
        }
        if last_kept == Some(t) {
            quarantine(SalvageReason::DuplicateLine, &mut report);
            continue;
        }
        // The zero-copy decoder carries the same canonical error order
        // as the allocating oracle, so quarantine reasons are stable
        // across both paths (differentially tested).
        match ulm::decode_borrowed(content, &mut scratch) {
            Err(e) => quarantine(SalvageReason::Parse(e.to_string()), &mut report),
            Ok(r) => {
                let r = r.to_owned();
                if opts.validate_records {
                    if let Err(why) = r.validate() {
                        quarantine(SalvageReason::InvalidRecord(why.to_string()), &mut report);
                        continue;
                    }
                }
                last_kept = Some(t);
                report.kept += 1;
                log.append(r);
            }
        }
    }
    (log, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrity::append_crc;
    use crate::record::sample_record;
    use crate::ulm::encode;

    fn line(i: u64) -> String {
        let mut r = sample_record();
        r.start_unix = 1_000 + i;
        r.end_unix = r.start_unix + 4;
        encode(&r)
    }

    #[test]
    fn clean_document_salvages_fully() {
        let doc = format!("{}\n{}\n", line(0), line(1));
        let (log, report) = salvage_doc(&doc, &SalvageOptions::default());
        assert_eq!(log.len(), 2);
        assert_eq!(report.kept, 2);
        assert!(report.is_clean());
        assert!((report.recovery_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn torn_line_is_quarantined_with_position_and_reason() {
        let good = line(0);
        let torn = &good[..good.len() / 2];
        let doc = format!("# header\n{good}\n{torn}\n{}\n", line(2));
        let (log, report) = salvage_doc(&doc, &SalvageOptions::default());
        assert_eq!(log.len(), 2);
        assert_eq!(report.quarantined.len(), 1);
        let q = &report.quarantined[0];
        assert_eq!(q.line, 3);
        assert!(
            matches!(q.reason, SalvageReason::Parse(_)),
            "{:?}",
            q.reason
        );
        assert_eq!(q.content, torn.trim());
    }

    #[test]
    fn checksum_mismatch_beats_a_parsable_lie() {
        // A bit flip inside SIZE keeps the line parsable but changes the
        // record; only the trailer catches it.
        let sealed = append_crc(&line(0));
        let lied = sealed.replace("SIZE=1", "SIZE=9");
        assert_ne!(sealed, lied);
        let doc = format!("{lied}\n");
        let (log, report) = salvage_doc(&doc, &SalvageOptions::default());
        assert_eq!(log.len(), 0);
        assert_eq!(
            report.quarantined[0].reason,
            SalvageReason::ChecksumMismatch
        );
    }

    #[test]
    fn duplicate_lines_keep_one_copy() {
        let l = append_crc(&line(0));
        let doc = format!("{l}\n{l}\n{l}\n");
        let (log, report) = salvage_doc(&doc, &SalvageOptions::default());
        assert_eq!(log.len(), 1);
        assert_eq!(report.quarantined.len(), 2);
        assert!(report
            .quarantined
            .iter()
            .all(|q| q.reason == SalvageReason::DuplicateLine));
    }

    #[test]
    fn strict_mode_rejects_legacy_lines() {
        let doc = format!("{}\n{}\n", line(0), append_crc(&line(1)));
        let (log, report) = salvage_doc(&doc, &SalvageOptions::strict());
        assert_eq!(log.len(), 1);
        assert_eq!(report.quarantined[0].reason, SalvageReason::MissingChecksum);
        // Lenient mode accepts both.
        let (log, _) = salvage_doc(&doc, &SalvageOptions::default());
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn strict_mode_validates_records() {
        let mut r = sample_record();
        r.streams = 0; // invalid, but encodes and checksums fine
        let doc = format!("{}\n", append_crc(&encode(&r)));
        let (log, report) = salvage_doc(&doc, &SalvageOptions::strict());
        assert_eq!(log.len(), 0);
        assert!(matches!(
            report.quarantined[0].reason,
            SalvageReason::InvalidRecord(_)
        ));
    }

    #[test]
    fn report_merge_accumulates() {
        let mut a = SalvageReport {
            kept: 3,
            quarantined: vec![QuarantinedLine {
                line: 1,
                reason: SalvageReason::ChecksumMismatch,
                content: "x".into(),
            }],
        };
        let b = SalvageReport {
            kept: 2,
            quarantined: Vec::new(),
        };
        a.merge(b);
        assert_eq!(a.kept, 5);
        assert_eq!(a.lines_seen(), 6);
    }

    #[test]
    fn report_serializes() {
        let (_, report) = salvage_doc("garbage\n", &SalvageOptions::default());
        let json = serde_json::to_string(&report).expect("serialize");
        let back: SalvageReport = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(report, back);
    }
}
