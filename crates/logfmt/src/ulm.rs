//! Universal Logging Format (ULM) encoding of transfer records.
//!
//! The paper logs one `Keyword=Value` line per transfer (§3, citing the
//! ULM draft used by NetLogger). Values containing whitespace or `"` are
//! double-quoted with backslash escaping; the line-framing characters
//! `\n` and `\r` are escaped (`\n`, `\r`) inside quotes so a hostile
//! file name can never split a record across physical lines. Every entry
//! is well under the paper's 512-byte bound — asserted in tests and in
//! the logging-overhead benchmark.
//!
//! Two decode paths exist (DESIGN.md § "Parse hot path"):
//!
//! * [`decode`] — the original allocating path (`tokenize` into owned
//!   pairs, then field lookup). It is the **differential oracle**: slow,
//!   obviously correct, and property-tested against the fast path on
//!   every line shape.
//! * [`decode_borrowed`] — the zero-copy hot path: [`tokenize_bytes`]
//!   yields borrowed key/value slices, keys are interned to [`UlmKey`],
//!   and escape expansion (rare) goes through a caller-owned
//!   [`DecodeScratch`] arena. The result, [`TransferRecordRef`], borrows
//!   from the line and the scratch; [`TransferRecordRef::to_owned`]
//!   materialises a [`TransferRecord`] when ownership is needed.
//!
//! Both paths implement the same canonical error-evaluation order, so
//! they agree on *which* error a malformed line produces: tokenizer
//! error first (leftmost), then duplicate keys (leftmost second
//! occurrence), then a present-but-corrupt `BW_KBS`, then `OP`, then the
//! remaining fields in record-declaration order.

use std::fmt::Write as _;

use crate::record::{Operation, TransferRecord};

/// Keyword names used in our GridFTP log lines.
pub mod keys {
    /// Remote endpoint address.
    pub const SRC: &str = "SRC";
    /// Logging server hostname.
    pub const HOST: &str = "HOST";
    /// File path.
    pub const FILE: &str = "FILE";
    /// File size in bytes.
    pub const SIZE: &str = "SIZE";
    /// Logical volume.
    pub const VOL: &str = "VOL";
    /// Start timestamp (Unix seconds).
    pub const START: &str = "START";
    /// End timestamp (Unix seconds).
    pub const END: &str = "END";
    /// Total transfer seconds (fractional).
    pub const SECS: &str = "SECS";
    /// Aggregate bandwidth, KB/s (derived; logged for human readers).
    pub const BW: &str = "BW_KBS";
    /// Operation direction.
    pub const OP: &str = "OP";
    /// Parallel stream count.
    pub const STREAMS: &str = "STREAMS";
    /// TCP buffer bytes.
    pub const BUF: &str = "BUF";
}

/// Errors from parsing a ULM line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UlmError {
    /// A token was not of `KEY=VALUE` form, or a key appeared twice.
    Malformed(String),
    /// A quoted value was never closed.
    UnterminatedQuote,
    /// A required keyword was absent.
    MissingKey(&'static str),
    /// A value failed to parse as its expected type.
    BadValue(&'static str, String),
}

impl std::fmt::Display for UlmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UlmError::Malformed(tok) => write!(f, "malformed token {tok:?}"),
            UlmError::UnterminatedQuote => write!(f, "unterminated quote"),
            UlmError::MissingKey(k) => write!(f, "missing key {k}"),
            UlmError::BadValue(k, v) => write!(f, "bad value for {k}: {v:?}"),
        }
    }
}

impl std::error::Error for UlmError {}

/// The interned keyword table: every keyword our encoder emits, as a
/// dense index. The zero-copy decoder matches raw key bytes against this
/// table once and then works with array slots instead of string
/// comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UlmKey {
    /// `SRC`
    Src = 0,
    /// `HOST`
    Host = 1,
    /// `FILE`
    File = 2,
    /// `SIZE`
    Size = 3,
    /// `VOL`
    Vol = 4,
    /// `START`
    Start = 5,
    /// `END`
    End = 6,
    /// `SECS`
    Secs = 7,
    /// `BW_KBS`
    Bw = 8,
    /// `OP`
    Op = 9,
    /// `STREAMS`
    Streams = 10,
    /// `BUF`
    Buf = 11,
}

impl UlmKey {
    /// Number of interned keywords (slot-array size).
    pub const COUNT: usize = 12;

    /// Intern a raw key. Returns `None` for unknown keywords (foreign
    /// keys such as the `CRC` integrity trailer are tolerated by decode,
    /// exactly like the allocating oracle).
    #[inline]
    pub fn intern(key: &str) -> Option<UlmKey> {
        Some(match key.as_bytes() {
            b"SRC" => UlmKey::Src,
            b"HOST" => UlmKey::Host,
            b"FILE" => UlmKey::File,
            b"SIZE" => UlmKey::Size,
            b"VOL" => UlmKey::Vol,
            b"START" => UlmKey::Start,
            b"END" => UlmKey::End,
            b"SECS" => UlmKey::Secs,
            b"BW_KBS" => UlmKey::Bw,
            b"OP" => UlmKey::Op,
            b"STREAMS" => UlmKey::Streams,
            b"BUF" => UlmKey::Buf,
            _ => return None,
        })
    }

    /// The keyword's canonical spelling (the `keys` constant).
    pub const fn name(self) -> &'static str {
        match self {
            UlmKey::Src => keys::SRC,
            UlmKey::Host => keys::HOST,
            UlmKey::File => keys::FILE,
            UlmKey::Size => keys::SIZE,
            UlmKey::Vol => keys::VOL,
            UlmKey::Start => keys::START,
            UlmKey::End => keys::END,
            UlmKey::Secs => keys::SECS,
            UlmKey::Bw => keys::BW,
            UlmKey::Op => keys::OP,
            UlmKey::Streams => keys::STREAMS,
            UlmKey::Buf => keys::BUF,
        }
    }
}

/// Quote a value if it needs quoting, escaping the quote, backslash and
/// line-framing characters. Any whitespace (including Unicode whitespace
/// like U+0085, which the tokenizer treats as a separator) and any
/// control character forces quoting — otherwise the value would split or
/// corrupt the physical line.
fn encode_value(out: &mut String, v: &str) {
    let needs_quote = v.is_empty()
        || v.chars()
            .any(|c| matches!(c, '"' | '=' | '\\') || c.is_whitespace() || c.is_control());
    if !needs_quote {
        out.push_str(v);
        return;
    }
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            // The two characters that break line framing (`str::lines`
            // splits on `\n` and strips a trailing `\r`) are the only
            // ones that must not appear raw even inside quotes.
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
    out.push('"');
}

/// Expand one escape sequence character: the inverse of [`encode_value`].
/// Unknown escapes decode to the escaped character itself (so legacy
/// `\x` sequences keep their old meaning).
#[inline]
fn unescape_char(c: char) -> char {
    match c {
        'n' => '\n',
        'r' => '\r',
        other => other,
    }
}

/// Encode a record as one ULM line (no trailing newline).
pub fn encode(r: &TransferRecord) -> String {
    let mut s = String::with_capacity(200);
    let mut kv = |k: &str, f: &mut dyn FnMut(&mut String)| {
        if !s.is_empty() {
            s.push(' ');
        }
        s.push_str(k);
        s.push('=');
        f(&mut s);
    };
    kv(keys::SRC, &mut |o| encode_value(o, &r.source));
    kv(keys::HOST, &mut |o| encode_value(o, &r.host));
    kv(keys::FILE, &mut |o| encode_value(o, &r.file_name));
    kv(keys::SIZE, &mut |o| {
        let _ = write!(o, "{}", r.file_size);
    });
    kv(keys::VOL, &mut |o| encode_value(o, &r.volume));
    kv(keys::START, &mut |o| {
        let _ = write!(o, "{}", r.start_unix);
    });
    kv(keys::END, &mut |o| {
        let _ = write!(o, "{}", r.end_unix);
    });
    kv(keys::SECS, &mut |o| {
        // Shortest round-trip form: reloading a log must reproduce the
        // original record bit-for-bit, so no fixed-precision rounding.
        let _ = write!(o, "{}", r.total_time_s);
    });
    kv(keys::BW, &mut |o| {
        let _ = write!(o, "{:.1}", r.bandwidth_kbs());
    });
    kv(keys::OP, &mut |o| o.push_str(r.operation.as_str()));
    kv(keys::STREAMS, &mut |o| {
        let _ = write!(o, "{}", r.streams);
    });
    kv(keys::BUF, &mut |o| {
        let _ = write!(o, "{}", r.tcp_buffer);
    });
    s
}

/// Split a ULM line into `(key, value)` pairs, handling quoting.
///
/// This is the allocating reference path, kept as the differential
/// oracle for [`tokenize_bytes`]; production decoding goes through the
/// borrowed tokenizer.
pub fn tokenize(line: &str) -> Result<Vec<(String, String)>, UlmError> {
    let mut out = Vec::new();
    let mut chars = line.chars().peekable();
    loop {
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
        if chars.peek().is_none() {
            break;
        }
        let mut key = String::new();
        let mut saw_eq = false;
        for c in chars.by_ref() {
            if c == '=' {
                saw_eq = true;
                break;
            }
            if c.is_whitespace() {
                break;
            }
            key.push(c);
        }
        if !saw_eq || key.is_empty() {
            return Err(UlmError::Malformed(key));
        }
        let mut val = String::new();
        if chars.peek() == Some(&'"') {
            chars.next();
            let mut closed = false;
            while let Some(c) = chars.next() {
                match c {
                    '\\' => match chars.next() {
                        Some(e) => val.push(unescape_char(e)),
                        None => return Err(UlmError::UnterminatedQuote),
                    },
                    '"' => {
                        closed = true;
                        break;
                    }
                    _ => val.push(c),
                }
            }
            if !closed {
                return Err(UlmError::UnterminatedQuote);
            }
        } else {
            while let Some(&c) = chars.peek() {
                if c.is_whitespace() {
                    break;
                }
                val.push(c);
                chars.next();
            }
        }
        out.push((key, val));
    }
    Ok(out)
}

/// A borrowed value slice from [`tokenize_bytes`]: the raw content
/// (between the quotes, for quoted values) plus whether any backslash
/// escapes remain to be expanded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawValue<'a> {
    /// Raw value bytes as they appear on the line (escapes unexpanded).
    pub raw: &'a str,
    /// Whether `raw` contains backslash escapes. Always `false` for
    /// unquoted values — escapes only exist inside quotes.
    pub escaped: bool,
}

impl<'a> RawValue<'a> {
    /// The unescaped value, borrowing from the line when no escapes are
    /// present (the overwhelmingly common case).
    pub fn unescaped(&self) -> std::borrow::Cow<'a, str> {
        if !self.escaped {
            return std::borrow::Cow::Borrowed(self.raw);
        }
        let mut out = String::with_capacity(self.raw.len());
        self.unescape_into(&mut out);
        std::borrow::Cow::Owned(out)
    }

    /// Append the unescaped value to `out` (arena-style expansion; no
    /// intermediate allocation).
    pub fn unescape_into(&self, out: &mut String) {
        if !self.escaped {
            out.push_str(self.raw);
            return;
        }
        let mut chars = self.raw.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                // The tokenizer guarantees a character follows every
                // backslash (else the quote was unterminated).
                if let Some(e) = chars.next() {
                    out.push(unescape_char(e));
                }
            } else {
                out.push(c);
            }
        }
    }
}

/// One `KEY=VALUE` token borrowed from a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawToken<'a> {
    /// The keyword (never quoted, never escaped).
    pub key: &'a str,
    /// The value, possibly still carrying escapes.
    pub value: RawValue<'a>,
}

/// Whether the ASCII byte is whitespace in the `char::is_whitespace`
/// sense (U+0009..U+000D and space).
#[inline]
fn is_ascii_ws(b: u8) -> bool {
    matches!(b, b'\t'..=b'\r' | b' ')
}

/// Byte width of the UTF-8 character starting at `i` (must be a char
/// boundary of a valid str).
#[inline]
fn char_width(s: &str, i: usize) -> usize {
    let b = s.as_bytes()[i];
    if b < 0x80 {
        1
    } else if b < 0xE0 {
        2
    } else if b < 0xF0 {
        3
    } else {
        4
    }
}

/// If the character starting at byte `i` is whitespace, its byte width.
/// ASCII is answered from the byte alone; multi-byte characters are
/// decoded to preserve exact `char::is_whitespace` semantics (U+0085,
/// U+2028, ... are separators to the allocating oracle too).
#[inline]
fn ws_width(s: &str, i: usize) -> Option<usize> {
    let b = s.as_bytes()[i];
    if b < 0x80 {
        return is_ascii_ws(b).then_some(1);
    }
    let c = s[i..].chars().next()?;
    c.is_whitespace().then(|| c.len_utf8())
}

/// Tokenize a ULM line without allocating: an iterator of borrowed
/// [`RawToken`]s. Stops after the first error (further `next` calls
/// return `None`).
///
/// Differentially tested against the allocating [`tokenize`]: both paths
/// produce the same pairs and the same first error on every input.
pub fn tokenize_bytes(line: &str) -> TokenIter<'_> {
    TokenIter {
        line,
        pos: 0,
        failed: false,
    }
}

/// Iterator state for [`tokenize_bytes`].
#[derive(Debug, Clone)]
pub struct TokenIter<'a> {
    line: &'a str,
    pos: usize,
    failed: bool,
}

impl<'a> TokenIter<'a> {
    fn fail(&mut self, e: UlmError) -> Option<Result<RawToken<'a>, UlmError>> {
        self.failed = true;
        Some(Err(e))
    }
}

impl<'a> Iterator for TokenIter<'a> {
    type Item = Result<RawToken<'a>, UlmError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        // The scan loops branch on the raw byte first and fall back to
        // `ws_width`/`char_width` only for non-ASCII, so the dominant
        // all-ASCII case runs a couple of instructions per byte.
        let line = self.line;
        let bytes = line.as_bytes();
        let len = bytes.len();
        let mut i = self.pos;
        // Inter-token whitespace.
        loop {
            if i >= len {
                self.pos = i;
                return None;
            }
            let b = bytes[i];
            if b < 0x80 {
                if !is_ascii_ws(b) {
                    break;
                }
                i += 1;
            } else {
                match ws_width(line, i) {
                    Some(n) => i += n,
                    None => break,
                }
            }
        }
        // Key: up to `=`, whitespace, or end of line.
        let key_start = i;
        let mut saw_eq = false;
        let mut key_end = len;
        while i < len {
            let b = bytes[i];
            if b == b'=' {
                saw_eq = true;
                key_end = i;
                i += 1;
                break;
            }
            if b < 0x80 {
                if is_ascii_ws(b) {
                    key_end = i;
                    break;
                }
                i += 1;
            } else if ws_width(line, i).is_some() {
                key_end = i;
                break;
            } else {
                i += char_width(line, i);
            }
        }
        let key = &line[key_start..key_end];
        if !saw_eq || key.is_empty() {
            return self.fail(UlmError::Malformed(key.to_string()));
        }
        // Value: quoted (with escapes) or bare up to whitespace.
        if i < len && bytes[i] == b'"' {
            i += 1;
            let val_start = i;
            let mut escaped = false;
            loop {
                if i >= len {
                    return self.fail(UlmError::UnterminatedQuote);
                }
                let b = bytes[i];
                if b == b'"' {
                    break;
                }
                if b == b'\\' {
                    escaped = true;
                    i += 1;
                    if i >= len {
                        return self.fail(UlmError::UnterminatedQuote);
                    }
                    i += char_width(line, i);
                } else if b < 0x80 {
                    i += 1;
                } else {
                    i += char_width(line, i);
                }
            }
            let raw = &line[val_start..i];
            i += 1; // closing quote
            self.pos = i;
            Some(Ok(RawToken {
                key,
                value: RawValue { raw, escaped },
            }))
        } else {
            let val_start = i;
            while i < len {
                let b = bytes[i];
                if b < 0x80 {
                    if is_ascii_ws(b) {
                        break;
                    }
                    i += 1;
                } else if ws_width(line, i).is_some() {
                    break;
                } else {
                    i += char_width(line, i);
                }
            }
            self.pos = i;
            Some(Ok(RawToken {
                key,
                value: RawValue {
                    raw: &line[val_start..i],
                    escaped: false,
                },
            }))
        }
    }
}

/// Reusable scratch state for [`decode_borrowed`]: a string arena that
/// backs escape-expanded field values. One scratch serves a whole
/// document — it is cleared per line, and only lines that actually
/// contain escapes touch it at all.
#[derive(Debug, Default)]
pub struct DecodeScratch {
    arena: String,
}

impl DecodeScratch {
    /// A fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A decoded transfer record whose string fields borrow from the source
/// line (or the [`DecodeScratch`] arena when escapes were expanded).
/// The borrowed twin of [`TransferRecord`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferRecordRef<'a> {
    /// Remote endpoint address.
    pub source: &'a str,
    /// Logging server hostname.
    pub host: &'a str,
    /// File path.
    pub file_name: &'a str,
    /// File size in bytes.
    pub file_size: u64,
    /// Logical volume.
    pub volume: &'a str,
    /// Start timestamp (Unix seconds).
    pub start_unix: u64,
    /// End timestamp (Unix seconds).
    pub end_unix: u64,
    /// Total transfer seconds.
    pub total_time_s: f64,
    /// Parallel stream count.
    pub streams: u32,
    /// TCP buffer bytes.
    pub tcp_buffer: u64,
    /// Operation direction.
    pub operation: Operation,
}

impl TransferRecordRef<'_> {
    /// End-to-end bandwidth in KB/s — same definition as
    /// [`TransferRecord::bandwidth_kbs`].
    pub fn bandwidth_kbs(&self) -> f64 {
        if self.total_time_s <= 0.0 {
            return 0.0;
        }
        self.file_size as f64 / self.total_time_s / 1_000.0
    }

    /// Materialise an owned [`TransferRecord`].
    pub fn to_owned(&self) -> TransferRecord {
        TransferRecord {
            source: self.source.to_string(),
            host: self.host.to_string(),
            file_name: self.file_name.to_string(),
            file_size: self.file_size,
            volume: self.volume.to_string(),
            start_unix: self.start_unix,
            end_unix: self.end_unix,
            total_time_s: self.total_time_s,
            streams: self.streams,
            tcp_buffer: self.tcp_buffer,
            operation: self.operation,
        }
    }
}

/// A string field's location before the arena is frozen: still on the
/// line, or a span of the arena (escape-expanded).
#[derive(Clone, Copy)]
enum Sp<'a> {
    Line(&'a str),
    Arena(usize, usize),
}

fn field_span<'a>(
    v: Option<RawValue<'a>>,
    key: &'static str,
    arena: &mut String,
) -> Result<Sp<'a>, UlmError> {
    let v = v.ok_or(UlmError::MissingKey(key))?;
    if !v.escaped {
        return Ok(Sp::Line(v.raw));
    }
    let mark = arena.len();
    v.unescape_into(arena);
    Ok(Sp::Arena(mark, arena.len()))
}

fn field_num<T: std::str::FromStr>(
    v: Option<RawValue<'_>>,
    key: &'static str,
) -> Result<T, UlmError> {
    let v = v.ok_or(UlmError::MissingKey(key))?;
    let text = v.unescaped();
    text.parse()
        .map_err(|_| UlmError::BadValue(key, text.into_owned()))
}

/// `str::parse::<u64>` fast path: up to `max_digits` ASCII digits — the
/// only shape the encoder emits. `max_digits` must be chosen so the
/// accumulator cannot overflow (19 for u64, 9 for u32). Anything else
/// returns `None` and the caller falls back to std parsing, so the
/// accepted language is exactly `FromStr`'s.
#[inline]
fn parse_digits_fast(s: &str, max_digits: usize) -> Option<u64> {
    let b = s.as_bytes();
    if b.is_empty() || b.len() > max_digits {
        return None;
    }
    let mut v: u64 = 0;
    for &d in b {
        if !d.is_ascii_digit() {
            return None;
        }
        v = v * 10 + (d - b'0') as u64;
    }
    Some(v)
}

fn field_u64(v: Option<RawValue<'_>>, key: &'static str) -> Result<u64, UlmError> {
    if let Some(rv) = v {
        if !rv.escaped {
            if let Some(n) = parse_digits_fast(rv.raw, 19) {
                return Ok(n);
            }
        }
    }
    field_num(v, key)
}

fn field_u32(v: Option<RawValue<'_>>, key: &'static str) -> Result<u32, UlmError> {
    if let Some(rv) = v {
        if !rv.escaped {
            if let Some(n) = parse_digits_fast(rv.raw, 9) {
                return Ok(n as u32);
            }
        }
    }
    field_num(v, key)
}

/// Parse one ULM line into a borrowed [`TransferRecordRef`] — the
/// zero-copy hot path. No allocation occurs unless the line contains
/// escape sequences (then the expansion lands in `scratch`'s arena) or
/// unknown keywords (tracked for duplicate detection).
///
/// Differentially tested against the allocating oracle [`decode`]: both
/// paths produce the same record or the same error on every line.
pub fn decode_borrowed<'a>(
    line: &'a str,
    scratch: &'a mut DecodeScratch,
) -> Result<TransferRecordRef<'a>, UlmError> {
    scratch.arena.clear();
    let mut slots: [Option<RawValue<'a>>; UlmKey::COUNT] = [None; UlmKey::COUNT];
    let mut unknown: Vec<&'a str> = Vec::new();
    let mut dup: Option<&'a str> = None;
    // Canonical error order, step 1+2: consume every token so a
    // tokenizer error anywhere on the line wins over an earlier
    // duplicate (exactly what the oracle's tokenize-then-check does).
    for tok in tokenize_bytes(line) {
        let tok = tok?;
        match UlmKey::intern(tok.key) {
            Some(k) => {
                let slot = &mut slots[k as usize];
                if slot.is_some() {
                    dup.get_or_insert(tok.key);
                } else {
                    *slot = Some(tok.value);
                }
            }
            None => {
                if unknown.contains(&tok.key) {
                    dup.get_or_insert(tok.key);
                } else {
                    unknown.push(tok.key);
                }
            }
        }
    }
    if let Some(k) = dup {
        return Err(UlmError::Malformed(format!("duplicate key {k}")));
    }
    // Step 3: a present-but-corrupt BW field (value unparsable or
    // non-finite) marks the line damaged even though BW is derived.
    if let Some(v) = slots[UlmKey::Bw as usize] {
        let bw: f64 = field_num(Some(v), keys::BW)?;
        if !bw.is_finite() {
            return Err(UlmError::BadValue(keys::BW, v.unescaped().into_owned()));
        }
    }
    // Step 4: the operation.
    let operation = {
        let v = slots[UlmKey::Op as usize].ok_or(UlmError::MissingKey(keys::OP))?;
        let text = v.unescaped();
        Operation::parse(&text).ok_or_else(|| UlmError::BadValue(keys::OP, text.into_owned()))?
    };
    // Step 5: remaining fields in record-declaration order.
    let arena = &mut scratch.arena;
    let source = field_span(slots[UlmKey::Src as usize], keys::SRC, arena)?;
    let host = field_span(slots[UlmKey::Host as usize], keys::HOST, arena)?;
    let file_name = field_span(slots[UlmKey::File as usize], keys::FILE, arena)?;
    let file_size = field_u64(slots[UlmKey::Size as usize], keys::SIZE)?;
    let volume = field_span(slots[UlmKey::Vol as usize], keys::VOL, arena)?;
    let start_unix = field_u64(slots[UlmKey::Start as usize], keys::START)?;
    let end_unix = field_u64(slots[UlmKey::End as usize], keys::END)?;
    let total_time_s: f64 = field_num(slots[UlmKey::Secs as usize], keys::SECS)?;
    let streams = field_u32(slots[UlmKey::Streams as usize], keys::STREAMS)?;
    let tcp_buffer = field_u64(slots[UlmKey::Buf as usize], keys::BUF)?;

    let arena: &'a str = scratch.arena.as_str();
    let resolve = |sp: Sp<'a>| -> &'a str {
        match sp {
            Sp::Line(s) => s,
            Sp::Arena(a, b) => &arena[a..b],
        }
    };
    Ok(TransferRecordRef {
        source: resolve(source),
        host: resolve(host),
        file_name: resolve(file_name),
        file_size,
        volume: resolve(volume),
        start_unix,
        end_unix,
        total_time_s,
        streams,
        tcp_buffer,
        operation,
    })
}

/// Parse one ULM line into a [`TransferRecord`].
///
/// This is the allocating reference decoder — the differential oracle
/// for [`decode_borrowed`]. Production loading goes through the borrowed
/// path; this one stays because it is short enough to audit by eye.
pub fn decode(line: &str) -> Result<TransferRecord, UlmError> {
    let pairs = tokenize(line)?;
    // Duplicate keys are ambiguous: which occurrence is the record? A
    // deterministic, salvage-quarantinable error beats silently taking
    // the first.
    for i in 1..pairs.len() {
        if pairs[..i].iter().any(|(k, _)| k == &pairs[i].0) {
            return Err(UlmError::Malformed(format!("duplicate key {}", pairs[i].0)));
        }
    }
    let get = |k: &'static str| -> Result<&str, UlmError> {
        pairs
            .iter()
            .find(|(key, _)| key == k)
            .map(|(_, v)| v.as_str())
            .ok_or(UlmError::MissingKey(k))
    };
    let parse_u64 = |k: &'static str| -> Result<u64, UlmError> {
        get(k)?
            .parse()
            .map_err(|_| UlmError::BadValue(k, get(k).unwrap_or("").to_string()))
    };
    let parse_u32 = |k: &'static str| -> Result<u32, UlmError> {
        get(k)?
            .parse()
            .map_err(|_| UlmError::BadValue(k, get(k).unwrap_or("").to_string()))
    };
    let parse_f64 = |k: &'static str| -> Result<f64, UlmError> {
        get(k)?
            .parse()
            .map_err(|_| UlmError::BadValue(k, get(k).unwrap_or("").to_string()))
    };

    // BW_KBS is derived from SIZE/SECS at encode time and recomputed on
    // demand after reload, so its value is not stored — but a present,
    // unparsable or non-finite BW field means the line is corrupt, not
    // merely stale (chaos-corrupted lines must not pass as `NaN`/`inf`).
    if let Ok(bw) = get(keys::BW) {
        let parsed: f64 = bw
            .parse()
            .map_err(|_| UlmError::BadValue(keys::BW, bw.to_string()))?;
        if !parsed.is_finite() {
            return Err(UlmError::BadValue(keys::BW, bw.to_string()));
        }
    }

    let op_str = get(keys::OP)?;
    let operation =
        Operation::parse(op_str).ok_or_else(|| UlmError::BadValue(keys::OP, op_str.to_string()))?;

    Ok(TransferRecord {
        source: get(keys::SRC)?.to_string(),
        host: get(keys::HOST)?.to_string(),
        file_name: get(keys::FILE)?.to_string(),
        file_size: parse_u64(keys::SIZE)?,
        volume: get(keys::VOL)?.to_string(),
        start_unix: parse_u64(keys::START)?,
        end_unix: parse_u64(keys::END)?,
        total_time_s: parse_f64(keys::SECS)?,
        streams: parse_u32(keys::STREAMS)?,
        tcp_buffer: parse_u64(keys::BUF)?,
        operation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::sample_record;

    #[test]
    fn encode_decode_roundtrip() {
        let r = sample_record();
        let line = encode(&r);
        let back = decode(&line).unwrap();
        assert_eq!(r.source, back.source);
        assert_eq!(r.file_size, back.file_size);
        assert_eq!(r.operation, back.operation);
        assert!((r.total_time_s - back.total_time_s).abs() < 1e-3);
    }

    #[test]
    fn entry_is_under_512_bytes() {
        // The paper: "Each log entry is well under 512 bytes."
        let line = encode(&sample_record());
        assert!(line.len() < 512, "entry {} bytes", line.len());
    }

    #[test]
    fn quoted_values_roundtrip() {
        let mut r = sample_record();
        r.file_name = "/home/ftp/with space/10 MB".to_string();
        r.volume = "/home/f\"tp".to_string();
        let line = encode(&r);
        let back = decode(&line).unwrap();
        assert_eq!(back.file_name, r.file_name);
        assert_eq!(back.volume, r.volume);
    }

    #[test]
    fn newline_in_file_name_stays_on_one_line() {
        // Regression: a file name containing a newline used to split the
        // record across two physical lines, corrupting CRC framing.
        let mut r = sample_record();
        r.file_name = "/evil/na\nme\rwith\u{0085}breaks".to_string();
        let line = encode(&r);
        assert_eq!(line.lines().count(), 1, "{line:?}");
        assert!(!line.contains('\n'));
        assert!(!line.contains('\r'));
        let back = decode(&line).unwrap();
        assert_eq!(back.file_name, r.file_name);
    }

    #[test]
    fn control_characters_roundtrip() {
        let mut r = sample_record();
        r.volume = "a\u{0}b\u{7}c\td".to_string();
        let line = encode(&r);
        assert_eq!(decode(&line).unwrap().volume, r.volume);
        let mut scratch = DecodeScratch::new();
        assert_eq!(
            decode_borrowed(&line, &mut scratch).unwrap().volume,
            r.volume
        );
    }

    #[test]
    fn tokenize_handles_plain_pairs() {
        let toks = tokenize("A=1 B=two C=3.5").unwrap();
        assert_eq!(
            toks,
            vec![
                ("A".into(), "1".into()),
                ("B".into(), "two".into()),
                ("C".into(), "3.5".into())
            ]
        );
    }

    #[test]
    fn tokenize_bytes_agrees_on_plain_pairs() {
        let toks: Vec<_> = tokenize_bytes("A=1 B=\"t o\" C=3.5")
            .map(|t| t.unwrap())
            .map(|t| (t.key.to_string(), t.value.unescaped().into_owned()))
            .collect();
        assert_eq!(
            toks,
            vec![
                ("A".into(), "1".into()),
                ("B".into(), "t o".into()),
                ("C".into(), "3.5".into())
            ]
        );
    }

    #[test]
    fn tokenize_rejects_missing_equals() {
        assert!(matches!(tokenize("JUNK"), Err(UlmError::Malformed(_))));
        assert!(matches!(
            tokenize_bytes("JUNK").next(),
            Some(Err(UlmError::Malformed(_)))
        ));
    }

    #[test]
    fn tokenize_rejects_unterminated_quote() {
        assert!(matches!(
            tokenize("A=\"open"),
            Err(UlmError::UnterminatedQuote)
        ));
        assert!(matches!(
            tokenize_bytes("A=\"open").next(),
            Some(Err(UlmError::UnterminatedQuote))
        ));
    }

    #[test]
    fn token_iter_fuses_after_error() {
        let mut it = tokenize_bytes("A=1 JUNK B=2");
        assert!(it.next().unwrap().is_ok());
        assert!(it.next().unwrap().is_err());
        assert!(it.next().is_none());
    }

    #[test]
    fn decode_reports_missing_keys() {
        assert!(matches!(
            decode("SRC=1.2.3.4"),
            Err(UlmError::MissingKey(_))
        ));
    }

    #[test]
    fn decode_reports_bad_numbers() {
        let mut line = encode(&sample_record());
        line = line.replace("SIZE=10240000", "SIZE=ten");
        assert!(matches!(decode(&line), Err(UlmError::BadValue("SIZE", _))));
    }

    #[test]
    fn decode_reports_bad_operation() {
        let line = encode(&sample_record()).replace("OP=Read", "OP=Levitate");
        assert!(matches!(decode(&line), Err(UlmError::BadValue("OP", _))));
    }

    #[test]
    fn decode_rejects_non_finite_bandwidth() {
        // Regression: `BW=NaN`/`BW=inf` parse as valid f64 and used to
        // slip past the corrupt-BW guard.
        for bad in ["NaN", "inf", "-inf", "infinity"] {
            let line = encode(&sample_record()).replace("BW_KBS=2560.0", &format!("BW_KBS={bad}"));
            assert!(
                matches!(decode(&line), Err(UlmError::BadValue("BW_KBS", _))),
                "BW={bad} must be rejected"
            );
            let mut scratch = DecodeScratch::new();
            assert!(
                matches!(
                    decode_borrowed(&line, &mut scratch),
                    Err(UlmError::BadValue("BW_KBS", _))
                ),
                "borrowed path must reject BW={bad} too"
            );
        }
    }

    #[test]
    fn decode_rejects_duplicate_keys() {
        // Regression: a duplicated key used to silently resolve to the
        // first occurrence — ambiguous records now fail deterministically.
        let line = format!("{} SIZE=999", encode(&sample_record()));
        let expect = Err(UlmError::Malformed("duplicate key SIZE".to_string()));
        assert_eq!(decode(&line), expect);
        let mut scratch = DecodeScratch::new();
        assert_eq!(
            decode_borrowed(&line, &mut scratch).map(|r| r.to_owned()),
            expect
        );
        // Unknown keys count too (a doubled CRC trailer is damage).
        let line = format!("{} ZZZ=1 ZZZ=2", encode(&sample_record()));
        assert!(matches!(decode(&line), Err(UlmError::Malformed(_))));
    }

    #[test]
    fn empty_value_is_quoted_and_roundtrips() {
        let mut r = sample_record();
        r.volume = String::new();
        let line = encode(&r);
        assert!(line.contains("VOL=\"\""));
        assert_eq!(decode(&line).unwrap().volume, "");
    }

    #[test]
    fn bandwidth_field_matches_derivation() {
        let line = encode(&sample_record());
        assert!(line.contains("BW_KBS=2560.0"), "{line}");
    }

    #[test]
    fn borrowed_decode_matches_oracle_on_sample() {
        let line = encode(&sample_record());
        let oracle = decode(&line).unwrap();
        let mut scratch = DecodeScratch::new();
        let fast = decode_borrowed(&line, &mut scratch).unwrap();
        assert_eq!(fast.to_owned(), oracle);
        assert!((fast.bandwidth_kbs() - oracle.bandwidth_kbs()).abs() < 1e-12);
    }

    #[test]
    fn borrowed_decode_borrows_from_the_line_when_unescaped() {
        let line = encode(&sample_record());
        let mut scratch = DecodeScratch::new();
        let fast = decode_borrowed(&line, &mut scratch).unwrap();
        // No escapes in the sample: fields alias the line buffer.
        let line_range = line.as_ptr() as usize..line.as_ptr() as usize + line.len();
        assert!(line_range.contains(&(fast.host.as_ptr() as usize)));
    }

    #[test]
    fn scratch_is_reusable_across_lines() {
        let mut escaped = sample_record();
        escaped.file_name = "a\"b\nc".to_string();
        let lines = [encode(&sample_record()), encode(&escaped)];
        let mut scratch = DecodeScratch::new();
        for line in &lines {
            let fast = decode_borrowed(line, &mut scratch).unwrap();
            assert_eq!(fast.to_owned(), decode(line).unwrap());
        }
    }

    #[test]
    fn interned_keys_cover_the_schema() {
        for k in [
            keys::SRC,
            keys::HOST,
            keys::FILE,
            keys::SIZE,
            keys::VOL,
            keys::START,
            keys::END,
            keys::SECS,
            keys::BW,
            keys::OP,
            keys::STREAMS,
            keys::BUF,
        ] {
            let interned = UlmKey::intern(k).expect("schema key must intern");
            assert_eq!(interned.name(), k);
        }
        assert_eq!(UlmKey::intern("CRC"), None);
        assert_eq!(UlmKey::intern(""), None);
    }

    #[test]
    fn unicode_whitespace_in_values_is_quoted_and_roundtrips() {
        // U+0085 NEL is whitespace to the tokenizer; unquoted it used to
        // split the value. The encoder must quote it.
        let mut r = sample_record();
        r.volume = "a\u{0085}b\u{2028}c".to_string();
        let line = encode(&r);
        assert_eq!(decode(&line).unwrap().volume, r.volume);
        let mut scratch = DecodeScratch::new();
        assert_eq!(
            decode_borrowed(&line, &mut scratch).unwrap().volume,
            r.volume
        );
    }
}
