//! Universal Logging Format (ULM) encoding of transfer records.
//!
//! The paper logs one `Keyword=Value` line per transfer (§3, citing the
//! ULM draft used by NetLogger). Values containing whitespace or `"` are
//! double-quoted with backslash escaping. Every entry is well under the
//! paper's 512-byte bound — asserted in tests and in the logging-overhead
//! benchmark.

use std::fmt::Write as _;

use crate::record::{Operation, TransferRecord};

/// Keyword names used in our GridFTP log lines.
pub mod keys {
    /// Remote endpoint address.
    pub const SRC: &str = "SRC";
    /// Logging server hostname.
    pub const HOST: &str = "HOST";
    /// File path.
    pub const FILE: &str = "FILE";
    /// File size in bytes.
    pub const SIZE: &str = "SIZE";
    /// Logical volume.
    pub const VOL: &str = "VOL";
    /// Start timestamp (Unix seconds).
    pub const START: &str = "START";
    /// End timestamp (Unix seconds).
    pub const END: &str = "END";
    /// Total transfer seconds (fractional).
    pub const SECS: &str = "SECS";
    /// Aggregate bandwidth, KB/s (derived; logged for human readers).
    pub const BW: &str = "BW_KBS";
    /// Operation direction.
    pub const OP: &str = "OP";
    /// Parallel stream count.
    pub const STREAMS: &str = "STREAMS";
    /// TCP buffer bytes.
    pub const BUF: &str = "BUF";
}

/// Errors from parsing a ULM line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UlmError {
    /// A token was not of `KEY=VALUE` form.
    Malformed(String),
    /// A quoted value was never closed.
    UnterminatedQuote,
    /// A required keyword was absent.
    MissingKey(&'static str),
    /// A value failed to parse as its expected type.
    BadValue(&'static str, String),
}

impl std::fmt::Display for UlmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UlmError::Malformed(tok) => write!(f, "malformed token {tok:?}"),
            UlmError::UnterminatedQuote => write!(f, "unterminated quote"),
            UlmError::MissingKey(k) => write!(f, "missing key {k}"),
            UlmError::BadValue(k, v) => write!(f, "bad value for {k}: {v:?}"),
        }
    }
}

impl std::error::Error for UlmError {}

/// Quote a value if it needs quoting.
fn encode_value(out: &mut String, v: &str) {
    let needs_quote = v.is_empty() || v.contains([' ', '\t', '"', '=']);
    if !needs_quote {
        out.push_str(v);
        return;
    }
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            _ => out.push(c),
        }
    }
    out.push('"');
}

/// Encode a record as one ULM line (no trailing newline).
pub fn encode(r: &TransferRecord) -> String {
    let mut s = String::with_capacity(200);
    let mut kv = |k: &str, f: &mut dyn FnMut(&mut String)| {
        if !s.is_empty() {
            s.push(' ');
        }
        s.push_str(k);
        s.push('=');
        f(&mut s);
    };
    kv(keys::SRC, &mut |o| encode_value(o, &r.source));
    kv(keys::HOST, &mut |o| encode_value(o, &r.host));
    kv(keys::FILE, &mut |o| encode_value(o, &r.file_name));
    kv(keys::SIZE, &mut |o| {
        let _ = write!(o, "{}", r.file_size);
    });
    kv(keys::VOL, &mut |o| encode_value(o, &r.volume));
    kv(keys::START, &mut |o| {
        let _ = write!(o, "{}", r.start_unix);
    });
    kv(keys::END, &mut |o| {
        let _ = write!(o, "{}", r.end_unix);
    });
    kv(keys::SECS, &mut |o| {
        // Shortest round-trip form: reloading a log must reproduce the
        // original record bit-for-bit, so no fixed-precision rounding.
        let _ = write!(o, "{}", r.total_time_s);
    });
    kv(keys::BW, &mut |o| {
        let _ = write!(o, "{:.1}", r.bandwidth_kbs());
    });
    kv(keys::OP, &mut |o| o.push_str(r.operation.as_str()));
    kv(keys::STREAMS, &mut |o| {
        let _ = write!(o, "{}", r.streams);
    });
    kv(keys::BUF, &mut |o| {
        let _ = write!(o, "{}", r.tcp_buffer);
    });
    s
}

/// Split a ULM line into `(key, value)` pairs, handling quoting.
pub fn tokenize(line: &str) -> Result<Vec<(String, String)>, UlmError> {
    let mut out = Vec::new();
    let mut chars = line.chars().peekable();
    loop {
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
        if chars.peek().is_none() {
            break;
        }
        let mut key = String::new();
        let mut saw_eq = false;
        for c in chars.by_ref() {
            if c == '=' {
                saw_eq = true;
                break;
            }
            if c.is_whitespace() {
                break;
            }
            key.push(c);
        }
        if !saw_eq || key.is_empty() {
            return Err(UlmError::Malformed(key));
        }
        let mut val = String::new();
        if chars.peek() == Some(&'"') {
            chars.next();
            let mut closed = false;
            while let Some(c) = chars.next() {
                match c {
                    '\\' => match chars.next() {
                        Some(e) => val.push(e),
                        None => return Err(UlmError::UnterminatedQuote),
                    },
                    '"' => {
                        closed = true;
                        break;
                    }
                    _ => val.push(c),
                }
            }
            if !closed {
                return Err(UlmError::UnterminatedQuote);
            }
        } else {
            while let Some(&c) = chars.peek() {
                if c.is_whitespace() {
                    break;
                }
                val.push(c);
                chars.next();
            }
        }
        out.push((key, val));
    }
    Ok(out)
}

/// Parse one ULM line into a [`TransferRecord`].
pub fn decode(line: &str) -> Result<TransferRecord, UlmError> {
    let pairs = tokenize(line)?;
    let get = |k: &'static str| -> Result<&str, UlmError> {
        pairs
            .iter()
            .find(|(key, _)| key == k)
            .map(|(_, v)| v.as_str())
            .ok_or(UlmError::MissingKey(k))
    };
    let parse_u64 = |k: &'static str| -> Result<u64, UlmError> {
        get(k)?
            .parse()
            .map_err(|_| UlmError::BadValue(k, get(k).unwrap_or("").to_string()))
    };
    let parse_u32 = |k: &'static str| -> Result<u32, UlmError> {
        get(k)?
            .parse()
            .map_err(|_| UlmError::BadValue(k, get(k).unwrap_or("").to_string()))
    };
    let parse_f64 = |k: &'static str| -> Result<f64, UlmError> {
        get(k)?
            .parse()
            .map_err(|_| UlmError::BadValue(k, get(k).unwrap_or("").to_string()))
    };

    // BW_KBS is derived from SIZE/SECS at encode time and recomputed on
    // demand after reload, so its value is not stored — but a present,
    // unparsable BW field means the line is corrupt, not merely stale.
    if let Ok(bw) = get(keys::BW) {
        bw.parse::<f64>()
            .map_err(|_| UlmError::BadValue(keys::BW, bw.to_string()))?;
    }

    let op_str = get(keys::OP)?;
    let operation =
        Operation::parse(op_str).ok_or_else(|| UlmError::BadValue(keys::OP, op_str.to_string()))?;

    Ok(TransferRecord {
        source: get(keys::SRC)?.to_string(),
        host: get(keys::HOST)?.to_string(),
        file_name: get(keys::FILE)?.to_string(),
        file_size: parse_u64(keys::SIZE)?,
        volume: get(keys::VOL)?.to_string(),
        start_unix: parse_u64(keys::START)?,
        end_unix: parse_u64(keys::END)?,
        total_time_s: parse_f64(keys::SECS)?,
        streams: parse_u32(keys::STREAMS)?,
        tcp_buffer: parse_u64(keys::BUF)?,
        operation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::sample_record;

    #[test]
    fn encode_decode_roundtrip() {
        let r = sample_record();
        let line = encode(&r);
        let back = decode(&line).unwrap();
        assert_eq!(r.source, back.source);
        assert_eq!(r.file_size, back.file_size);
        assert_eq!(r.operation, back.operation);
        assert!((r.total_time_s - back.total_time_s).abs() < 1e-3);
    }

    #[test]
    fn entry_is_under_512_bytes() {
        // The paper: "Each log entry is well under 512 bytes."
        let line = encode(&sample_record());
        assert!(line.len() < 512, "entry {} bytes", line.len());
    }

    #[test]
    fn quoted_values_roundtrip() {
        let mut r = sample_record();
        r.file_name = "/home/ftp/with space/10 MB".to_string();
        r.volume = "/home/f\"tp".to_string();
        let line = encode(&r);
        let back = decode(&line).unwrap();
        assert_eq!(back.file_name, r.file_name);
        assert_eq!(back.volume, r.volume);
    }

    #[test]
    fn tokenize_handles_plain_pairs() {
        let toks = tokenize("A=1 B=two C=3.5").unwrap();
        assert_eq!(
            toks,
            vec![
                ("A".into(), "1".into()),
                ("B".into(), "two".into()),
                ("C".into(), "3.5".into())
            ]
        );
    }

    #[test]
    fn tokenize_rejects_missing_equals() {
        assert!(matches!(tokenize("JUNK"), Err(UlmError::Malformed(_))));
    }

    #[test]
    fn tokenize_rejects_unterminated_quote() {
        assert!(matches!(
            tokenize("A=\"open"),
            Err(UlmError::UnterminatedQuote)
        ));
    }

    #[test]
    fn decode_reports_missing_keys() {
        assert!(matches!(
            decode("SRC=1.2.3.4"),
            Err(UlmError::MissingKey(_))
        ));
    }

    #[test]
    fn decode_reports_bad_numbers() {
        let mut line = encode(&sample_record());
        line = line.replace("SIZE=10240000", "SIZE=ten");
        assert!(matches!(decode(&line), Err(UlmError::BadValue("SIZE", _))));
    }

    #[test]
    fn decode_reports_bad_operation() {
        let line = encode(&sample_record()).replace("OP=Read", "OP=Levitate");
        assert!(matches!(decode(&line), Err(UlmError::BadValue("OP", _))));
    }

    #[test]
    fn empty_value_is_quoted_and_roundtrips() {
        let mut r = sample_record();
        r.volume = String::new();
        let line = encode(&r);
        assert!(line.contains("VOL=\"\""));
        assert_eq!(decode(&line).unwrap().volume, "");
    }

    #[test]
    fn bandwidth_field_matches_derivation() {
        let line = encode(&sample_record());
        assert!(line.contains("BW_KBS=2560.0"), "{line}");
    }
}
