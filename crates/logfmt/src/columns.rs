//! Structure-of-arrays transfer storage: the whole-log twin of the
//! zero-copy decoder.
//!
//! [`TransferColumns`] keeps every record field in its own dense column
//! and every string field as a `(start, end)` span into one shared
//! arena. Campaign logs repeat their string fields heavily (one server
//! host, a handful of sources and volumes, generated file names), so a
//! run-length dedup against the previous row keeps the arena tiny and
//! the parse loop allocation-free in the steady state. Parsing a
//! document this way does two large-ish allocations total (arena +
//! columns, both amortised by `with_capacity`-style growth) instead of
//! roughly thirty small ones per line.
//!
//! The row view is [`TransferRecordRef`]; [`TransferColumns::to_log`]
//! materialises an owned [`TransferLog`] for callers that need one.

use crate::log::{LogError, TransferLog};
use crate::record::{Operation, TransferRecord};
use crate::ulm::{decode_borrowed, DecodeScratch, TransferRecordRef};

/// A transfer log stored column-wise over a string arena.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TransferColumns {
    arena: String,
    source: Vec<(usize, usize)>,
    host: Vec<(usize, usize)>,
    file_name: Vec<(usize, usize)>,
    volume: Vec<(usize, usize)>,
    file_size: Vec<u64>,
    start_unix: Vec<u64>,
    end_unix: Vec<u64>,
    total_time_s: Vec<f64>,
    streams: Vec<u32>,
    tcp_buffer: Vec<u64>,
    operation: Vec<Operation>,
}

/// Append `s` to a span column, reusing the previous row's arena span
/// when the value repeats (the dominant case in real logs).
fn push_span(arena: &mut String, col: &mut Vec<(usize, usize)>, s: &str) {
    if let Some(&(a, b)) = col.last() {
        if &arena[a..b] == s {
            col.push((a, b));
            return;
        }
    }
    let a = arena.len();
    arena.push_str(s);
    col.push((a, arena.len()));
}

impl TransferColumns {
    /// Empty columns.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.start_unix.len()
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.start_unix.is_empty()
    }

    /// Bytes held by the string arena (diagnostics; with dedup this is
    /// far below the sum of field lengths).
    pub fn arena_len(&self) -> usize {
        self.arena.len()
    }

    /// Append one borrowed record.
    pub fn push_ref(&mut self, r: &TransferRecordRef<'_>) {
        push_span(&mut self.arena, &mut self.source, r.source);
        push_span(&mut self.arena, &mut self.host, r.host);
        push_span(&mut self.arena, &mut self.file_name, r.file_name);
        push_span(&mut self.arena, &mut self.volume, r.volume);
        self.file_size.push(r.file_size);
        self.start_unix.push(r.start_unix);
        self.end_unix.push(r.end_unix);
        self.total_time_s.push(r.total_time_s);
        self.streams.push(r.streams);
        self.tcp_buffer.push(r.tcp_buffer);
        self.operation.push(r.operation);
    }

    /// Append one owned record.
    pub fn push(&mut self, r: &TransferRecord) {
        push_span(&mut self.arena, &mut self.source, &r.source);
        push_span(&mut self.arena, &mut self.host, &r.host);
        push_span(&mut self.arena, &mut self.file_name, &r.file_name);
        push_span(&mut self.arena, &mut self.volume, &r.volume);
        self.file_size.push(r.file_size);
        self.start_unix.push(r.start_unix);
        self.end_unix.push(r.end_unix);
        self.total_time_s.push(r.total_time_s);
        self.streams.push(r.streams);
        self.tcp_buffer.push(r.tcp_buffer);
        self.operation.push(r.operation);
    }

    /// Row `i` as a borrowed record, or `None` past the end.
    pub fn get(&self, i: usize) -> Option<TransferRecordRef<'_>> {
        if i >= self.len() {
            return None;
        }
        let sp = |(a, b): (usize, usize)| -> &str { &self.arena[a..b] };
        Some(TransferRecordRef {
            source: sp(self.source[i]),
            host: sp(self.host[i]),
            file_name: sp(self.file_name[i]),
            file_size: self.file_size[i],
            volume: sp(self.volume[i]),
            start_unix: self.start_unix[i],
            end_unix: self.end_unix[i],
            total_time_s: self.total_time_s[i],
            streams: self.streams[i],
            tcp_buffer: self.tcp_buffer[i],
            operation: self.operation[i],
        })
    }

    /// Iterate rows as borrowed records.
    pub fn iter(&self) -> impl Iterator<Item = TransferRecordRef<'_>> + '_ {
        (0..self.len()).map(move |i| self.get(i).expect("index in range by construction"))
    }

    /// Parse a ULM document column-wise (one record per line; blank
    /// lines and `#` comments are skipped) — same grammar and same
    /// errors as [`TransferLog::from_ulm_str`], without materialising
    /// per-record strings.
    pub fn from_ulm_str(doc: &str) -> Result<Self, LogError> {
        let mut cols = TransferColumns::new();
        let mut scratch = DecodeScratch::new();
        for (i, line) in doc.lines().enumerate() {
            let t = line.trim();
            if t.is_empty() || t.starts_with('#') {
                continue;
            }
            let r = decode_borrowed(t, &mut scratch).map_err(|e| LogError::Parse(i + 1, e))?;
            cols.push_ref(&r);
        }
        Ok(cols)
    }

    /// Materialise an owned row-wise [`TransferLog`].
    pub fn to_log(&self) -> TransferLog {
        self.iter().map(|r| r.to_owned()).collect()
    }

    /// The bandwidth series `(start_unix, KB/s)` in row order.
    pub fn bandwidth_series(&self) -> Vec<(u64, f64)> {
        self.iter()
            .map(|r| (r.start_unix, r.bandwidth_kbs()))
            .collect()
    }
}

impl<'a> FromIterator<TransferRecordRef<'a>> for TransferColumns {
    fn from_iter<T: IntoIterator<Item = TransferRecordRef<'a>>>(iter: T) -> Self {
        let mut cols = TransferColumns::new();
        for r in iter {
            cols.push_ref(&r);
        }
        cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::sample_record;
    use crate::ulm::encode;

    fn log(n: u64) -> TransferLog {
        (0..n)
            .map(|i| {
                let mut r = sample_record();
                r.start_unix += i * 600;
                r.end_unix = r.start_unix + 4;
                r.file_name = format!("/data/file-{i}");
                r
            })
            .collect()
    }

    #[test]
    fn doc_roundtrip_matches_row_wise_parse() {
        let doc = log(20).to_ulm_string();
        let cols = TransferColumns::from_ulm_str(&doc).unwrap();
        assert_eq!(cols.len(), 20);
        assert_eq!(cols.to_log(), TransferLog::from_ulm_str(&doc).unwrap());
    }

    #[test]
    fn repeated_fields_share_arena_spans() {
        let doc = log(50).to_ulm_string();
        let cols = TransferColumns::from_ulm_str(&doc).unwrap();
        // host/source/volume repeat on every row; only file names differ.
        let unique: usize = sample_record().source.len()
            + sample_record().host.len()
            + sample_record().volume.len();
        let files: usize = (0..50).map(|i| format!("/data/file-{i}").len()).sum();
        assert_eq!(cols.arena_len(), unique + files);
    }

    #[test]
    fn get_is_none_past_the_end() {
        let cols = TransferColumns::from_ulm_str(&log(3).to_ulm_string()).unwrap();
        assert!(cols.get(2).is_some());
        assert!(cols.get(3).is_none());
    }

    #[test]
    fn parse_error_carries_line_number() {
        let doc = format!("{}\ngarbage line\n", encode(&sample_record()));
        match TransferColumns::from_ulm_str(&doc) {
            Err(LogError::Parse(2, _)) => {}
            other => panic!("expected parse error at line 2, got {other:?}"),
        }
    }

    #[test]
    fn bandwidth_series_matches_log() {
        let l = log(5);
        let cols = TransferColumns::from_ulm_str(&l.to_ulm_string()).unwrap();
        let a = cols.bandwidth_series();
        let b = l.bandwidth_series();
        assert_eq!(a.len(), b.len());
        for ((ta, ba), (tb, bb)) in a.iter().zip(&b) {
            assert_eq!(ta, tb);
            assert!((ba - bb).abs() < 1e-12);
        }
    }

    #[test]
    fn push_owned_and_iter_agree() {
        let l = log(4);
        let mut cols = TransferColumns::new();
        for r in l.records() {
            cols.push(r);
        }
        let back: Vec<_> = cols.iter().map(|r| r.to_owned()).collect();
        assert_eq!(back, l.records());
    }
}
