//! Property tests for the ULM codec: encoding round-trips arbitrary —
//! including actively hostile — records, encoded entries stay under the
//! paper's 512-byte bound for realistic field lengths, the decoder is
//! total on garbage, and the zero-copy borrowed path agrees with the
//! allocating oracle on every line (same pairs, same records, same
//! errors).

use proptest::prelude::*;
use wanpred_logfmt::ulm::{decode_borrowed, tokenize, tokenize_bytes, DecodeScratch, UlmError};
use wanpred_logfmt::{decode, encode, Operation, TransferColumns, TransferLog, TransferRecord};

fn arb_string() -> impl Strategy<Value = String> {
    // Printable strings including the characters that force quoting.
    proptest::string::string_regex("[ -~]{0,64}").expect("valid regex")
}

/// Characters chosen to stress every quoting/escaping decision: the
/// escape metacharacters, the key/value separators, line framing,
/// C0 controls, Unicode whitespace (which the tokenizer treats as a
/// separator), and multi-byte sequences of each UTF-8 width.
fn arb_hostile_char() -> impl Strategy<Value = char> {
    prop_oneof![
        Just('"'),
        Just('\\'),
        Just('='),
        Just(' '),
        Just('\t'),
        Just('\n'),
        Just('\r'),
        Just('\u{0}'),
        Just('\u{7}'),
        Just('\u{b}'),
        Just('\u{85}'),
        Just('\u{a0}'),
        Just('\u{2028}'),
        Just('\u{3000}'),
        Just('é'),
        Just('漢'),
        Just('🚀'),
        (33u32..127).prop_map(|b| char::from_u32(b).expect("printable ascii")),
    ]
}

fn arb_hostile_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(arb_hostile_char(), 0..24).prop_map(|v| v.into_iter().collect())
}

fn record_from(
    (source, host, file_name, file_size, volume, start, dur, secs, streams, buf, op): (
        String,
        String,
        String,
        u64,
        String,
        u64,
        u64,
        f64,
        u32,
        u64,
        Operation,
    ),
) -> TransferRecord {
    TransferRecord {
        source,
        host,
        file_name,
        file_size,
        volume,
        start_unix: start,
        end_unix: start + dur,
        total_time_s: secs,
        streams,
        tcp_buffer: buf,
        operation: op,
    }
}

fn arb_record() -> impl Strategy<Value = TransferRecord> {
    (
        arb_string(),
        arb_string(),
        arb_string(),
        any::<u64>(),
        arb_string(),
        0u64..=2_000_000_000,
        0u64..=10_000,
        0.0f64..1e6,
        1u32..=64,
        any::<u64>(),
        prop_oneof![Just(Operation::Read), Just(Operation::Write)],
    )
        .prop_map(record_from)
}

fn arb_hostile_record() -> impl Strategy<Value = TransferRecord> {
    (
        arb_hostile_string(),
        arb_hostile_string(),
        arb_hostile_string(),
        any::<u64>(),
        arb_hostile_string(),
        0u64..=2_000_000_000,
        0u64..=10_000,
        0.0f64..1e6,
        1u32..=64,
        any::<u64>(),
        prop_oneof![Just(Operation::Read), Just(Operation::Write)],
    )
        .prop_map(record_from)
}

/// Exact-field comparison for a record round trip (SECS goes through
/// shortest round-trip Display, so it is byte-exact too).
fn assert_roundtrip(r: &TransferRecord, back: &TransferRecord) {
    assert_eq!(back.source, r.source);
    assert_eq!(back.host, r.host);
    assert_eq!(back.file_name, r.file_name);
    assert_eq!(back.file_size, r.file_size);
    assert_eq!(back.volume, r.volume);
    assert_eq!(back.start_unix, r.start_unix);
    assert_eq!(back.end_unix, r.end_unix);
    assert_eq!(back.streams, r.streams);
    assert_eq!(back.tcp_buffer, r.tcp_buffer);
    assert_eq!(back.operation, r.operation);
}

/// Run both tokenizers and both decoders over one line; assert exact
/// agreement (pairs + errors, record + errors), returning the oracle
/// decode result.
fn assert_paths_agree(line: &str) -> Result<TransferRecord, UlmError> {
    // Tokenizer level.
    let oracle_toks = tokenize(line);
    let mut fast_toks: Result<Vec<(String, String)>, UlmError> = Ok(Vec::new());
    for t in tokenize_bytes(line) {
        match t {
            Ok(tok) => {
                if let Ok(v) = fast_toks.as_mut() {
                    v.push((tok.key.to_string(), tok.value.unescaped().into_owned()));
                }
            }
            Err(e) => {
                fast_toks = Err(e);
                break;
            }
        }
    }
    assert_eq!(oracle_toks, fast_toks, "tokenizers diverged on {line:?}");

    // Decoder level.
    let oracle = decode(line);
    let mut scratch = DecodeScratch::new();
    let fast = decode_borrowed(line, &mut scratch).map(|r| r.to_owned());
    assert_eq!(oracle, fast, "decoders diverged on {line:?}");
    oracle
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(r in arb_record()) {
        let line = encode(&r);
        let back = decode(&line).expect("own encoding must parse");
        assert_roundtrip(&r, &back);
        prop_assert!((back.total_time_s - r.total_time_s).abs() <= 0.0005 * (1.0 + r.total_time_s.abs()));
    }

    #[test]
    fn hostile_roundtrip_on_both_paths(r in arb_hostile_record()) {
        let line = encode(&r);
        // Framing: hostile content must never escape the physical line.
        prop_assert!(!line.contains('\n'), "{line:?}");
        prop_assert!(!line.contains('\r'), "{line:?}");
        let back = assert_paths_agree(&line).expect("own encoding must parse");
        assert_roundtrip(&r, &back);
    }

    #[test]
    fn realistic_entries_under_512_bytes(r in arb_record()) {
        // Field generators bound strings at 64 chars (realistic paths and
        // hostnames); the paper's size claim must then hold.
        let line = encode(&r);
        prop_assert!(line.len() < 512, "{} bytes: {}", line.len(), line);
    }

    #[test]
    fn tokenizer_never_panics_on_garbage(s in "[ -~]{0,256}") {
        let _ = assert_paths_agree(&s);
    }

    #[test]
    fn decode_is_total_on_hostile_garbage(s in arb_hostile_string()) {
        // Totality + differential agreement on arbitrary hostile text
        // (not just encoder output): both paths return the same Ok/Err.
        let _ = assert_paths_agree(&s);
    }

    #[test]
    fn decode_agrees_on_near_miss_lines(r in arb_hostile_record(), salt in 0u32..6) {
        // Mutated encoder output: duplicated tokens, junk suffixes,
        // truncations — the shapes salvage actually sees.
        let line = encode(&r);
        let mutated = match salt {
            0 => format!("{line} SIZE=1"),
            1 => format!("{line} JUNK"),
            2 => format!("{line} BW_KBS=NaN"),
            3 => line.chars().take(line.chars().count() / 2).collect(),
            4 => format!("  {line}  "),
            _ => format!("{line} X=\"unterminated"),
        };
        let _ = assert_paths_agree(&mutated);
    }

    #[test]
    fn document_roundtrip_row_and_column_wise(rs in proptest::collection::vec(arb_hostile_record(), 0..8)) {
        let log: TransferLog = rs.iter().cloned().collect();
        let doc = log.to_ulm_string();
        let rows = TransferLog::from_ulm_str(&doc).expect("own document parses");
        let cols = TransferColumns::from_ulm_str(&doc).expect("own document parses");
        prop_assert_eq!(rows.len(), rs.len());
        prop_assert_eq!(cols.to_log(), rows);
    }
}
