//! Property tests: ULM encoding round-trips arbitrary records, and every
//! encoded entry stays under the paper's 512-byte bound for realistic
//! field lengths.

use proptest::prelude::*;
use wanpred_logfmt::{decode, encode, Operation, TransferRecord};

fn arb_string() -> impl Strategy<Value = String> {
    // Printable strings including the characters that force quoting.
    proptest::string::string_regex("[ -~]{0,64}").expect("valid regex")
}

fn arb_record() -> impl Strategy<Value = TransferRecord> {
    (
        arb_string(),
        arb_string(),
        arb_string(),
        any::<u64>(),
        arb_string(),
        0u64..=2_000_000_000,
        0u64..=10_000,
        0.0f64..1e6,
        1u32..=64,
        any::<u64>(),
        prop_oneof![Just(Operation::Read), Just(Operation::Write)],
    )
        .prop_map(
            |(source, host, file_name, file_size, volume, start, dur, secs, streams, buf, op)| {
                TransferRecord {
                    source,
                    host,
                    file_name,
                    file_size,
                    volume,
                    start_unix: start,
                    end_unix: start + dur,
                    total_time_s: secs,
                    streams,
                    tcp_buffer: buf,
                    operation: op,
                }
            },
        )
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(r in arb_record()) {
        let line = encode(&r);
        let back = decode(&line).expect("own encoding must parse");
        prop_assert_eq!(&back.source, &r.source);
        prop_assert_eq!(&back.host, &r.host);
        prop_assert_eq!(&back.file_name, &r.file_name);
        prop_assert_eq!(back.file_size, r.file_size);
        prop_assert_eq!(&back.volume, &r.volume);
        prop_assert_eq!(back.start_unix, r.start_unix);
        prop_assert_eq!(back.end_unix, r.end_unix);
        prop_assert!((back.total_time_s - r.total_time_s).abs() <= 0.0005 * (1.0 + r.total_time_s.abs()));
        prop_assert_eq!(back.streams, r.streams);
        prop_assert_eq!(back.tcp_buffer, r.tcp_buffer);
        prop_assert_eq!(back.operation, r.operation);
    }

    #[test]
    fn realistic_entries_under_512_bytes(r in arb_record()) {
        // Field generators bound strings at 64 chars (realistic paths and
        // hostnames); the paper's size claim must then hold.
        let line = encode(&r);
        prop_assert!(line.len() < 512, "{} bytes: {}", line.len(), line);
    }

    #[test]
    fn tokenizer_never_panics_on_garbage(s in "[ -~]{0,256}") {
        let _ = wanpred_logfmt::ulm::tokenize(&s);
        let _ = decode(&s);
    }
}
