//! Property tests for the durability layer: for any log and any seeded
//! corruption, strict salvage of `corrupt(encode_checksummed(log))`
//! recovers exactly the uncorrupted records and quarantines the rest;
//! and the chaos injector itself is a deterministic function of its seed.

use proptest::prelude::*;
use wanpred_logfmt::{
    append_crc, corrupt_doc, encode, salvage_doc, ChaosConfig, Operation, SalvageOptions,
    TransferLog, TransferRecord,
};

fn arb_name() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~]{1,32}").expect("valid regex")
}

/// A record that passes `TransferRecord::validate` (strict salvage
/// re-validates, so corruption-free records must survive it).
fn arb_valid_record() -> impl Strategy<Value = TransferRecord> {
    (
        arb_name(),
        arb_name(),
        arb_name(),
        0u64..=2_000_000_000,
        1u64..=10_000,
        0.0f64..1.0,
        1u32..=64,
        any::<u64>(),
        prop_oneof![Just(Operation::Read), Just(Operation::Write)],
    )
        .prop_map(
            |(source, host, file_name, file_size, dur, skew, streams, buf, op)| TransferRecord {
                source,
                host,
                file_name,
                file_size,
                volume: "/vol".into(),
                start_unix: 0, // rewritten below to make lines distinct
                end_unix: dur,
                total_time_s: dur as f64 + skew,
                streams,
                tcp_buffer: buf,
                operation: op,
            },
        )
}

/// A log of 1..40 valid records with pairwise-distinct lines (distinct
/// start times), so the duplicate-line quarantine never fires on clean
/// input.
fn arb_log() -> impl Strategy<Value = TransferLog> {
    proptest::collection::vec(arb_valid_record(), 1..40).prop_map(|recs| {
        recs.into_iter()
            .enumerate()
            .map(|(i, mut r)| {
                let dur = r.end_unix;
                r.start_unix = 1_000_000 + i as u64 * 100;
                r.end_unix = r.start_unix + dur;
                r
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn strict_salvage_recovers_exactly_the_uncorrupted_records(
        log in arb_log(),
        rate in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let doc = log.to_ulm_string_checksummed();
        let originals: Vec<&str> = doc.lines().collect();
        let (damaged, chaos) = corrupt_doc(&doc, &ChaosConfig::new(rate, seed));
        let lost = chaos.lost_lines();

        let (salvaged, report) = salvage_doc(&damaged, &SalvageOptions::strict());

        // Exactness: the kept records are precisely the untouched
        // original lines, in order, byte for byte after re-encoding.
        let expected: Vec<&&str> = originals
            .iter()
            .enumerate()
            .filter(|(i, _)| !lost.contains(i))
            .map(|(_, l)| l)
            .collect();
        prop_assert_eq!(salvaged.len(), expected.len());
        prop_assert_eq!(report.kept, expected.len());
        for (r, line) in salvaged.records().iter().zip(&expected) {
            prop_assert_eq!(&append_crc(&encode(r)), **line);
        }
        // Quarantined lines carry in-range 1-based line numbers.
        let damaged_lines = damaged.lines().count();
        for q in &report.quarantined {
            prop_assert!(q.line >= 1 && q.line <= damaged_lines);
        }
    }

    #[test]
    fn chaos_is_a_deterministic_function_of_its_seed(
        log in arb_log(),
        rate in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let doc = log.to_ulm_string_checksummed();
        let (a, ra) = corrupt_doc(&doc, &ChaosConfig::new(rate, seed));
        let (b, rb) = corrupt_doc(&doc, &ChaosConfig::new(rate, seed));
        prop_assert_eq!(a, b);
        prop_assert_eq!(ra, rb);
    }

    #[test]
    fn lenient_salvage_of_clean_docs_is_lossless(log in arb_log()) {
        // Both vintages: sealed and legacy lines fully recovered.
        for doc in [log.to_ulm_string_checksummed(), log.to_ulm_string()] {
            let (salvaged, report) = TransferLog::salvage_ulm(&doc);
            prop_assert_eq!(salvaged.len(), log.len());
            prop_assert!(report.is_clean());
        }
    }
}
