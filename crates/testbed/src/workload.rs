//! The paper's controlled experiment workload (§6.1).
//!
//! "Logs were generated using controlled GridFTP experiments that were
//! performed daily from 6 pm to 8 am CDT, selecting a random file size
//! from the set {1M, 2M, 5M, 10M, 25M, 50M, 100M, 150M, 250M, 400M,
//! 500M, 750M, 1G} and randomly sleeping from 1 minute to 10 hours
//! between file transfers."
//!
//! The sleep distribution is truncated-exponential: the paper gives only
//! the 1 min–10 h range, and a uniform draw over it would yield ~40
//! transfers per two-week campaign where the paper reports 350–450. A
//! truncated exponential with a ~27-minute mean reproduces both the
//! stated range and Figure 7's counts; the mean is configurable.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use wanpred_simnet::rng::exponential;
use wanpred_simnet::time::{SimDuration, SimTime};
use wanpred_storage::paper_fileset;

/// Configuration of the per-pair workload generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Daily window start hour (local, 0–23). Paper: 18 (6 pm).
    pub window_start_hour: u64,
    /// Daily window end hour (local). Paper: 8 (8 am). The window wraps
    /// midnight when `end < start`.
    pub window_end_hour: u64,
    /// Minimum inter-transfer sleep. Paper: 1 minute.
    pub sleep_min: SimDuration,
    /// Maximum inter-transfer sleep. Paper: 10 hours.
    pub sleep_max: SimDuration,
    /// Mean of the (truncated) exponential sleep draw.
    pub sleep_mean: SimDuration,
    /// Parallel streams. Paper: 8.
    pub streams: u32,
    /// Per-stream TCP buffer. Paper: 1 MB.
    pub tcp_buffer: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            window_start_hour: 18,
            window_end_hour: 8,
            sleep_min: SimDuration::from_mins(1),
            sleep_max: SimDuration::from_hours(10),
            sleep_mean: SimDuration::from_secs(27 * 60),
            streams: 8,
            tcp_buffer: 1_000_000,
        }
    }
}

impl WorkloadConfig {
    /// Whether local time `t` (sim epoch = local midnight) falls inside
    /// the daily experiment window.
    pub fn in_window(&self, t: SimTime) -> bool {
        let hour = (t.as_secs() / 3_600) % 24;
        if self.window_start_hour <= self.window_end_hour {
            (self.window_start_hour..self.window_end_hour).contains(&hour)
        } else {
            hour >= self.window_start_hour || hour < self.window_end_hour
        }
    }

    /// The next instant at or after `t` that lies inside the window.
    pub fn next_window_start(&self, t: SimTime) -> SimTime {
        if self.in_window(t) {
            return t;
        }
        let secs_of_day = t.as_secs() % 86_400;
        let day_start = t.as_secs() - secs_of_day;
        let today_open = day_start + self.window_start_hour * 3_600;
        let open = if secs_of_day < self.window_start_hour * 3_600 {
            today_open
        } else {
            today_open + 86_400
        };
        SimTime::from_secs(open)
    }

    /// Draw an inter-transfer sleep: exponential with the configured
    /// mean, truncated to `[sleep_min, sleep_max]`.
    pub fn draw_sleep(&self, rng: &mut StdRng) -> SimDuration {
        let s = exponential(rng, self.sleep_mean.as_secs_f64());
        let s = s.clamp(self.sleep_min.as_secs_f64(), self.sleep_max.as_secs_f64());
        SimDuration::from_secs_f64(s)
    }

    /// Draw a file from the paper's 13-size set; returns
    /// `(path, size in bytes)`.
    pub fn draw_file(&self, rng: &mut StdRng) -> (String, u64) {
        let set = paper_fileset();
        let (name, mb) = set[rng.gen_range(0..set.len())];
        (
            format!("/home/ftp/vazhkuda/{name}"),
            u64::from(mb) * 1_024_000,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn at(day: u64, hour: u64, min: u64) -> SimTime {
        SimTime::from_secs(day * 86_400 + hour * 3_600 + min * 60)
    }

    #[test]
    fn window_wraps_midnight() {
        let w = WorkloadConfig::default();
        assert!(w.in_window(at(0, 18, 0)));
        assert!(w.in_window(at(0, 23, 59)));
        assert!(w.in_window(at(1, 0, 0)));
        assert!(w.in_window(at(1, 7, 59)));
        assert!(!w.in_window(at(1, 8, 0)));
        assert!(!w.in_window(at(1, 12, 0)));
        assert!(!w.in_window(at(1, 17, 59)));
    }

    #[test]
    fn non_wrapping_window() {
        let w = WorkloadConfig {
            window_start_hour: 9,
            window_end_hour: 17,
            ..WorkloadConfig::default()
        };
        assert!(w.in_window(at(0, 9, 0)));
        assert!(w.in_window(at(0, 16, 59)));
        assert!(!w.in_window(at(0, 17, 0)));
        assert!(!w.in_window(at(0, 3, 0)));
    }

    #[test]
    fn next_window_start_moves_forward() {
        let w = WorkloadConfig::default();
        // Inside the window: unchanged.
        assert_eq!(w.next_window_start(at(0, 19, 0)), at(0, 19, 0));
        // Midday: today 18:00.
        assert_eq!(w.next_window_start(at(2, 12, 0)), at(2, 18, 0));
        // 8:00 sharp (just closed): today 18:00.
        assert_eq!(w.next_window_start(at(2, 8, 0)), at(2, 18, 0));
    }

    #[test]
    fn sleep_draw_respects_bounds_and_mean() {
        let w = WorkloadConfig::default();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 5_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let s = w.draw_sleep(&mut rng);
            assert!(s >= w.sleep_min && s <= w.sleep_max);
            sum += s.as_secs_f64();
        }
        let mean = sum / n as f64;
        // Truncation biases the mean up slightly from 1620 s.
        assert!((1_450.0..2_000.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn file_draw_covers_the_set() {
        let w = WorkloadConfig::default();
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..500 {
            let (path, size) = w.draw_file(&mut rng);
            assert!(path.starts_with("/home/ftp/vazhkuda/"));
            assert!((1_024_000..=1_024_000_000).contains(&size));
            seen.insert(path);
        }
        assert_eq!(seen.len(), 13, "all 13 sizes should appear");
    }
}
