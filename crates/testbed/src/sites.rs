//! The simulated ANL–ISI–LBL testbed (§6).
//!
//! Three sites joined by two wide-area paths, calibrated so that tuned
//! 8-stream GridFTP transfers see 1.5–10.2 MB/s end-to-end with heavy
//! diurnal and bursty variation, while untuned 64 KB NWS probes sit below
//! 0.3 MB/s — the Figures 1–2 regime. Calibration values (link capacity,
//! RTTs, background-weight ranges) are documented inline and checked by
//! this module's tests.

use serde::{Deserialize, Serialize};
use wanpred_gridftp::{ServerConfig, TransferManager};
use wanpred_simnet::load::{DiurnalProfile, LoadModelConfig};
use wanpred_simnet::network::Network;
use wanpred_simnet::rng::MasterSeed;
use wanpred_simnet::time::SimDuration;
use wanpred_simnet::topology::{LinkId, NodeId, Topology};
use wanpred_storage::StorageServer;

/// One testbed site.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteSpec {
    /// Short label ("anl", "lbl", "isi").
    pub label: String,
    /// Fully qualified host name.
    pub host: String,
    /// IPv4 address string used in logs.
    pub address: String,
}

/// The built testbed.
pub struct Testbed {
    /// The network (consumed by `Engine::new`).
    pub network: Network,
    /// ANL node (the client in the paper's experiments).
    pub anl: NodeId,
    /// LBL node (server).
    pub lbl: NodeId,
    /// ISI node (server).
    pub isi: NodeId,
    /// Forward links (server → ANL), for tracing: `[lbl→anl, isi→anl]`.
    pub data_links: [LinkId; 2],
    /// Site descriptions keyed like the node fields.
    pub sites: [SiteSpec; 3],
}

/// Capacity of each wide-area path: 100 Mb/s = 12.5 MB/s of usable
/// bottleneck bandwidth (ESnet-era OC-3/OC-12 paths throttled by campus
/// links).
pub const WAN_CAPACITY_BPS: f64 = 12.5e6;

/// One-way ANL–LBL delay: 27.5 ms (55 ms RTT).
pub const ANL_LBL_DELAY_US: u64 = 27_500;

/// One-way ANL–ISI delay: 31 ms (62 ms RTT).
pub const ANL_ISI_DELAY_US: u64 = 31_000;

/// Background-load configuration used on the WAN links.
///
/// With 8-stream foreground weight and 12.5 MB/s capacity, the share is
/// `12.5 * 8 / (8 + W)` MB/s: `W = 2` (quiet night) gives 10 MB/s, the
/// diurnal peak `W ≈ 18` gives 3.8 MB/s, and burst stacks pushing
/// `W > 50` give the 1.5 MB/s floor seen in Figures 1–2.
///
/// `mean_weight` sets the diurnal mean: the two testbed paths are given
/// slightly different means (real paths are never statistically
/// identical), which is what gives the replica broker something to
/// exploit.
pub fn wan_load_config(phase_hours: u64, mean_weight: f64) -> LoadModelConfig {
    LoadModelConfig {
        diurnal_mean_weight: mean_weight,
        profile: DiurnalProfile::business_hours(),
        phase: SimDuration::from_hours(phase_hours),
        walk_sigma: 0.35,
        walk_revert: 0.06,
        burst_mean_interarrival: SimDuration::from_mins(35),
        burst_alpha: 1.25,
        burst_min: SimDuration::from_secs(45),
        burst_max: SimDuration::from_hours(5),
        burst_weight: 9.0,
        tick: SimDuration::from_secs(60),
    }
}

/// Quiet (cross-traffic-free) variant for deterministic tests.
pub fn quiet_load_config() -> LoadModelConfig {
    LoadModelConfig {
        diurnal_mean_weight: 0.0,
        walk_sigma: 0.0,
        burst_weight: 0.0,
        ..LoadModelConfig::default()
    }
}

/// The three sites.
pub fn paper_sites() -> [SiteSpec; 3] {
    [
        SiteSpec {
            label: "anl".into(),
            host: "pitcairn.mcs.anl.gov".into(),
            address: "140.221.65.69".into(),
        },
        SiteSpec {
            label: "lbl".into(),
            host: "dpsslx04.lbl.gov".into(),
            address: "131.243.2.11".into(),
        },
        SiteSpec {
            label: "isi".into(),
            host: "jet.isi.edu".into(),
            address: "128.9.160.11".into(),
        },
    ]
}

/// Build the testbed network. `quiet` disables cross traffic (tests).
pub fn build_testbed(seed: MasterSeed, quiet: bool) -> Testbed {
    let mut topo = Topology::new();
    let sites = paper_sites();
    let [site_anl, site_lbl, site_isi] = &sites;
    let anl = topo.add_node(site_anl.host.clone());
    let lbl = topo.add_node(site_lbl.host.clone());
    let isi = topo.add_node(site_isi.host.clone());

    let (anl_lbl, lbl_anl) = topo
        .add_duplex_link(
            "anl-lbl",
            anl,
            lbl,
            WAN_CAPACITY_BPS,
            SimDuration::from_micros(ANL_LBL_DELAY_US),
        )
        .expect("nodes exist");
    let (anl_isi, isi_anl) = topo
        .add_duplex_link(
            "anl-isi",
            anl,
            isi,
            WAN_CAPACITY_BPS,
            SimDuration::from_micros(ANL_ISI_DELAY_US),
        )
        .expect("nodes exist");

    topo.add_route(anl, lbl, vec![anl_lbl]).expect("contiguous");
    topo.add_route(lbl, anl, vec![lbl_anl]).expect("contiguous");
    topo.add_route(anl, isi, vec![anl_isi]).expect("contiguous");
    topo.add_route(isi, anl, vec![isi_anl]).expect("contiguous");
    // Inter-server routes go through ANL (star topology, as ESnet hubs
    // effectively did for these sites).
    topo.add_route(lbl, isi, vec![lbl_anl, anl_isi])
        .expect("contiguous");
    topo.add_route(isi, lbl, vec![isi_anl, anl_lbl])
        .expect("contiguous");

    // Link order of creation: anl->lbl, lbl->anl, anl->isi, isi->anl.
    // ISI's profile is phase-shifted by two hours (Pacific vs Central-ish
    // skew) and carries a somewhat heavier mean load, so the two paths
    // decorrelate and genuinely differ — the premise of replica selection.
    let cfgs = if quiet {
        vec![quiet_load_config(); 4]
    } else {
        vec![
            wan_load_config(0, 10.0),
            wan_load_config(0, 10.0),
            wan_load_config(2, 13.0),
            wan_load_config(2, 13.0),
        ]
    };
    let network = Network::new(topo, cfgs, seed);
    Testbed {
        network,
        anl,
        lbl,
        isi,
        data_links: [lbl_anl, isi_anl],
        sites,
    }
}

impl Testbed {
    /// Build the transfer manager with servers at LBL and ISI and the
    /// ANL client registered, file sets populated, logs mapped to
    /// `epoch_unix`.
    pub fn build_manager(&self, epoch_unix: u64) -> TransferManager {
        let mut mgr = TransferManager::new(epoch_unix);
        let [anl_site, lbl_site, isi_site] = self.sites.clone();
        mgr.add_host(self.anl, anl_site.host, anl_site.address);
        mgr.add_server(
            self.lbl,
            ServerConfig::new(lbl_site.host.clone(), lbl_site.address.clone()),
            StorageServer::vintage_with_paper_fileset("lbl-disk"),
        );
        mgr.add_server(
            self.isi,
            ServerConfig::new(isi_site.host.clone(), isi_site.address.clone()),
            StorageServer::vintage_with_paper_fileset("isi-disk"),
        );
        mgr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_shape() {
        let tb = build_testbed(MasterSeed(1), true);
        let topo = tb.network.topology();
        assert_eq!(topo.node_count(), 3);
        assert_eq!(topo.link_count(), 4);
        // RTTs match the calibration constants.
        let rtt_lbl = topo.rtt(tb.anl, tb.lbl).unwrap();
        assert_eq!(rtt_lbl.as_micros(), 2 * ANL_LBL_DELAY_US);
        let rtt_isi = topo.rtt(tb.anl, tb.isi).unwrap();
        assert_eq!(rtt_isi.as_micros(), 2 * ANL_ISI_DELAY_US);
        // Server-to-server goes via ANL.
        let rtt_cross = topo.rtt(tb.lbl, tb.isi).unwrap();
        assert_eq!(
            rtt_cross.as_micros(),
            2 * (ANL_LBL_DELAY_US + ANL_ISI_DELAY_US)
        );
        assert_eq!(
            topo.bottleneck_bps(tb.lbl, tb.anl).unwrap(),
            WAN_CAPACITY_BPS
        );
    }

    #[test]
    fn manager_has_both_servers_and_filesets() {
        let tb = build_testbed(MasterSeed(1), true);
        let mgr = tb.build_manager(996_642_000);
        for node in [tb.lbl, tb.isi] {
            let storage = mgr.storage(node).expect("server registered");
            assert_eq!(storage.catalog().len(), 13);
            assert!(storage.catalog().lookup("/home/ftp/vazhkuda/1GB").is_ok());
        }
        assert!(mgr.storage(tb.anl).is_none(), "ANL is a plain client");
    }

    #[test]
    fn share_calibration_bounds() {
        // The analytic share formula behind the calibration comment.
        let share = |w: f64| WAN_CAPACITY_BPS * 8.0 / (8.0 + w) / 1e6;
        assert!((share(2.0) - 10.0).abs() < 0.1);
        assert!(share(18.0) < 4.0);
        assert!(share(50.0) < 1.8);
    }

    #[test]
    fn untuned_probe_ceiling() {
        // 16 KB window over 55 ms RTT: < 0.3 MB/s, the NWS ceiling.
        let ceiling = 16_384.0 / 0.055 / 1e6;
        assert!(ceiling < 0.3, "{ceiling}");
    }
}
