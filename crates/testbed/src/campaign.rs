//! Two-week measurement campaigns: the paper's August and December 2001
//! log-collection runs, reproduced end to end.
//!
//! A campaign runs the controlled workload on both site pairs (LBL→ANL
//! and ISI→ANL GETs issued by the ANL client) concurrently with NWS-style
//! probe sensors on the same paths, then extracts the per-server transfer
//! logs and probe series that the figure computations consume.

use std::any::Any;

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use wanpred_gridftp::{
    RetryPolicy, TransferEvent, TransferKind, TransferManager, TransferRequest, TransferToken,
};
use wanpred_logfmt::{
    corrupt_doc, salvage_doc, ChaosConfig, SalvageOptions, SalvageReport, TransferLog,
};
use wanpred_nws::{ProbeAgent, ProbeConfig, ProbeMeasurement};
use wanpred_obs::{names, ObsSink, Snapshot};
use wanpred_predict::{Observation, TournamentOptions};
use wanpred_replica::coalloc::{
    CoallocEvent, CoallocPolicy, CoallocRequest, CoallocSource, Coallocator,
};
use wanpred_replica::{Broker, NoPerfInfo, PhysicalReplica, SelectionPolicy};
use wanpred_simnet::engine::{Agent, Ctx, Engine, TimerTag};
use wanpred_simnet::fault::{FaultConfig, FaultSchedule};
use wanpred_simnet::flow::{FlowDone, FlowFailed};
use wanpred_simnet::rng::MasterSeed;
use wanpred_simnet::time::{SimDuration, SimTime};
use wanpred_simnet::topology::NodeId;

use crate::sites::{build_testbed, Testbed};
use crate::workload::WorkloadConfig;

/// Which site pair a transfer belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pair {
    /// LBL server → ANL client.
    LblAnl,
    /// ISI server → ANL client.
    IsiAnl,
}

impl Pair {
    /// Both pairs.
    pub const ALL: [Pair; 2] = [Pair::LblAnl, Pair::IsiAnl];

    /// Figure label ("LBL-ANL" / "ISI-ANL").
    pub fn label(self) -> &'static str {
        match self {
            Pair::LblAnl => "LBL-ANL",
            Pair::IsiAnl => "ISI-ANL",
        }
    }
}

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed for every stochastic component.
    pub seed: MasterSeed,
    /// Unix seconds at simulation time zero (local midnight of day one).
    pub epoch_unix: u64,
    /// Campaign length.
    pub duration: SimDuration,
    /// The per-pair workload.
    pub workload: WorkloadConfig,
    /// Whether to run the NWS probe sensors.
    pub probes: bool,
    /// Fault processes injected into the network ([`FaultConfig::none`]
    /// reproduces the original clean campaigns bit for bit).
    pub faults: FaultConfig,
    /// Retry policy installed on the transfer manager; `None` means a
    /// faulted transfer fails on its first connection reset.
    pub retry: Option<RetryPolicy>,
    /// Log-corruption chaos rate. When set, each extracted server log is
    /// serialized with integrity trailers, damaged by the seeded
    /// [`corrupt_doc`] injector at this per-line probability, and decoded
    /// back through the strict salvage path — so the campaign's outputs
    /// exercise exactly what a predictor reading a crash-damaged log would
    /// see. Chaos seeds derive from [`CampaignConfig::seed`].
    pub chaos: Option<f64>,
    /// The site pairs whose workload loops run (both, by default; the
    /// probe sensors follow the same selection).
    pub pairs: Vec<Pair>,
    /// Run the workload through the co-allocating client instead of the
    /// per-pair loops: each GET is striped across the broker's top-k
    /// sources with mid-stream failover ([`wanpred_replica::Coallocator`]).
    /// `Some(1)` is the single-best baseline — broker-selected source,
    /// no striping, no failover target.
    pub coalloc: Option<usize>,
    /// Observability sink threaded through the engine, transfer manager
    /// and campaign driver. Disabled by default; note that cloning a
    /// config shares the sink's registry with the clone.
    pub obs: ObsSink,
}

impl CampaignConfig {
    /// Start from the August defaults and customize step by step; see
    /// [`CampaignBuilder`]. The month presets [`CampaignConfig::august`]
    /// and [`CampaignConfig::december`] are themselves thin builder
    /// invocations.
    pub fn builder(seed: u64) -> CampaignBuilder {
        CampaignBuilder {
            cfg: CampaignConfig {
                seed: MasterSeed(seed),
                epoch_unix: 996_642_000,
                duration: SimDuration::from_days(14),
                workload: WorkloadConfig::default(),
                probes: true,
                faults: FaultConfig::none(),
                retry: None,
                chaos: None,
                pairs: Pair::ALL.to_vec(),
                coalloc: None,
                obs: ObsSink::disabled(),
            },
        }
    }

    /// The August 2001 campaign: two weeks from Wed 2001-08-01 00:00 CDT
    /// (Unix 996_642_000).
    pub fn august(seed: u64) -> Self {
        Self::builder(seed).build()
    }

    /// The December 2001 campaign: two weeks from Sat 2001-12-01 00:00
    /// CST (Unix 1_007_186_400).
    pub fn december(seed: u64) -> Self {
        Self::builder(seed).december().build()
    }

    /// Turn on the calibrated unreliable-WAN fault profile together with
    /// the default retry policy, leaving everything else unchanged.
    pub fn with_faults(mut self) -> Self {
        self.faults = FaultConfig::wan_default();
        self.retry = Some(RetryPolicy::wan_default());
        self
    }

    /// Pass the extracted server logs through the corruption-chaos
    /// injector and strict salvage at the given per-line rate.
    pub fn with_chaos(mut self, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "chaos rate {rate} not in [0,1]"
        );
        self.chaos = Some(rate);
        self
    }
}

/// Fluent construction of a [`CampaignConfig`], starting from the
/// August preset: `CampaignConfig::builder(seed).december()
/// .duration_days(3).faults(FaultConfig::wan_default()).chaos(0.05)
/// .obs(sink).build()`.
#[derive(Debug, Clone)]
pub struct CampaignBuilder {
    cfg: CampaignConfig,
}

impl CampaignBuilder {
    /// Switch to the December 2001 preset: epoch Sat 2001-12-01 00:00
    /// CST, and the campaign seed decorrelated from August's via a
    /// `"december"` child derivation.
    pub fn december(mut self) -> Self {
        self.cfg.seed = self.cfg.seed.child("december");
        self.cfg.epoch_unix = 1_007_186_400;
        self
    }

    /// Campaign length in days (the presets run 14).
    pub fn duration_days(mut self, days: u64) -> Self {
        self.cfg.duration = SimDuration::from_days(days);
        self
    }

    /// Campaign length as an explicit duration.
    pub fn duration(mut self, duration: SimDuration) -> Self {
        self.cfg.duration = duration;
        self
    }

    /// Replace the per-pair workload.
    pub fn workload(mut self, workload: WorkloadConfig) -> Self {
        self.cfg.workload = workload;
        self
    }

    /// Enable or disable the NWS probe sensors.
    pub fn probes(mut self, probes: bool) -> Self {
        self.cfg.probes = probes;
        self
    }

    /// Restrict the campaign to a subset of site pairs (workload loops
    /// and probe sensors both follow the selection; unselected pairs
    /// produce empty logs).
    pub fn pair_set(mut self, pairs: &[Pair]) -> Self {
        self.cfg.pairs = pairs.to_vec();
        self
    }

    /// Inject this fault profile into the network. Pairs naturally with
    /// [`retry`](CampaignBuilder::retry); [`FaultConfig::wan_default`]
    /// is the calibrated unreliable-WAN profile.
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.cfg.faults = faults;
        self
    }

    /// Install a retry policy on the transfer manager.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.cfg.retry = Some(retry);
        self
    }

    /// Corrupt-and-salvage the extracted logs at this per-line rate
    /// (see [`CampaignConfig::with_chaos`]).
    pub fn chaos(mut self, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "chaos rate {rate} not in [0,1]"
        );
        self.cfg.chaos = Some(rate);
        self
    }

    /// Replace the per-pair workload loops with the co-allocating
    /// client: every GET is striped across the broker's top-k predicted
    /// sources, monitored, and rebalanced away from degraded or dead
    /// sources mid-stream. `coalloc(1)` is the single-best baseline.
    pub fn coalloc(mut self, k: usize) -> Self {
        self.cfg.coalloc = Some(k.max(1));
        self
    }

    /// Thread this observability sink through the campaign: the engine,
    /// the transfer manager and the driver all emit into it, and the
    /// final [`CampaignResult::metrics`] snapshot is taken from it.
    pub fn obs(mut self, sink: ObsSink) -> Self {
        self.cfg.obs = sink;
        self
    }

    /// Finish the builder.
    pub fn build(self) -> CampaignConfig {
        self.cfg
    }
}

/// Everything a campaign produces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Unix seconds at simulation time zero.
    pub epoch_unix: u64,
    /// The LBL server's transfer log.
    pub lbl_log: TransferLog,
    /// The ISI server's transfer log.
    pub isi_log: TransferLog,
    /// NWS probe series per pair (empty when probes were disabled).
    pub lbl_probes: Vec<ProbeMeasurement>,
    /// NWS probe series for ISI→ANL.
    pub isi_probes: Vec<ProbeMeasurement>,
    /// Transfers that failed at submit time (should be zero).
    pub submit_errors: usize,
    /// Fault actions scheduled over the campaign (0 on clean runs).
    pub fault_events: usize,
    /// Attempts that failed and were retried under the retry policy.
    pub retries: usize,
    /// Transfers abandoned after exhausting their attempt budget.
    pub failed_transfers: usize,
    /// What the salvage pass kept and quarantined on the LBL log (`None`
    /// unless chaos was enabled).
    pub lbl_salvage: Option<SalvageReport>,
    /// What the salvage pass kept and quarantined on the ISI log.
    pub isi_salvage: Option<SalvageReport>,
    /// Metric snapshot taken from the campaign's [`ObsSink`] after the
    /// run (`None` when the sink was disabled). Seeded-run
    /// deterministic: same seed, same config → byte-identical snapshot
    /// JSON.
    pub metrics: Option<Snapshot>,
    /// Co-allocation summary (`None` unless [`CampaignConfig::coalloc`]
    /// was set).
    pub coalloc: Option<CoallocSummary>,
}

/// What a co-allocated campaign achieved, aggregated over its workload
/// loop. `failed` counts *logical* transfers abandoned with no surviving
/// source — a stripe death that was rebalanced away is recovery, not
/// failure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct CoallocSummary {
    /// Stripe width requested (1 = single-best baseline).
    pub k: usize,
    /// Logical transfers completed.
    pub completed: usize,
    /// Bytes delivered by completed transfers.
    pub completed_bytes: u64,
    /// Summed submit→finish time of completed transfers (seconds).
    pub completed_time_s: f64,
    /// Logical transfers abandoned (no surviving source).
    pub failed: usize,
    /// Stripes driven across all completed transfers (initial plans plus
    /// rebalance replacements).
    pub stripes: u64,
    /// Mid-stream rebalances (degraded or dead source re-planned).
    pub rebalances: u64,
    /// Bytes banked from demoted/dead stripes instead of re-fetched.
    pub bytes_salvaged: u64,
    /// Completed transfers whose covered ranges failed to tile
    /// `[0, size)` exactly — must be zero; counted, not panicked, so
    /// benches surface it.
    pub tiling_violations: usize,
}

impl CoallocSummary {
    /// Goodput over completed transfers: bytes delivered per second of
    /// transfer wall time (KB/s). Sleep between workload items is
    /// excluded, so striping gains show through the duty cycle.
    pub fn goodput_kbs(&self) -> f64 {
        if self.completed_time_s > 0.0 {
            self.completed_bytes as f64 / self.completed_time_s / 1_000.0
        } else {
            0.0
        }
    }
}

impl CampaignResult {
    /// The transfer log for a pair.
    pub fn log(&self, pair: Pair) -> &TransferLog {
        match pair {
            Pair::LblAnl => &self.lbl_log,
            Pair::IsiAnl => &self.isi_log,
        }
    }

    /// The probe series for a pair.
    pub fn probes(&self, pair: Pair) -> &[ProbeMeasurement] {
        match pair {
            Pair::LblAnl => &self.lbl_probes,
            Pair::IsiAnl => &self.isi_probes,
        }
    }

    /// The salvage report for a pair (`None` unless chaos was enabled).
    pub fn salvage(&self, pair: Pair) -> Option<&SalvageReport> {
        match pair {
            Pair::LblAnl => self.lbl_salvage.as_ref(),
            Pair::IsiAnl => self.isi_salvage.as_ref(),
        }
    }
}

/// Serialize a log with integrity trailers, damage it with the seeded
/// injector, and decode it back through strict salvage.
fn corrupt_and_salvage(log: &TransferLog, rate: f64, seed: u64) -> (TransferLog, SalvageReport) {
    let doc = log.to_ulm_string_checksummed();
    let (damaged, _chaos) = corrupt_doc(&doc, &ChaosConfig::new(rate, seed));
    salvage_doc(&damaged, &SalvageOptions::strict())
}

struct PairRuntime {
    pair: Pair,
    server: NodeId,
    rng: StdRng,
    outstanding: Option<TransferToken>,
}

/// Workload-loop timer tag in co-allocation mode (the per-pair loops
/// are disabled there, so the small-index namespace is free).
const COALLOC_DRIVER_TAG: TimerTag = 0;

/// Everything the co-allocating workload loop carries: the broker that
/// ranks the two servers before every GET, the co-allocator driving the
/// stripes, and the aggregate summary.
struct CoallocRuntime {
    co: Coallocator,
    broker: Broker<NoPerfInfo>,
    policy: SelectionPolicy,
    k: usize,
    rng: StdRng,
    client_addr: String,
    /// Server node ↔ hostname mapping (broker speaks hostnames, the
    /// transfer manager speaks nodes).
    servers: Vec<(NodeId, String)>,
    outstanding: Option<u64>,
    summary: CoallocSummary,
}

/// The campaign driver agent: embeds the transfer manager and one
/// workload loop per pair (or the single co-allocating loop).
struct CampaignAgent {
    mgr: TransferManager,
    client: NodeId,
    epoch_unix: u64,
    workload: WorkloadConfig,
    pairs: Vec<PairRuntime>,
    coalloc: Option<CoallocRuntime>,
    submit_errors: usize,
    retries: usize,
    failed_transfers: usize,
}

impl CampaignAgent {
    /// Schedule the pair's next wake-up after `delay`, clamped into the
    /// experiment window.
    fn schedule_pair(&self, ctx: &mut Ctx<'_>, idx: usize, delay: SimDuration) {
        let wake = ctx.now() + delay;
        let wake = self.workload.next_window_start(wake);
        let delay = wake.saturating_since(ctx.now());
        ctx.set_timer(delay, idx as TimerTag);
    }

    fn launch_transfer(&mut self, ctx: &mut Ctx<'_>, idx: usize) {
        let (path, _size) = {
            let p = &mut self.pairs[idx];
            self.workload.draw_file(&mut p.rng)
        };
        let req = TransferRequest {
            client: self.client,
            kind: TransferKind::Get {
                server: self.pairs[idx].server,
                path,
            },
            streams: self.workload.streams,
            tcp_buffer: self.workload.tcp_buffer,
            partial: None,
        };
        match self.mgr.submit(ctx, req) {
            Ok(token) => self.pairs[idx].outstanding = Some(token),
            Err(_) => {
                self.submit_errors += 1;
                let delay = {
                    let p = &mut self.pairs[idx];
                    self.workload.draw_sleep(&mut p.rng)
                };
                self.schedule_pair(ctx, idx, delay);
            }
        }
    }

    /// Schedule the co-allocating loop's next wake-up, window-clamped
    /// like the pair loops.
    fn schedule_coalloc(&mut self, ctx: &mut Ctx<'_>) {
        let delay = {
            let rt = self.coalloc.as_mut().expect("coalloc mode");
            self.workload.draw_sleep(&mut rt.rng)
        };
        let wake = self.workload.next_window_start(ctx.now() + delay);
        ctx.set_timer(wake.saturating_since(ctx.now()), COALLOC_DRIVER_TAG);
    }

    /// Draw a file, ask the broker for the top-k sources, and start a
    /// co-allocated GET striped across them.
    fn launch_coalloc(&mut self, ctx: &mut Ctx<'_>) {
        let now_unix = self.epoch_unix + ctx.now().as_secs();
        let (path, size) = {
            let rt = self.coalloc.as_mut().expect("coalloc mode");
            self.workload.draw_file(&mut rt.rng)
        };
        let client = self.client;
        let streams = self.workload.streams;
        let tcp_buffer = self.workload.tcp_buffer;
        let rt = self.coalloc.as_mut().expect("coalloc mode");
        let replicas: Vec<PhysicalReplica> = rt
            .servers
            .iter()
            .map(|(_, host)| PhysicalReplica {
                host: host.clone(),
                path: path.clone(),
                size,
            })
            .collect();
        let top = rt
            .broker
            .select_top_k(&rt.client_addr, &replicas, &mut rt.policy, rt.k, now_unix)
            .expect("both servers are candidates");
        let sources: Vec<CoallocSource> = top
            .ranked
            .iter()
            .map(|&i| {
                let score = &top.scores[i];
                let node = rt
                    .servers
                    .iter()
                    .find(|(_, h)| *h == score.replica.host)
                    .expect("broker host maps to a testbed node")
                    .0;
                CoallocSource {
                    node,
                    predicted_kbs: score
                        .effective_kbs
                        .or(score.predicted_kbs)
                        .unwrap_or(1_000.0),
                }
            })
            .collect();
        let req = CoallocRequest {
            client,
            path,
            sources,
            k: rt.k,
            streams,
            tcp_buffer,
        };
        match rt.co.start(ctx, &mut self.mgr, req) {
            Ok(id) => rt.outstanding = Some(id),
            Err(_) => {
                self.submit_errors += 1;
                self.schedule_coalloc(ctx);
            }
        }
    }

    /// Drain the co-allocator's notifications: count whole-transfer
    /// failures and rebalances, and free the workload slot when the
    /// outstanding transfer was abandoned.
    fn drain_coalloc_events(&mut self, ctx: &mut Ctx<'_>) {
        let Some(rt) = self.coalloc.as_mut() else {
            return;
        };
        let mut freed = false;
        for ev in rt.co.take_events() {
            match ev {
                CoallocEvent::Failed(f) => {
                    rt.summary.failed += 1;
                    if rt.outstanding == Some(f.id) {
                        rt.outstanding = None;
                        freed = true;
                    }
                }
                CoallocEvent::Rebalanced { .. } => rt.summary.rebalances += 1,
                CoallocEvent::Demoted { .. }
                | CoallocEvent::Blacklisted { .. }
                | CoallocEvent::Rejoined { .. } => {}
            }
        }
        if freed {
            self.schedule_coalloc(ctx);
        }
    }

    /// Drain the manager's recovery notifications: count retries, and
    /// when a transfer is abandoned free its pair's workload slot so the
    /// loop keeps issuing transfers (a dead pair would silently truncate
    /// the log). In co-allocation mode an abandoned stripe is routed to
    /// the co-allocator instead, which rebalances its remaining bytes.
    fn drain_transfer_events(&mut self, ctx: &mut Ctx<'_>) {
        for ev in self.mgr.take_events() {
            match ev {
                TransferEvent::RetryScheduled { .. } => self.retries += 1,
                TransferEvent::Failed {
                    token,
                    delivered_bytes,
                    ..
                } => {
                    self.failed_transfers += 1;
                    if let Some(rt) = self.coalloc.as_mut() {
                        if rt
                            .co
                            .on_transfer_failed(ctx, &mut self.mgr, token, delivered_bytes)
                        {
                            continue;
                        }
                    }
                    if let Some(idx) = self.pairs.iter().position(|p| p.outstanding == Some(token))
                    {
                        self.pairs[idx].outstanding = None;
                        let delay = {
                            let p = &mut self.pairs[idx];
                            self.workload.draw_sleep(&mut p.rng)
                        };
                        self.schedule_pair(ctx, idx, delay);
                    }
                }
            }
        }
        self.drain_coalloc_events(ctx);
    }
}

impl Agent for CampaignAgent {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.coalloc.is_some() {
            self.schedule_coalloc(ctx);
            return;
        }
        for idx in 0..self.pairs.len() {
            let delay = {
                let p = &mut self.pairs[idx];
                self.workload.draw_sleep(&mut p.rng)
            };
            self.schedule_pair(ctx, idx, delay);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: TimerTag) {
        if self.mgr.on_timer(ctx, tag) {
            self.drain_transfer_events(ctx);
            return;
        }
        if let Some(rt) = self.coalloc.as_mut() {
            if rt.co.on_timer(ctx, &mut self.mgr, tag) {
                self.drain_coalloc_events(ctx);
                return;
            }
            if tag == COALLOC_DRIVER_TAG && rt.outstanding.is_none() {
                self.launch_coalloc(ctx);
            }
            return;
        }
        let idx = tag as usize;
        if idx < self.pairs.len() && self.pairs[idx].outstanding.is_none() {
            self.launch_transfer(ctx, idx);
        }
    }

    fn on_flow_complete(&mut self, ctx: &mut Ctx<'_>, done: FlowDone) {
        if let Some(c) = self.mgr.on_flow_complete(ctx, &done) {
            if let Some(rt) = self.coalloc.as_mut() {
                // Every delivered stripe is a real observation on its
                // (client, server) path: feed the broker's tournament so
                // later selections learn from this campaign's own data.
                rt.broker.observe_transfer(
                    &rt.client_addr.clone(),
                    &c.record.host,
                    Observation {
                        at_unix: c.record.end_unix,
                        bandwidth_kbs: c.bandwidth_kbs,
                        file_size: c.record.file_size,
                        streams: c.record.streams,
                        tcp_buffer: c.record.tcp_buffer,
                    },
                );
                let mut freed = false;
                if let Some(cc) = rt.co.on_transfer_complete(ctx, &c) {
                    if cc.verify_tiling().is_err() {
                        rt.summary.tiling_violations += 1;
                    }
                    rt.summary.completed += 1;
                    rt.summary.completed_bytes += cc.total_bytes;
                    rt.summary.completed_time_s +=
                        cc.finished.saturating_since(cc.submitted).as_secs_f64();
                    rt.summary.stripes += u64::from(cc.stripes);
                    rt.summary.bytes_salvaged += cc.bytes_salvaged;
                    if rt.outstanding == Some(cc.id) {
                        rt.outstanding = None;
                        freed = true;
                    }
                }
                self.drain_coalloc_events(ctx);
                if freed {
                    self.schedule_coalloc(ctx);
                }
                return;
            }
            if let Some(idx) = self
                .pairs
                .iter()
                .position(|p| p.outstanding == Some(c.token))
            {
                self.pairs[idx].outstanding = None;
                let delay = {
                    let p = &mut self.pairs[idx];
                    self.workload.draw_sleep(&mut p.rng)
                };
                self.schedule_pair(ctx, idx, delay);
            }
        }
    }

    fn on_flow_failed(&mut self, ctx: &mut Ctx<'_>, failed: FlowFailed) {
        self.mgr.on_flow_failed(ctx, &failed);
        self.drain_transfer_events(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Run a campaign to completion.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignResult {
    let testbed: Testbed = build_testbed(cfg.seed, false);
    run_campaign_on(cfg, testbed)
}

/// Run a campaign on a pre-built testbed (lets tests pass a quiet one).
pub fn run_campaign_on(cfg: &CampaignConfig, testbed: Testbed) -> CampaignResult {
    let mut mgr = testbed.build_manager(cfg.epoch_unix);
    mgr.set_obs(cfg.obs.clone());
    if let Some(policy) = &cfg.retry {
        mgr.set_retry_policy(policy.clone());
    }
    let Testbed {
        network,
        anl,
        lbl,
        isi,
        sites,
        ..
    } = testbed;
    let server_of = |pair: Pair| match pair {
        Pair::LblAnl => lbl,
        Pair::IsiAnl => isi,
    };
    let seed_name_of = |pair: Pair| match pair {
        Pair::LblAnl => "workload.lbl-anl",
        Pair::IsiAnl => "workload.isi-anl",
    };

    // The schedule is a pure function of (faults, topology, seed,
    // duration): materialize it before the network moves into the engine.
    let schedule = FaultSchedule::generate(&cfg.faults, network.topology(), cfg.seed, cfg.duration);
    let fault_events = schedule.len();

    // In co-allocation mode the single coalloc loop replaces the
    // per-pair loops (probes still follow `cfg.pairs`).
    let [anl_site, lbl_site, isi_site] = &sites;
    let coalloc_rt = cfg.coalloc.map(|k| {
        let mut broker = Broker::new(NoPerfInfo)
            .with_tournament(TournamentOptions::default())
            .with_static_kbs(lbl_site.host.clone(), 5_000.0)
            .with_static_kbs(isi_site.host.clone(), 5_000.0);
        broker.set_obs(cfg.obs.clone());
        let mut co = Coallocator::new(CoallocPolicy::wan_default());
        co.set_obs(cfg.obs.clone());
        CoallocRuntime {
            co,
            broker,
            policy: SelectionPolicy::predicted_bandwidth(),
            k: k.max(1),
            rng: cfg.seed.derive("workload.coalloc"),
            client_addr: anl_site.address.clone(),
            servers: vec![(lbl, lbl_site.host.clone()), (isi, isi_site.host.clone())],
            outstanding: None,
            summary: CoallocSummary {
                k: k.max(1),
                ..CoallocSummary::default()
            },
        }
    });
    let pair_runtimes = if cfg.coalloc.is_some() {
        Vec::new()
    } else {
        cfg.pairs
            .iter()
            .map(|&pair| PairRuntime {
                pair,
                server: server_of(pair),
                rng: cfg.seed.derive(seed_name_of(pair)),
                outstanding: None,
            })
            .collect()
    };

    let mut engine = Engine::new(network);
    engine.set_obs(cfg.obs.clone());
    engine.inject_faults(&schedule);
    let agent_id = engine.add_agent(Box::new(CampaignAgent {
        mgr,
        client: anl,
        epoch_unix: cfg.epoch_unix,
        workload: cfg.workload.clone(),
        pairs: pair_runtimes,
        coalloc: coalloc_rt,
        submit_errors: 0,
        retries: 0,
        failed_transfers: 0,
    }));

    let probe_ids: Vec<(Pair, _)> = if cfg.probes {
        cfg.pairs
            .iter()
            .map(|&pair| {
                (
                    pair,
                    engine.add_agent(Box::new(ProbeAgent::new(ProbeConfig::paper_default(
                        server_of(pair),
                        anl,
                    )))),
                )
            })
            .collect()
    } else {
        Vec::new()
    };

    // The campaign span brackets the whole simulated horizon; transfer
    // and engine spans emitted during the run nest inside it.
    cfg.obs.span_enter(names::CAMPAIGN_RUN, 0);
    engine.run_until(SimTime::ZERO + cfg.duration);
    cfg.obs
        .span_exit(names::CAMPAIGN_RUN, cfg.duration.as_micros());

    let probes_of = |want: Pair| -> Vec<ProbeMeasurement> {
        probe_ids
            .iter()
            .find(|&&(pair, _)| pair == want)
            .map(|&(_, id)| {
                engine
                    .agent::<ProbeAgent>(id)
                    .expect("probe agent")
                    .measurements()
                    .to_vec()
            })
            .unwrap_or_default()
    };
    let (lbl_probes, isi_probes) = (probes_of(Pair::LblAnl), probes_of(Pair::IsiAnl));

    let agent = engine
        .agent::<CampaignAgent>(agent_id)
        .expect("campaign agent");
    debug_assert!(
        cfg.coalloc.is_some()
            || agent
                .pairs
                .iter()
                .map(|p| p.pair)
                .eq(cfg.pairs.iter().copied())
    );
    let mut lbl_log = agent.mgr.server_log(lbl).cloned().unwrap_or_default();
    let mut isi_log = agent.mgr.server_log(isi).cloned().unwrap_or_default();
    let (mut lbl_salvage, mut isi_salvage) = (None, None);
    if let Some(rate) = cfg.chaos {
        // Damage is decorrelated per pair but still a pure function of the
        // campaign seed, so chaotic campaigns replay byte for byte.
        let (log, report) = corrupt_and_salvage(&lbl_log, rate, cfg.seed.derive_seed("chaos.lbl"));
        lbl_log = log;
        lbl_salvage = Some(report);
        let (log, report) = corrupt_and_salvage(&isi_log, rate, cfg.seed.derive_seed("chaos.isi"));
        isi_log = log;
        isi_salvage = Some(report);
    }
    if cfg.obs.is_enabled() {
        cfg.obs.inc_by(
            names::CAMPAIGN_TRANSFERS,
            (lbl_log.len() + isi_log.len()) as u64,
        );
        cfg.obs
            .gauge(names::CAMPAIGN_FAULT_EVENTS, fault_events as f64);
        for report in [&lbl_salvage, &isi_salvage].into_iter().flatten() {
            cfg.obs
                .inc_by(names::CAMPAIGN_SALVAGE_KEPT, report.kept as u64);
            cfg.obs.inc_by(
                names::CAMPAIGN_SALVAGE_QUARANTINED,
                report.quarantined.len() as u64,
            );
        }
    }
    let metrics = cfg.obs.is_enabled().then(|| cfg.obs.snapshot());
    CampaignResult {
        epoch_unix: cfg.epoch_unix,
        lbl_log,
        isi_log,
        lbl_probes,
        isi_probes,
        submit_errors: agent.submit_errors,
        fault_events,
        retries: agent.retries,
        failed_transfers: agent.failed_transfers,
        lbl_salvage,
        isi_salvage,
        metrics,
        coalloc: agent.coalloc.as_ref().map(|rt| rt.summary.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wanpred_predict::SizeClass;

    fn short_config(days: u64, probes: bool) -> CampaignConfig {
        CampaignConfig {
            seed: MasterSeed(42),
            epoch_unix: 996_642_000,
            duration: SimDuration::from_days(days),
            workload: WorkloadConfig::default(),
            probes,
            faults: FaultConfig::none(),
            retry: None,
            chaos: None,
            pairs: Pair::ALL.to_vec(),
            coalloc: None,
            obs: ObsSink::disabled(),
        }
    }

    fn short_campaign(days: u64, probes: bool) -> CampaignResult {
        run_campaign(&short_config(days, probes))
    }

    /// An aggressive fault profile so even short test campaigns see kills
    /// land on in-flight transfers.
    fn hostile_faults() -> FaultConfig {
        FaultConfig {
            kill_mean_interarrival: SimDuration::from_mins(40),
            ..FaultConfig::wan_default()
        }
    }

    #[test]
    fn two_day_campaign_produces_windowed_transfers() {
        let r = short_campaign(2, false);
        assert_eq!(r.submit_errors, 0);
        let n_lbl = r.lbl_log.len();
        let n_isi = r.isi_log.len();
        // ~28-ish per pair per day; accept a broad band.
        assert!((20..120).contains(&n_lbl), "lbl count {n_lbl}");
        assert!((20..120).contains(&n_isi), "isi count {n_isi}");
        // Every transfer starts inside the 6pm-8am window.
        for rec in r.lbl_log.records().iter().chain(r.isi_log.records()) {
            let local = rec.start_unix - r.epoch_unix;
            let hour = (local / 3_600) % 24;
            assert!(
                !(8..18).contains(&hour),
                "transfer at local hour {hour} outside the window"
            );
            assert!(rec.validate().is_ok());
        }
    }

    #[test]
    fn bandwidths_in_papers_range_and_size_correlated() {
        let r = short_campaign(4, false);
        let mut small = Vec::new();
        let mut huge = Vec::new();
        for rec in r.lbl_log.records().iter().chain(r.isi_log.records()) {
            let mbs = rec.bandwidth_mbs();
            assert!(
                (0.2..13.0).contains(&mbs),
                "bandwidth {mbs} MB/s out of plausible range ({} bytes)",
                rec.file_size,
            );
            match SizeClass::of_bytes(rec.file_size) {
                SizeClass::C10MB => small.push(mbs),
                SizeClass::C1GB => huge.push(mbs),
                _ => {}
            }
        }
        assert!(!small.is_empty() && !huge.is_empty());
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            avg(&huge) > 1.5 * avg(&small),
            "1GB-class {} vs 10MB-class {}",
            avg(&huge),
            avg(&small)
        );
    }

    #[test]
    fn probes_run_continuously() {
        let r = short_campaign(1, true);
        // Every 5 minutes all day: ~288 probes.
        assert!(
            (250..300).contains(&r.lbl_probes.len()),
            "{}",
            r.lbl_probes.len()
        );
        for p in &r.lbl_probes {
            assert!(p.bandwidth_mbs() < 0.3, "{}", p.bandwidth_mbs());
        }
    }

    #[test]
    fn campaigns_are_reproducible() {
        let a = short_campaign(1, false);
        let b = short_campaign(1, false);
        assert_eq!(a.lbl_log, b.lbl_log);
        assert_eq!(a.isi_log, b.isi_log);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg_a = CampaignConfig {
            seed: MasterSeed(1),
            ..short_config(1, false)
        };
        let cfg_b = CampaignConfig {
            seed: MasterSeed(2),
            ..cfg_a.clone()
        };
        let a = run_campaign(&cfg_a);
        let b = run_campaign(&cfg_b);
        assert_ne!(a.lbl_log, b.lbl_log);
    }

    #[test]
    fn clean_campaign_reports_no_fault_activity() {
        let r = short_campaign(1, false);
        assert_eq!(r.fault_events, 0);
        assert_eq!(r.retries, 0);
        assert_eq!(r.failed_transfers, 0);
    }

    #[test]
    fn faulty_campaign_retries_and_stays_deterministic() {
        let cfg = CampaignConfig {
            faults: hostile_faults(),
            retry: Some(RetryPolicy::wan_default()),
            ..short_config(3, false)
        };
        let a = run_campaign(&cfg);
        let b = run_campaign(&cfg);
        // Same seed → byte-identical logs and identical recovery counts:
        // the fault schedule, backoff jitter and resumed legs are all pure
        // functions of the seed.
        assert_eq!(a.lbl_log, b.lbl_log);
        assert_eq!(a.isi_log, b.isi_log);
        assert_eq!(a.retries, b.retries);
        assert_eq!(a.failed_transfers, b.failed_transfers);
        assert!(a.fault_events > 0);
        assert!(a.retries > 0, "no kill landed on an in-flight transfer");
        // Retried-and-recovered transfers still produce valid ULM records
        // whose total_time_s spans submit → final completion (≥ end-start
        // by construction, and every record validates).
        for rec in a.lbl_log.records().iter().chain(a.isi_log.records()) {
            assert!(rec.validate().is_ok());
        }
        // The faulty log must actually differ from the clean one.
        let clean = run_campaign(&short_config(3, false));
        assert_ne!(clean.lbl_log, a.lbl_log);
    }

    #[test]
    fn faulty_campaign_without_retry_drops_transfers() {
        let cfg = CampaignConfig {
            faults: hostile_faults(),
            retry: None,
            ..short_config(3, false)
        };
        let r = run_campaign(&cfg);
        // First reset abandons the transfer; the workload loop must keep
        // going afterwards (the pair slot is freed on failure).
        assert!(r.failed_transfers > 0);
        assert_eq!(r.retries, 0);
        assert!(r.lbl_log.len() + r.isi_log.len() > 20);
    }

    #[test]
    fn chaotic_campaign_salvages_and_stays_deterministic() {
        let cfg = short_config(3, false).with_chaos(0.3);
        let a = run_campaign(&cfg);
        let b = run_campaign(&cfg);
        // Same seed → same damage → byte-identical salvaged logs and
        // identical reports.
        assert_eq!(a.lbl_log, b.lbl_log);
        assert_eq!(a.isi_log, b.isi_log);
        assert_eq!(a.lbl_salvage, b.lbl_salvage);
        assert_eq!(a.isi_salvage, b.isi_salvage);
        // At a 30% rate damage certainly landed, and the report's kept
        // count is exactly what the log now holds.
        let s = a.salvage(Pair::LblAnl).unwrap();
        assert!(!s.is_clean());
        assert_eq!(s.kept, a.lbl_log.len());
        assert!(s.recovery_fraction() > 0.4, "{}", s.recovery_fraction());
        // Every salvaged record is one the clean campaign produced, in
        // order: corruption can remove records but never invent them.
        let clean = run_campaign(&short_config(3, false));
        let mut it = clean.lbl_log.records().iter();
        for r in a.lbl_log.records() {
            assert!(it.any(|c| c == r), "salvaged record absent from clean log");
        }
        assert!(a.lbl_log.len() <= clean.lbl_log.len());
    }

    #[test]
    fn zero_rate_chaos_is_lossless() {
        let chaotic = run_campaign(&short_config(1, false).with_chaos(0.0));
        let clean = run_campaign(&short_config(1, false));
        assert_eq!(chaotic.lbl_log, clean.lbl_log);
        assert_eq!(chaotic.isi_log, clean.isi_log);
        let s = chaotic.salvage(Pair::LblAnl).unwrap();
        assert!(s.is_clean());
        assert_eq!(s.kept, clean.lbl_log.len());
        assert!(clean.salvage(Pair::LblAnl).is_none());
    }

    #[test]
    fn august_and_december_presets() {
        let aug = CampaignConfig::august(7);
        let dec = CampaignConfig::december(7);
        assert_eq!(aug.epoch_unix, 996_642_000);
        assert_eq!(dec.epoch_unix, 1_007_186_400);
        assert_ne!(aug.seed.0, dec.seed.0, "campaign seeds must decorrelate");
    }

    #[test]
    fn builder_matches_presets() {
        // The presets are now thin builder wrappers; the builder's defaults
        // must reproduce them field for field.
        let aug = CampaignConfig::builder(7).build();
        assert_eq!(aug.seed, CampaignConfig::august(7).seed);
        assert_eq!(aug.epoch_unix, CampaignConfig::august(7).epoch_unix);
        assert_eq!(aug.duration, CampaignConfig::august(7).duration);
        let dec = CampaignConfig::builder(7).december().build();
        assert_eq!(dec.seed, CampaignConfig::december(7).seed);
        assert_eq!(dec.epoch_unix, CampaignConfig::december(7).epoch_unix);
    }

    #[test]
    fn builder_campaign_equals_struct_campaign() {
        let built = run_campaign(
            &CampaignConfig::builder(42)
                .duration_days(1)
                .probes(false)
                .build(),
        );
        let structed = run_campaign(&short_config(1, false));
        assert_eq!(built.lbl_log, structed.lbl_log);
        assert_eq!(built.isi_log, structed.isi_log);
    }

    #[test]
    fn pair_set_restricts_workload_and_probes() {
        let cfg = CampaignConfig::builder(42)
            .duration_days(1)
            .probes(true)
            .pair_set(&[Pair::LblAnl])
            .build();
        let r = run_campaign(&cfg);
        assert!(r.lbl_log.len() > 5);
        assert_eq!(r.isi_log.len(), 0, "unselected pair must stay silent");
        assert!(!r.lbl_probes.is_empty());
        assert!(r.isi_probes.is_empty());
    }

    #[test]
    fn disabled_obs_yields_no_metrics() {
        let r = short_campaign(1, false);
        assert!(r.metrics.is_none());
    }

    #[test]
    fn enabled_obs_snapshot_counts_transfers() {
        let cfg = CampaignConfig {
            obs: ObsSink::enabled(),
            ..short_config(1, false)
        };
        let r = run_campaign(&cfg);
        let snap = r.metrics.as_ref().expect("obs enabled");
        assert_eq!(
            snap.counter(names::CAMPAIGN_TRANSFERS),
            (r.lbl_log.len() + r.isi_log.len()) as u64
        );
        // The campaign span brackets the run exactly once, for the whole
        // simulated horizon.
        let span = snap.histogram(names::CAMPAIGN_RUN).expect("campaign span");
        assert_eq!(span.count, 1);
        assert_eq!(span.sum, cfg.duration.as_micros());
        // Engine and transfer spans fired inside it.
        assert!(snap.counter(names::SIMNET_ENGINE_EVENTS) > 0);
    }

    #[test]
    fn coalloc_clean_campaign_stripes_and_outpaces_single_best() {
        let k2 = run_campaign(
            &CampaignConfig::builder(42)
                .duration_days(2)
                .probes(false)
                .coalloc(2)
                .build(),
        );
        let k1 = run_campaign(
            &CampaignConfig::builder(42)
                .duration_days(2)
                .probes(false)
                .coalloc(1)
                .build(),
        );
        let (s2, s1) = (k2.coalloc.unwrap(), k1.coalloc.unwrap());
        assert!(s2.completed > 5, "completed {}", s2.completed);
        assert_eq!(s2.failed, 0);
        assert_eq!(s1.failed, 0);
        assert_eq!(s2.rebalances, 0, "clean network never rebalances");
        assert_eq!(s2.tiling_violations, 0);
        assert_eq!(s1.tiling_violations, 0);
        // Under background load the paths are asymmetric (~12 vs ~5
        // MB/s), so the ideal striping gain over single-best is ~1.45x;
        // small files (below the chunk floor) ride one stripe and the
        // first split of each campaign is even until the tournament
        // warms. Demand a clear gap, not the ideal one.
        assert!(
            s2.goodput_kbs() > 1.1 * s1.goodput_kbs(),
            "k=2 {} KB/s vs k=1 {} KB/s",
            s2.goodput_kbs(),
            s1.goodput_kbs()
        );
        // Striped legs land in the ordinary server logs.
        assert!(!k2.lbl_log.is_empty() && !k2.isi_log.is_empty());
    }

    #[test]
    fn coalloc_faulty_campaign_k2_survives_where_k1_fails() {
        // No retry policy: the first kill is the stripe's death, so every
        // fault that lands mid-transfer exercises the failover path.
        let run = |k: usize| {
            run_campaign(
                &CampaignConfig::builder(42)
                    .duration_days(3)
                    .probes(false)
                    .faults(hostile_faults())
                    .coalloc(k)
                    .build(),
            )
            .coalloc
            .unwrap()
        };
        let (s1, s2) = (run(1), run(2));
        // The single-best baseline has no failover target: exhausting
        // the retry budget abandons the transfer. With k=2 the survivor
        // absorbs the dead source's remaining bytes.
        assert!(s1.failed > 0, "hostile faults must kill k=1 transfers");
        assert!(
            s2.failed < s1.failed,
            "k=2 failed {} vs k=1 failed {}",
            s2.failed,
            s1.failed
        );
        assert!(s2.rebalances > 0, "kills must trigger rebalances");
        assert!(s2.bytes_salvaged > 0, "rebalances resume, not restart");
        assert_eq!(s2.tiling_violations, 0, "no byte fetched twice");
        assert!(
            s2.goodput_kbs() > s1.goodput_kbs(),
            "k=2 {} KB/s vs k=1 {} KB/s",
            s2.goodput_kbs(),
            s1.goodput_kbs()
        );
    }

    #[test]
    fn coalloc_faulty_campaign_is_deterministic() {
        let cfg = CampaignConfig::builder(42)
            .duration_days(2)
            .probes(false)
            .faults(hostile_faults())
            .retry(RetryPolicy {
                max_attempts: 2,
                ..RetryPolicy::wan_default()
            })
            .coalloc(2)
            .build();
        let a = run_campaign(&cfg);
        let b = run_campaign(&cfg);
        assert_eq!(a.coalloc, b.coalloc);
        assert_eq!(a.lbl_log, b.lbl_log);
        assert_eq!(a.isi_log, b.isi_log);
    }

    #[test]
    fn coalloc_obs_counters_match_summary() {
        let cfg = CampaignConfig::builder(42)
            .duration_days(1)
            .probes(false)
            .coalloc(2)
            .obs(ObsSink::enabled())
            .build();
        let r = run_campaign(&cfg);
        let s = r.coalloc.as_ref().unwrap();
        let snap = r.metrics.as_ref().expect("obs enabled");
        assert_eq!(
            snap.counter(names::REPLICA_COALLOC_COMPLETED),
            s.completed as u64
        );
        assert_eq!(
            snap.counter(names::REPLICA_COALLOC_TRANSFERS),
            (s.completed + s.failed) as u64
        );
        assert!(snap.counter(names::REPLICA_BROKER_SELECTIONS) > 0);
    }

    #[test]
    fn obs_campaign_log_identical_to_disabled() {
        // Observability must be read-only: enabling the sink cannot perturb
        // the simulation.
        let with_obs = run_campaign(&CampaignConfig {
            obs: ObsSink::enabled(),
            ..short_config(1, false)
        });
        let without = run_campaign(&short_config(1, false));
        assert_eq!(with_obs.lbl_log, without.lbl_log);
        assert_eq!(with_obs.isi_log, without.isi_log);
    }
}
