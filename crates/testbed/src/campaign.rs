//! Two-week measurement campaigns: the paper's August and December 2001
//! log-collection runs, reproduced end to end.
//!
//! A campaign runs the controlled workload on both site pairs (LBL→ANL
//! and ISI→ANL GETs issued by the ANL client) concurrently with NWS-style
//! probe sensors on the same paths, then extracts the per-server transfer
//! logs and probe series that the figure computations consume.

use std::any::Any;

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use wanpred_gridftp::{
    RetryPolicy, TransferEvent, TransferKind, TransferManager, TransferRequest, TransferToken,
};
use wanpred_logfmt::{
    corrupt_doc, salvage_doc, ChaosConfig, SalvageOptions, SalvageReport, TransferLog,
};
use wanpred_nws::{ProbeAgent, ProbeConfig, ProbeMeasurement};
use wanpred_obs::{names, ObsSink, Snapshot};
use wanpred_simnet::engine::{Agent, Ctx, Engine, TimerTag};
use wanpred_simnet::fault::{FaultConfig, FaultSchedule};
use wanpred_simnet::flow::{FlowDone, FlowFailed};
use wanpred_simnet::rng::MasterSeed;
use wanpred_simnet::time::{SimDuration, SimTime};
use wanpred_simnet::topology::NodeId;

use crate::sites::{build_testbed, Testbed};
use crate::workload::WorkloadConfig;

/// Which site pair a transfer belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pair {
    /// LBL server → ANL client.
    LblAnl,
    /// ISI server → ANL client.
    IsiAnl,
}

impl Pair {
    /// Both pairs.
    pub const ALL: [Pair; 2] = [Pair::LblAnl, Pair::IsiAnl];

    /// Figure label ("LBL-ANL" / "ISI-ANL").
    pub fn label(self) -> &'static str {
        match self {
            Pair::LblAnl => "LBL-ANL",
            Pair::IsiAnl => "ISI-ANL",
        }
    }
}

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed for every stochastic component.
    pub seed: MasterSeed,
    /// Unix seconds at simulation time zero (local midnight of day one).
    pub epoch_unix: u64,
    /// Campaign length.
    pub duration: SimDuration,
    /// The per-pair workload.
    pub workload: WorkloadConfig,
    /// Whether to run the NWS probe sensors.
    pub probes: bool,
    /// Fault processes injected into the network ([`FaultConfig::none`]
    /// reproduces the original clean campaigns bit for bit).
    pub faults: FaultConfig,
    /// Retry policy installed on the transfer manager; `None` means a
    /// faulted transfer fails on its first connection reset.
    pub retry: Option<RetryPolicy>,
    /// Log-corruption chaos rate. When set, each extracted server log is
    /// serialized with integrity trailers, damaged by the seeded
    /// [`corrupt_doc`] injector at this per-line probability, and decoded
    /// back through the strict salvage path — so the campaign's outputs
    /// exercise exactly what a predictor reading a crash-damaged log would
    /// see. Chaos seeds derive from [`CampaignConfig::seed`].
    pub chaos: Option<f64>,
    /// The site pairs whose workload loops run (both, by default; the
    /// probe sensors follow the same selection).
    pub pairs: Vec<Pair>,
    /// Observability sink threaded through the engine, transfer manager
    /// and campaign driver. Disabled by default; note that cloning a
    /// config shares the sink's registry with the clone.
    pub obs: ObsSink,
}

impl CampaignConfig {
    /// Start from the August defaults and customize step by step; see
    /// [`CampaignBuilder`]. The month presets [`CampaignConfig::august`]
    /// and [`CampaignConfig::december`] are themselves thin builder
    /// invocations.
    pub fn builder(seed: u64) -> CampaignBuilder {
        CampaignBuilder {
            cfg: CampaignConfig {
                seed: MasterSeed(seed),
                epoch_unix: 996_642_000,
                duration: SimDuration::from_days(14),
                workload: WorkloadConfig::default(),
                probes: true,
                faults: FaultConfig::none(),
                retry: None,
                chaos: None,
                pairs: Pair::ALL.to_vec(),
                obs: ObsSink::disabled(),
            },
        }
    }

    /// The August 2001 campaign: two weeks from Wed 2001-08-01 00:00 CDT
    /// (Unix 996_642_000).
    pub fn august(seed: u64) -> Self {
        Self::builder(seed).build()
    }

    /// The December 2001 campaign: two weeks from Sat 2001-12-01 00:00
    /// CST (Unix 1_007_186_400).
    pub fn december(seed: u64) -> Self {
        Self::builder(seed).december().build()
    }

    /// Turn on the calibrated unreliable-WAN fault profile together with
    /// the default retry policy, leaving everything else unchanged.
    pub fn with_faults(mut self) -> Self {
        self.faults = FaultConfig::wan_default();
        self.retry = Some(RetryPolicy::wan_default());
        self
    }

    /// Pass the extracted server logs through the corruption-chaos
    /// injector and strict salvage at the given per-line rate.
    pub fn with_chaos(mut self, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "chaos rate {rate} not in [0,1]"
        );
        self.chaos = Some(rate);
        self
    }
}

/// Fluent construction of a [`CampaignConfig`], starting from the
/// August preset: `CampaignConfig::builder(seed).december()
/// .duration_days(3).faults(FaultConfig::wan_default()).chaos(0.05)
/// .obs(sink).build()`.
#[derive(Debug, Clone)]
pub struct CampaignBuilder {
    cfg: CampaignConfig,
}

impl CampaignBuilder {
    /// Switch to the December 2001 preset: epoch Sat 2001-12-01 00:00
    /// CST, and the campaign seed decorrelated from August's via a
    /// `"december"` child derivation.
    pub fn december(mut self) -> Self {
        self.cfg.seed = self.cfg.seed.child("december");
        self.cfg.epoch_unix = 1_007_186_400;
        self
    }

    /// Campaign length in days (the presets run 14).
    pub fn duration_days(mut self, days: u64) -> Self {
        self.cfg.duration = SimDuration::from_days(days);
        self
    }

    /// Campaign length as an explicit duration.
    pub fn duration(mut self, duration: SimDuration) -> Self {
        self.cfg.duration = duration;
        self
    }

    /// Replace the per-pair workload.
    pub fn workload(mut self, workload: WorkloadConfig) -> Self {
        self.cfg.workload = workload;
        self
    }

    /// Enable or disable the NWS probe sensors.
    pub fn probes(mut self, probes: bool) -> Self {
        self.cfg.probes = probes;
        self
    }

    /// Restrict the campaign to a subset of site pairs (workload loops
    /// and probe sensors both follow the selection; unselected pairs
    /// produce empty logs).
    pub fn pair_set(mut self, pairs: &[Pair]) -> Self {
        self.cfg.pairs = pairs.to_vec();
        self
    }

    /// Inject this fault profile into the network. Pairs naturally with
    /// [`retry`](CampaignBuilder::retry); [`FaultConfig::wan_default`]
    /// is the calibrated unreliable-WAN profile.
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.cfg.faults = faults;
        self
    }

    /// Install a retry policy on the transfer manager.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.cfg.retry = Some(retry);
        self
    }

    /// Corrupt-and-salvage the extracted logs at this per-line rate
    /// (see [`CampaignConfig::with_chaos`]).
    pub fn chaos(mut self, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "chaos rate {rate} not in [0,1]"
        );
        self.cfg.chaos = Some(rate);
        self
    }

    /// Thread this observability sink through the campaign: the engine,
    /// the transfer manager and the driver all emit into it, and the
    /// final [`CampaignResult::metrics`] snapshot is taken from it.
    pub fn obs(mut self, sink: ObsSink) -> Self {
        self.cfg.obs = sink;
        self
    }

    /// Finish the builder.
    pub fn build(self) -> CampaignConfig {
        self.cfg
    }
}

/// Everything a campaign produces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Unix seconds at simulation time zero.
    pub epoch_unix: u64,
    /// The LBL server's transfer log.
    pub lbl_log: TransferLog,
    /// The ISI server's transfer log.
    pub isi_log: TransferLog,
    /// NWS probe series per pair (empty when probes were disabled).
    pub lbl_probes: Vec<ProbeMeasurement>,
    /// NWS probe series for ISI→ANL.
    pub isi_probes: Vec<ProbeMeasurement>,
    /// Transfers that failed at submit time (should be zero).
    pub submit_errors: usize,
    /// Fault actions scheduled over the campaign (0 on clean runs).
    pub fault_events: usize,
    /// Attempts that failed and were retried under the retry policy.
    pub retries: usize,
    /// Transfers abandoned after exhausting their attempt budget.
    pub failed_transfers: usize,
    /// What the salvage pass kept and quarantined on the LBL log (`None`
    /// unless chaos was enabled).
    pub lbl_salvage: Option<SalvageReport>,
    /// What the salvage pass kept and quarantined on the ISI log.
    pub isi_salvage: Option<SalvageReport>,
    /// Metric snapshot taken from the campaign's [`ObsSink`] after the
    /// run (`None` when the sink was disabled). Seeded-run
    /// deterministic: same seed, same config → byte-identical snapshot
    /// JSON.
    pub metrics: Option<Snapshot>,
}

impl CampaignResult {
    /// The transfer log for a pair.
    pub fn log(&self, pair: Pair) -> &TransferLog {
        match pair {
            Pair::LblAnl => &self.lbl_log,
            Pair::IsiAnl => &self.isi_log,
        }
    }

    /// The probe series for a pair.
    pub fn probes(&self, pair: Pair) -> &[ProbeMeasurement] {
        match pair {
            Pair::LblAnl => &self.lbl_probes,
            Pair::IsiAnl => &self.isi_probes,
        }
    }

    /// The salvage report for a pair (`None` unless chaos was enabled).
    pub fn salvage(&self, pair: Pair) -> Option<&SalvageReport> {
        match pair {
            Pair::LblAnl => self.lbl_salvage.as_ref(),
            Pair::IsiAnl => self.isi_salvage.as_ref(),
        }
    }
}

/// Serialize a log with integrity trailers, damage it with the seeded
/// injector, and decode it back through strict salvage.
fn corrupt_and_salvage(log: &TransferLog, rate: f64, seed: u64) -> (TransferLog, SalvageReport) {
    let doc = log.to_ulm_string_checksummed();
    let (damaged, _chaos) = corrupt_doc(&doc, &ChaosConfig::new(rate, seed));
    salvage_doc(&damaged, &SalvageOptions::strict())
}

struct PairRuntime {
    pair: Pair,
    server: NodeId,
    rng: StdRng,
    outstanding: Option<TransferToken>,
}

/// The campaign driver agent: embeds the transfer manager and one
/// workload loop per pair.
struct CampaignAgent {
    mgr: TransferManager,
    client: NodeId,
    workload: WorkloadConfig,
    pairs: Vec<PairRuntime>,
    submit_errors: usize,
    retries: usize,
    failed_transfers: usize,
}

impl CampaignAgent {
    /// Schedule the pair's next wake-up after `delay`, clamped into the
    /// experiment window.
    fn schedule_pair(&self, ctx: &mut Ctx<'_>, idx: usize, delay: SimDuration) {
        let wake = ctx.now() + delay;
        let wake = self.workload.next_window_start(wake);
        let delay = wake.saturating_since(ctx.now());
        ctx.set_timer(delay, idx as TimerTag);
    }

    fn launch_transfer(&mut self, ctx: &mut Ctx<'_>, idx: usize) {
        let (path, _size) = {
            let p = &mut self.pairs[idx];
            self.workload.draw_file(&mut p.rng)
        };
        let req = TransferRequest {
            client: self.client,
            kind: TransferKind::Get {
                server: self.pairs[idx].server,
                path,
            },
            streams: self.workload.streams,
            tcp_buffer: self.workload.tcp_buffer,
            partial: None,
        };
        match self.mgr.submit(ctx, req) {
            Ok(token) => self.pairs[idx].outstanding = Some(token),
            Err(_) => {
                self.submit_errors += 1;
                let delay = {
                    let p = &mut self.pairs[idx];
                    self.workload.draw_sleep(&mut p.rng)
                };
                self.schedule_pair(ctx, idx, delay);
            }
        }
    }

    /// Drain the manager's recovery notifications: count retries, and
    /// when a transfer is abandoned free its pair's workload slot so the
    /// loop keeps issuing transfers (a dead pair would silently truncate
    /// the log).
    fn drain_transfer_events(&mut self, ctx: &mut Ctx<'_>) {
        for ev in self.mgr.take_events() {
            match ev {
                TransferEvent::RetryScheduled { .. } => self.retries += 1,
                TransferEvent::Failed { token, .. } => {
                    self.failed_transfers += 1;
                    if let Some(idx) = self.pairs.iter().position(|p| p.outstanding == Some(token))
                    {
                        self.pairs[idx].outstanding = None;
                        let delay = {
                            let p = &mut self.pairs[idx];
                            self.workload.draw_sleep(&mut p.rng)
                        };
                        self.schedule_pair(ctx, idx, delay);
                    }
                }
            }
        }
    }
}

impl Agent for CampaignAgent {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for idx in 0..self.pairs.len() {
            let delay = {
                let p = &mut self.pairs[idx];
                self.workload.draw_sleep(&mut p.rng)
            };
            self.schedule_pair(ctx, idx, delay);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: TimerTag) {
        if self.mgr.on_timer(ctx, tag) {
            self.drain_transfer_events(ctx);
            return;
        }
        let idx = tag as usize;
        if idx < self.pairs.len() && self.pairs[idx].outstanding.is_none() {
            self.launch_transfer(ctx, idx);
        }
    }

    fn on_flow_complete(&mut self, ctx: &mut Ctx<'_>, done: FlowDone) {
        if let Some(c) = self.mgr.on_flow_complete(ctx, &done) {
            if let Some(idx) = self
                .pairs
                .iter()
                .position(|p| p.outstanding == Some(c.token))
            {
                self.pairs[idx].outstanding = None;
                let delay = {
                    let p = &mut self.pairs[idx];
                    self.workload.draw_sleep(&mut p.rng)
                };
                self.schedule_pair(ctx, idx, delay);
            }
        }
    }

    fn on_flow_failed(&mut self, ctx: &mut Ctx<'_>, failed: FlowFailed) {
        self.mgr.on_flow_failed(ctx, &failed);
        self.drain_transfer_events(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Run a campaign to completion.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignResult {
    let testbed: Testbed = build_testbed(cfg.seed, false);
    run_campaign_on(cfg, testbed)
}

/// Run a campaign on a pre-built testbed (lets tests pass a quiet one).
pub fn run_campaign_on(cfg: &CampaignConfig, testbed: Testbed) -> CampaignResult {
    let mut mgr = testbed.build_manager(cfg.epoch_unix);
    mgr.set_obs(cfg.obs.clone());
    if let Some(policy) = &cfg.retry {
        mgr.set_retry_policy(policy.clone());
    }
    let Testbed {
        network,
        anl,
        lbl,
        isi,
        ..
    } = testbed;
    let server_of = |pair: Pair| match pair {
        Pair::LblAnl => lbl,
        Pair::IsiAnl => isi,
    };
    let seed_name_of = |pair: Pair| match pair {
        Pair::LblAnl => "workload.lbl-anl",
        Pair::IsiAnl => "workload.isi-anl",
    };

    // The schedule is a pure function of (faults, topology, seed,
    // duration): materialize it before the network moves into the engine.
    let schedule = FaultSchedule::generate(&cfg.faults, network.topology(), cfg.seed, cfg.duration);
    let fault_events = schedule.len();

    let mut engine = Engine::new(network);
    engine.set_obs(cfg.obs.clone());
    engine.inject_faults(&schedule);
    let agent_id = engine.add_agent(Box::new(CampaignAgent {
        mgr,
        client: anl,
        workload: cfg.workload.clone(),
        pairs: cfg
            .pairs
            .iter()
            .map(|&pair| PairRuntime {
                pair,
                server: server_of(pair),
                rng: cfg.seed.derive(seed_name_of(pair)),
                outstanding: None,
            })
            .collect(),
        submit_errors: 0,
        retries: 0,
        failed_transfers: 0,
    }));

    let probe_ids: Vec<(Pair, _)> = if cfg.probes {
        cfg.pairs
            .iter()
            .map(|&pair| {
                (
                    pair,
                    engine.add_agent(Box::new(ProbeAgent::new(ProbeConfig::paper_default(
                        server_of(pair),
                        anl,
                    )))),
                )
            })
            .collect()
    } else {
        Vec::new()
    };

    // The campaign span brackets the whole simulated horizon; transfer
    // and engine spans emitted during the run nest inside it.
    cfg.obs.span_enter(names::CAMPAIGN_RUN, 0);
    engine.run_until(SimTime::ZERO + cfg.duration);
    cfg.obs
        .span_exit(names::CAMPAIGN_RUN, cfg.duration.as_micros());

    let probes_of = |want: Pair| -> Vec<ProbeMeasurement> {
        probe_ids
            .iter()
            .find(|&&(pair, _)| pair == want)
            .map(|&(_, id)| {
                engine
                    .agent::<ProbeAgent>(id)
                    .expect("probe agent")
                    .measurements()
                    .to_vec()
            })
            .unwrap_or_default()
    };
    let (lbl_probes, isi_probes) = (probes_of(Pair::LblAnl), probes_of(Pair::IsiAnl));

    let agent = engine
        .agent::<CampaignAgent>(agent_id)
        .expect("campaign agent");
    debug_assert!(agent
        .pairs
        .iter()
        .map(|p| p.pair)
        .eq(cfg.pairs.iter().copied()));
    let mut lbl_log = agent.mgr.server_log(lbl).cloned().unwrap_or_default();
    let mut isi_log = agent.mgr.server_log(isi).cloned().unwrap_or_default();
    let (mut lbl_salvage, mut isi_salvage) = (None, None);
    if let Some(rate) = cfg.chaos {
        // Damage is decorrelated per pair but still a pure function of the
        // campaign seed, so chaotic campaigns replay byte for byte.
        let (log, report) = corrupt_and_salvage(&lbl_log, rate, cfg.seed.derive_seed("chaos.lbl"));
        lbl_log = log;
        lbl_salvage = Some(report);
        let (log, report) = corrupt_and_salvage(&isi_log, rate, cfg.seed.derive_seed("chaos.isi"));
        isi_log = log;
        isi_salvage = Some(report);
    }
    if cfg.obs.is_enabled() {
        cfg.obs.inc_by(
            names::CAMPAIGN_TRANSFERS,
            (lbl_log.len() + isi_log.len()) as u64,
        );
        cfg.obs
            .gauge(names::CAMPAIGN_FAULT_EVENTS, fault_events as f64);
        for report in [&lbl_salvage, &isi_salvage].into_iter().flatten() {
            cfg.obs
                .inc_by(names::CAMPAIGN_SALVAGE_KEPT, report.kept as u64);
            cfg.obs.inc_by(
                names::CAMPAIGN_SALVAGE_QUARANTINED,
                report.quarantined.len() as u64,
            );
        }
    }
    let metrics = cfg.obs.is_enabled().then(|| cfg.obs.snapshot());
    CampaignResult {
        epoch_unix: cfg.epoch_unix,
        lbl_log,
        isi_log,
        lbl_probes,
        isi_probes,
        submit_errors: agent.submit_errors,
        fault_events,
        retries: agent.retries,
        failed_transfers: agent.failed_transfers,
        lbl_salvage,
        isi_salvage,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wanpred_predict::SizeClass;

    fn short_config(days: u64, probes: bool) -> CampaignConfig {
        CampaignConfig {
            seed: MasterSeed(42),
            epoch_unix: 996_642_000,
            duration: SimDuration::from_days(days),
            workload: WorkloadConfig::default(),
            probes,
            faults: FaultConfig::none(),
            retry: None,
            chaos: None,
            pairs: Pair::ALL.to_vec(),
            obs: ObsSink::disabled(),
        }
    }

    fn short_campaign(days: u64, probes: bool) -> CampaignResult {
        run_campaign(&short_config(days, probes))
    }

    /// An aggressive fault profile so even short test campaigns see kills
    /// land on in-flight transfers.
    fn hostile_faults() -> FaultConfig {
        FaultConfig {
            kill_mean_interarrival: SimDuration::from_mins(40),
            ..FaultConfig::wan_default()
        }
    }

    #[test]
    fn two_day_campaign_produces_windowed_transfers() {
        let r = short_campaign(2, false);
        assert_eq!(r.submit_errors, 0);
        let n_lbl = r.lbl_log.len();
        let n_isi = r.isi_log.len();
        // ~28-ish per pair per day; accept a broad band.
        assert!((20..120).contains(&n_lbl), "lbl count {n_lbl}");
        assert!((20..120).contains(&n_isi), "isi count {n_isi}");
        // Every transfer starts inside the 6pm-8am window.
        for rec in r.lbl_log.records().iter().chain(r.isi_log.records()) {
            let local = rec.start_unix - r.epoch_unix;
            let hour = (local / 3_600) % 24;
            assert!(
                !(8..18).contains(&hour),
                "transfer at local hour {hour} outside the window"
            );
            assert!(rec.validate().is_ok());
        }
    }

    #[test]
    fn bandwidths_in_papers_range_and_size_correlated() {
        let r = short_campaign(4, false);
        let mut small = Vec::new();
        let mut huge = Vec::new();
        for rec in r.lbl_log.records().iter().chain(r.isi_log.records()) {
            let mbs = rec.bandwidth_mbs();
            assert!(
                (0.2..13.0).contains(&mbs),
                "bandwidth {mbs} MB/s out of plausible range ({} bytes)",
                rec.file_size,
            );
            match SizeClass::of_bytes(rec.file_size) {
                SizeClass::C10MB => small.push(mbs),
                SizeClass::C1GB => huge.push(mbs),
                _ => {}
            }
        }
        assert!(!small.is_empty() && !huge.is_empty());
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            avg(&huge) > 1.5 * avg(&small),
            "1GB-class {} vs 10MB-class {}",
            avg(&huge),
            avg(&small)
        );
    }

    #[test]
    fn probes_run_continuously() {
        let r = short_campaign(1, true);
        // Every 5 minutes all day: ~288 probes.
        assert!(
            (250..300).contains(&r.lbl_probes.len()),
            "{}",
            r.lbl_probes.len()
        );
        for p in &r.lbl_probes {
            assert!(p.bandwidth_mbs() < 0.3, "{}", p.bandwidth_mbs());
        }
    }

    #[test]
    fn campaigns_are_reproducible() {
        let a = short_campaign(1, false);
        let b = short_campaign(1, false);
        assert_eq!(a.lbl_log, b.lbl_log);
        assert_eq!(a.isi_log, b.isi_log);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg_a = CampaignConfig {
            seed: MasterSeed(1),
            ..short_config(1, false)
        };
        let cfg_b = CampaignConfig {
            seed: MasterSeed(2),
            ..cfg_a.clone()
        };
        let a = run_campaign(&cfg_a);
        let b = run_campaign(&cfg_b);
        assert_ne!(a.lbl_log, b.lbl_log);
    }

    #[test]
    fn clean_campaign_reports_no_fault_activity() {
        let r = short_campaign(1, false);
        assert_eq!(r.fault_events, 0);
        assert_eq!(r.retries, 0);
        assert_eq!(r.failed_transfers, 0);
    }

    #[test]
    fn faulty_campaign_retries_and_stays_deterministic() {
        let cfg = CampaignConfig {
            faults: hostile_faults(),
            retry: Some(RetryPolicy::wan_default()),
            ..short_config(3, false)
        };
        let a = run_campaign(&cfg);
        let b = run_campaign(&cfg);
        // Same seed → byte-identical logs and identical recovery counts:
        // the fault schedule, backoff jitter and resumed legs are all pure
        // functions of the seed.
        assert_eq!(a.lbl_log, b.lbl_log);
        assert_eq!(a.isi_log, b.isi_log);
        assert_eq!(a.retries, b.retries);
        assert_eq!(a.failed_transfers, b.failed_transfers);
        assert!(a.fault_events > 0);
        assert!(a.retries > 0, "no kill landed on an in-flight transfer");
        // Retried-and-recovered transfers still produce valid ULM records
        // whose total_time_s spans submit → final completion (≥ end-start
        // by construction, and every record validates).
        for rec in a.lbl_log.records().iter().chain(a.isi_log.records()) {
            assert!(rec.validate().is_ok());
        }
        // The faulty log must actually differ from the clean one.
        let clean = run_campaign(&short_config(3, false));
        assert_ne!(clean.lbl_log, a.lbl_log);
    }

    #[test]
    fn faulty_campaign_without_retry_drops_transfers() {
        let cfg = CampaignConfig {
            faults: hostile_faults(),
            retry: None,
            ..short_config(3, false)
        };
        let r = run_campaign(&cfg);
        // First reset abandons the transfer; the workload loop must keep
        // going afterwards (the pair slot is freed on failure).
        assert!(r.failed_transfers > 0);
        assert_eq!(r.retries, 0);
        assert!(r.lbl_log.len() + r.isi_log.len() > 20);
    }

    #[test]
    fn chaotic_campaign_salvages_and_stays_deterministic() {
        let cfg = short_config(3, false).with_chaos(0.3);
        let a = run_campaign(&cfg);
        let b = run_campaign(&cfg);
        // Same seed → same damage → byte-identical salvaged logs and
        // identical reports.
        assert_eq!(a.lbl_log, b.lbl_log);
        assert_eq!(a.isi_log, b.isi_log);
        assert_eq!(a.lbl_salvage, b.lbl_salvage);
        assert_eq!(a.isi_salvage, b.isi_salvage);
        // At a 30% rate damage certainly landed, and the report's kept
        // count is exactly what the log now holds.
        let s = a.salvage(Pair::LblAnl).unwrap();
        assert!(!s.is_clean());
        assert_eq!(s.kept, a.lbl_log.len());
        assert!(s.recovery_fraction() > 0.4, "{}", s.recovery_fraction());
        // Every salvaged record is one the clean campaign produced, in
        // order: corruption can remove records but never invent them.
        let clean = run_campaign(&short_config(3, false));
        let mut it = clean.lbl_log.records().iter();
        for r in a.lbl_log.records() {
            assert!(it.any(|c| c == r), "salvaged record absent from clean log");
        }
        assert!(a.lbl_log.len() <= clean.lbl_log.len());
    }

    #[test]
    fn zero_rate_chaos_is_lossless() {
        let chaotic = run_campaign(&short_config(1, false).with_chaos(0.0));
        let clean = run_campaign(&short_config(1, false));
        assert_eq!(chaotic.lbl_log, clean.lbl_log);
        assert_eq!(chaotic.isi_log, clean.isi_log);
        let s = chaotic.salvage(Pair::LblAnl).unwrap();
        assert!(s.is_clean());
        assert_eq!(s.kept, clean.lbl_log.len());
        assert!(clean.salvage(Pair::LblAnl).is_none());
    }

    #[test]
    fn august_and_december_presets() {
        let aug = CampaignConfig::august(7);
        let dec = CampaignConfig::december(7);
        assert_eq!(aug.epoch_unix, 996_642_000);
        assert_eq!(dec.epoch_unix, 1_007_186_400);
        assert_ne!(aug.seed.0, dec.seed.0, "campaign seeds must decorrelate");
    }

    #[test]
    fn builder_matches_presets() {
        // The presets are now thin builder wrappers; the builder's defaults
        // must reproduce them field for field.
        let aug = CampaignConfig::builder(7).build();
        assert_eq!(aug.seed, CampaignConfig::august(7).seed);
        assert_eq!(aug.epoch_unix, CampaignConfig::august(7).epoch_unix);
        assert_eq!(aug.duration, CampaignConfig::august(7).duration);
        let dec = CampaignConfig::builder(7).december().build();
        assert_eq!(dec.seed, CampaignConfig::december(7).seed);
        assert_eq!(dec.epoch_unix, CampaignConfig::december(7).epoch_unix);
    }

    #[test]
    fn builder_campaign_equals_struct_campaign() {
        let built = run_campaign(
            &CampaignConfig::builder(42)
                .duration_days(1)
                .probes(false)
                .build(),
        );
        let structed = run_campaign(&short_config(1, false));
        assert_eq!(built.lbl_log, structed.lbl_log);
        assert_eq!(built.isi_log, structed.isi_log);
    }

    #[test]
    fn pair_set_restricts_workload_and_probes() {
        let cfg = CampaignConfig::builder(42)
            .duration_days(1)
            .probes(true)
            .pair_set(&[Pair::LblAnl])
            .build();
        let r = run_campaign(&cfg);
        assert!(r.lbl_log.len() > 5);
        assert_eq!(r.isi_log.len(), 0, "unselected pair must stay silent");
        assert!(!r.lbl_probes.is_empty());
        assert!(r.isi_probes.is_empty());
    }

    #[test]
    fn disabled_obs_yields_no_metrics() {
        let r = short_campaign(1, false);
        assert!(r.metrics.is_none());
    }

    #[test]
    fn enabled_obs_snapshot_counts_transfers() {
        let cfg = CampaignConfig {
            obs: ObsSink::enabled(),
            ..short_config(1, false)
        };
        let r = run_campaign(&cfg);
        let snap = r.metrics.as_ref().expect("obs enabled");
        assert_eq!(
            snap.counter(names::CAMPAIGN_TRANSFERS),
            (r.lbl_log.len() + r.isi_log.len()) as u64
        );
        // The campaign span brackets the run exactly once, for the whole
        // simulated horizon.
        let span = snap.histogram(names::CAMPAIGN_RUN).expect("campaign span");
        assert_eq!(span.count, 1);
        assert_eq!(span.sum, cfg.duration.as_micros());
        // Engine and transfer spans fired inside it.
        assert!(snap.counter(names::SIMNET_ENGINE_EVENTS) > 0);
    }

    #[test]
    fn obs_campaign_log_identical_to_disabled() {
        // Observability must be read-only: enabling the sink cannot perturb
        // the simulation.
        let with_obs = run_campaign(&CampaignConfig {
            obs: ObsSink::enabled(),
            ..short_config(1, false)
        });
        let without = run_campaign(&short_config(1, false));
        assert_eq!(with_obs.lbl_log, without.lbl_log);
        assert_eq!(with_obs.isi_log, without.isi_log);
    }
}
