//! Per-figure data computation: everything the paper's evaluation section
//! reports, derived from campaign results.
//!
//! Each `figXX_*` function returns plain data structures; the rendering
//! to text tables lives in [`crate::report`], and the runnable binaries
//! live in `wanpred-bench`.

use serde::{Deserialize, Serialize};
use wanpred_logfmt::Operation;
use wanpred_predict::prelude::*;

use crate::campaign::{CampaignResult, Pair};

/// Extract the prediction-ready observation series for a pair (read
/// transfers by the ANL client, time-ordered).
pub fn observation_series(result: &CampaignResult, pair: Pair) -> Vec<Observation> {
    let mut obs: Vec<Observation> = result
        .log(pair)
        .records()
        .iter()
        .filter(|r| r.operation == Operation::Read)
        .map(Observation::from_record)
        .collect();
    sort_by_time(&mut obs);
    obs
}

/// Figures 1–2: the GridFTP and NWS bandwidth series for one pair, in
/// MB/s against Unix time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig0102Series {
    /// Pair label.
    pub pair: String,
    /// `(unix, MB/s)` for every GridFTP transfer.
    pub gridftp: Vec<(u64, f64)>,
    /// `(unix, MB/s)` for every NWS probe.
    pub nws: Vec<(u64, f64)>,
}

/// Compute the Figures 1–2 series.
pub fn fig01_02(result: &CampaignResult, pair: Pair) -> Fig0102Series {
    let gridftp = result
        .log(pair)
        .records()
        .iter()
        .map(|r| (r.start_unix, r.bandwidth_mbs()))
        .collect();
    let nws = result
        .probes(pair)
        .iter()
        .map(|p| (result.epoch_unix + p.at.as_secs(), p.bandwidth_mbs()))
        .collect();
    Fig0102Series {
        pair: pair.label().to_string(),
        gridftp,
        nws,
    }
}

/// Figure 7: transfer counts overall and per size class.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fig07Counts {
    /// Pair label.
    pub pair: String,
    /// Total transfers.
    pub all: usize,
    /// Counts per class, in [`SizeClass::ALL`] order.
    pub per_class: [usize; 4],
}

/// Compute Figure 7's counts for one pair.
pub fn fig07(result: &CampaignResult, pair: Pair) -> Fig07Counts {
    let obs = observation_series(result, pair);
    let mut per_class = [0usize; 4];
    for o in &obs {
        let idx = SizeClass::ALL
            .iter()
            .position(|c| *c == SizeClass::of_bytes(o.file_size))
            .expect("classes partition sizes");
        per_class[idx] += 1;
    }
    Fig07Counts {
        pair: pair.label().to_string(),
        all: obs.len(),
        per_class,
    }
}

/// One predictor's error in one figure cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErrorCell {
    /// Predictor name (base name, no classification suffix).
    pub predictor: String,
    /// Mean absolute percentage error, if the predictor answered.
    pub mape: Option<f64>,
    /// Number of answered targets.
    pub answered: usize,
}

/// Figures 8–11: per-class percent error of the 15 predictors (evaluated
/// with file-size classification, which is how the paper reports its
/// per-class figures).
pub fn fig08_11(result: &CampaignResult, pair: Pair, class: SizeClass) -> Vec<ErrorCell> {
    let obs = observation_series(result, pair);
    let eval = Evaluation::builder().suite(paper_suite(true)).build();
    let reports = eval.run(&obs);
    reports
        .iter()
        .zip(eval.predictors())
        .map(|(r, p)| ErrorCell {
            predictor: p.base_name().to_string(),
            mape: r.mape_for_class(class),
            answered: r.count_for_class(class),
        })
        .collect()
}

/// Figures 12–13: classification benefit — each base predictor's MAPE
/// without vs with file-size classification, over all targets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassificationCell {
    /// Base predictor name.
    pub predictor: String,
    /// MAPE using the whole history (context-insensitive).
    pub unclassified: Option<f64>,
    /// MAPE using only same-class history (context-sensitive).
    pub classified: Option<f64>,
}

/// Compute Figures 12–13 for one pair.
pub fn fig12_13(result: &CampaignResult, pair: Pair) -> Vec<ClassificationCell> {
    let obs = observation_series(result, pair);
    let unclassified = Evaluation::builder()
        .suite(paper_suite(false))
        .build()
        .run(&obs);
    let classified_eval = Evaluation::builder().suite(paper_suite(true)).build();
    let classified = classified_eval.run(&obs);
    unclassified
        .iter()
        .zip(classified.iter())
        .zip(classified_eval.predictors())
        .map(|((u, c), p)| ClassificationCell {
            predictor: p.base_name().to_string(),
            unclassified: u.mape(),
            classified: c.mape(),
        })
        .collect()
}

/// Figures 14–21: relative best/worst percentages per predictor for one
/// pair and class (classified suite, as in the per-class figures).
pub fn fig14_21(result: &CampaignResult, pair: Pair, class: SizeClass) -> Vec<RelativeReport> {
    let obs = observation_series(result, pair);
    let suite = paper_suite(true);
    relative_performance(&obs, &suite, EvalOptions::default(), Some(class))
}

/// The §6.2 headline check: the worst per-class MAPE across predictors
/// and the average classification benefit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SummaryStats {
    /// Pair label.
    pub pair: String,
    /// Worst per-class MAPE over predictors, classes >= 100 MB.
    pub worst_large_class_mape: f64,
    /// Worst overall MAPE over predictors (all classes).
    pub worst_overall_mape: f64,
    /// Mean over predictors of (unclassified - classified) MAPE, in
    /// percentage points.
    pub mean_classification_benefit: f64,
}

/// Compute the summary.
pub fn summary(result: &CampaignResult, pair: Pair) -> SummaryStats {
    let mut worst_large: f64 = 0.0;
    for class in [SizeClass::C100MB, SizeClass::C500MB, SizeClass::C1GB] {
        for cell in fig08_11(result, pair, class) {
            if let Some(m) = cell.mape {
                worst_large = worst_large.max(m);
            }
        }
    }
    let cls = fig12_13(result, pair);
    let mut worst_overall: f64 = 0.0;
    let mut benefit_sum = 0.0;
    let mut benefit_n = 0usize;
    for c in &cls {
        if let (Some(u), Some(cl)) = (c.unclassified, c.classified) {
            worst_overall = worst_overall.max(u).max(cl);
            benefit_sum += u - cl;
            benefit_n += 1;
        }
    }
    SummaryStats {
        pair: pair.label().to_string(),
        worst_large_class_mape: worst_large,
        worst_overall_mape: worst_overall,
        mean_classification_benefit: if benefit_n > 0 {
            benefit_sum / benefit_n as f64
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, CampaignConfig};
    use crate::workload::WorkloadConfig;
    use wanpred_simnet::rng::MasterSeed;
    use wanpred_simnet::time::SimDuration;

    fn campaign(days: u64) -> CampaignResult {
        run_campaign(&CampaignConfig {
            seed: MasterSeed(2024),
            duration: SimDuration::from_days(days),
            workload: WorkloadConfig::default(),
            probes: true,
            ..CampaignConfig::august(2024)
        })
    }

    #[test]
    fn fig01_02_series_shapes() {
        let r = campaign(2);
        for pair in Pair::ALL {
            let s = fig01_02(&r, pair);
            assert!(!s.gridftp.is_empty());
            assert!(!s.nws.is_empty());
            // NWS probes dense and slow; GridFTP sparse and fast.
            assert!(s.nws.len() > 4 * s.gridftp.len());
            let nws_max = s.nws.iter().map(|&(_, v)| v).fold(0.0, f64::max);
            let ftp_mean = s.gridftp.iter().map(|&(_, v)| v).sum::<f64>() / s.gridftp.len() as f64;
            assert!(nws_max < 0.3, "nws max {nws_max}");
            assert!(ftp_mean > 1.0, "gridftp mean {ftp_mean}");
        }
    }

    #[test]
    fn fig07_counts_partition() {
        let r = campaign(2);
        for pair in Pair::ALL {
            let c = fig07(&r, pair);
            assert_eq!(c.per_class.iter().sum::<usize>(), c.all);
            assert!(c.all > 20);
        }
    }

    #[test]
    fn fig08_11_has_fifteen_cells() {
        let r = campaign(3);
        let cells = fig08_11(&r, Pair::LblAnl, SizeClass::C10MB);
        assert_eq!(cells.len(), 15);
        assert_eq!(cells[0].predictor, "AVG");
        // The small class is the most common; predictors should answer.
        assert!(cells.iter().any(|c| c.mape.is_some()));
    }

    #[test]
    fn fig12_13_pairs_base_predictors() {
        let r = campaign(3);
        let cells = fig12_13(&r, Pair::IsiAnl);
        assert_eq!(cells.len(), 15);
        for c in &cells {
            assert!(!c.predictor.ends_with("+C"));
        }
    }

    #[test]
    fn fig14_21_reports_for_class() {
        let r = campaign(3);
        let rel = fig14_21(&r, Pair::LblAnl, SizeClass::C10MB);
        assert_eq!(rel.len(), 15);
        if rel[0].targets > 0 {
            let best_sum: f64 = rel.iter().map(|x| x.best_pct).sum();
            assert!(best_sum >= 100.0 - 1e-6);
        }
    }

    #[test]
    fn summary_is_finite() {
        let r = campaign(3);
        let s = summary(&r, Pair::LblAnl);
        assert!(s.worst_overall_mape.is_finite());
        assert!(s.worst_large_class_mape <= s.worst_overall_mape + 1e9);
    }
}
