//! # wanpred-testbed
//!
//! The reproduction harness: the simulated ANL–ISI–LBL testbed
//! ([`sites`]), the paper's controlled workload generator ([`workload`]),
//! two-week measurement campaigns with concurrent NWS probes
//! ([`campaign`]), per-figure data computation ([`figures`]) and text /
//! CSV rendering ([`report`]).
//!
//! The `wanpred-bench` crate's binaries are thin wrappers over these
//! functions — everything needed to regenerate the paper's tables and
//! figures lives here, callable from library code and tests.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod campaign;
pub mod figures;
pub mod report;
pub mod serving;
pub mod sites;
pub mod workload;

pub use campaign::{
    run_campaign, run_campaign_on, CampaignBuilder, CampaignConfig, CampaignResult, CoallocSummary,
    Pair,
};
pub use figures::{
    fig01_02, fig07, fig08_11, fig12_13, fig14_21, observation_series, summary, ErrorCell,
    Fig0102Series, Fig07Counts, SummaryStats,
};
pub use report::{fmt_mape, fmt_pct, Table};
pub use serving::{
    serving_filters, serving_now_unix, serving_sites, ServingSite, SERVING_CLIENTS,
    SERVING_EPOCH_UNIX,
};
pub use sites::{
    build_testbed, paper_sites, quiet_load_config, wan_load_config, SiteSpec, Testbed,
};
pub use workload::WorkloadConfig;
