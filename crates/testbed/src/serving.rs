//! Deterministic fixtures for the serving-layer load tests and benches:
//! synthetic per-site transfer histories and a representative inquiry
//! filter pool, all derived from a single seed with no wall clock or
//! ambient randomness, so open-loop load runs replay byte-identically.
//!
//! The sites are synthetic rather than campaign-derived on purpose — a
//! serving benchmark wants dozens of registrants with differentiated
//! histories in milliseconds, not a two-week simulated campaign per
//! site. The log schema and value ranges match the paper's testbed
//! (100 KB–1 GB files, multi-MB/s wide-area bandwidths, 8 parallel
//! streams, 1 MB TCP buffers).

use wanpred_logfmt::{Operation, TransferLog, TransferRecordBuilder};

/// Unix epoch the synthetic histories start at. Inquiries against these
/// fixtures should use `now_unix` at or after the end of the history:
/// `SERVING_EPOCH_UNIX + records_per_site * SERVING_RECORD_SPACING_SECS`.
pub const SERVING_EPOCH_UNIX: u64 = 1_000_000;

/// Seconds between consecutive transfers in a site's history.
pub const SERVING_RECORD_SPACING_SECS: u64 = 600;

/// The client population appearing in the synthetic logs (the paper's
/// ANL, LBL and ISI testbed addresses).
pub const SERVING_CLIENTS: [&str; 3] = ["140.221.65.69", "131.243.2.11", "128.9.160.11"];

/// One synthetic registrant: a GridFTP server name/address and the
/// transfer history its information provider digests.
#[derive(Debug, Clone)]
pub struct ServingSite {
    /// Server host name (`siteNN.grid.test`).
    pub host: String,
    /// Server address.
    pub address: String,
    /// The site's deterministic transfer history.
    pub log: TransferLog,
}

/// SplitMix64 — the fixture's only source of variety, keyed on the seed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Build `sites` synthetic registrants, each with `records_per_site`
/// transfer records. Same arguments, same sites — byte for byte.
pub fn serving_sites(sites: usize, records_per_site: usize, seed: u64) -> Vec<ServingSite> {
    let file_sizes: [u64; 5] = [
        1_024_000,     // 1 MB class
        10_240_000,    // 10 MB
        102_400_000,   // 100 MB
        512_000_000,   // 500 MB
        1_024_000_000, // 1 GB
    ];
    (0..sites)
        .map(|s| {
            let host = format!("site{s:02}.grid.test");
            let address = format!("10.0.{}.{}", s / 250, s % 250 + 1);
            // Per-site base bandwidth in 1–10 MB/s, the paper's wide-area
            // GridFTP range.
            let site_stream = splitmix64(seed ^ (s as u64).wrapping_mul(0x51ed_270b));
            let base_kbs = 1_000.0 + (site_stream % 9_000) as f64;
            let mut log = TransferLog::new();
            for i in 0..records_per_site as u64 {
                let h = splitmix64(site_stream ^ i.wrapping_mul(0x2545_f491_4f6c_dd1d));
                let client = SERVING_CLIENTS[(h % 3) as usize];
                let size = file_sizes[((h >> 8) % 5) as usize];
                // ±20% per-transfer jitter around the site's base rate.
                let jitter = 0.8 + ((h >> 16) % 1_000) as f64 / 2_500.0;
                let kbs = base_kbs * jitter;
                let secs = size as f64 / (kbs * 1_000.0);
                let start = SERVING_EPOCH_UNIX + i * SERVING_RECORD_SPACING_SECS;
                log.append(
                    TransferRecordBuilder::new()
                        .source(client)
                        .host(&host)
                        .file_name("/home/ftp/vazhkuda/f")
                        .file_size(size)
                        .volume("/home/ftp")
                        .start_unix(start)
                        .end_unix(start + secs.ceil() as u64)
                        .total_time_s(secs)
                        .streams(8)
                        .tcp_buffer(1_000_000)
                        .operation(if h % 11 == 0 {
                            Operation::Write
                        } else {
                            Operation::Read
                        })
                        .build()
                        .expect("all fields set"),
                );
            }
            ServingSite { host, address, log }
        })
        .collect()
}

/// The inquiry mix an open-loop run draws from: the broad scan, the
/// broker's per-client lookups, a bandwidth-threshold scan, a couple of
/// host-targeted inquiries and the staleness presence probe that the
/// single-generation regression guards.
pub fn serving_filters(sites: &[ServingSite]) -> Vec<String> {
    let mut pool = vec!["(objectclass=GridFTPPerfInfo)".to_string()];
    for client in SERVING_CLIENTS {
        pool.push(format!("(&(objectclass=GridFTPPerfInfo)(cn={client}))"));
    }
    pool.push("(&(objectclass=GridFTPPerfInfo)(avgrdbandwidth>=3000))".to_string());
    for site in sites.iter().take(2) {
        pool.push(format!(
            "(&(objectclass=GridFTPPerfInfo)(hostname={}))",
            site.host
        ));
    }
    pool.push("(stalenesssecs=*)".to_string());
    pool
}

/// The natural inquiry time for fixtures built with `records_per_site`
/// records: just past the end of every site's history.
pub fn serving_now_unix(records_per_site: usize) -> u64 {
    SERVING_EPOCH_UNIX + records_per_site as u64 * SERVING_RECORD_SPACING_SECS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_sites_replay_byte_identically() {
        let a = serving_sites(5, 40, 9);
        let b = serving_sites(5, 40, 9);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.host, y.host);
            assert_eq!(x.address, y.address);
            assert_eq!(x.log.to_ulm_string(), y.log.to_ulm_string());
        }
        let c = serving_sites(5, 40, 10);
        assert_ne!(a[0].log.to_ulm_string(), c[0].log.to_ulm_string());
    }

    #[test]
    fn sites_are_differentiated_and_plausible() {
        let sites = serving_sites(8, 30, 1);
        assert_eq!(sites.len(), 8);
        let mean_kbs = |s: &ServingSite| {
            let (sum, n) = s.log.records().iter().fold((0.0, 0usize), |(sum, n), r| {
                (sum + r.file_size as f64 / r.total_time_s / 1_000.0, n + 1)
            });
            sum / n as f64
        };
        let rates: Vec<f64> = sites.iter().map(mean_kbs).collect();
        for r in &rates {
            assert!((500.0..20_000.0).contains(r), "wide-area KB/s: {r}");
        }
        let min = rates.iter().copied().fold(f64::INFINITY, f64::min);
        let max = rates.iter().copied().fold(0.0f64, f64::max);
        assert!(max / min > 1.5, "sites differ: {min:.0}..{max:.0}");
    }

    #[test]
    fn filter_pool_covers_the_serving_query_mix() {
        let sites = serving_sites(3, 10, 2);
        let pool = serving_filters(&sites);
        assert!(pool.iter().any(|f| f == "(objectclass=GridFTPPerfInfo)"));
        assert!(pool.iter().any(|f| f.contains("cn=140.221.65.69")));
        assert!(pool.iter().any(|f| f.contains("hostname=site00.grid.test")));
        assert!(pool.iter().any(|f| f == "(stalenesssecs=*)"));
        assert!(serving_now_unix(10) > SERVING_EPOCH_UNIX);
    }
}
