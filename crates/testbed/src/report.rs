//! Plain-text table rendering and CSV export for the figure binaries.

use std::fmt::Write as _;

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table.
    pub fn new(title: impl Into<String>) -> Self {
        Table {
            title: title.into(),
            ..Table::default()
        }
    }

    /// Set the column headers.
    pub fn headers<S: Into<String>>(mut self, hs: impl IntoIterator<Item = S>) -> Self {
        self.headers = hs.into_iter().map(Into::into).collect();
        self
    }

    /// Append a row (padded/truncated to the header count).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.headers.len().max(r.len()), String::new());
        self.rows.push(r);
        self
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Render as aligned text.
    pub fn render(&self) -> String {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let c = cells.get(i).unwrap_or(&empty);
                let _ = write!(s, "{c:>w$}  ", w = *w);
            }
            s.trim_end().to_string()
        };
        if !self.headers.is_empty() {
            let _ = writeln!(out, "{}", line(&self.headers, &widths));
            let _ = writeln!(
                out,
                "{}",
                widths
                    .iter()
                    .map(|w| "-".repeat(*w))
                    .collect::<Vec<_>>()
                    .join("  ")
            );
        }
        for r in &self.rows {
            let _ = writeln!(out, "{}", line(r, &widths));
        }
        out
    }

    /// Render as CSV (RFC-4180-ish quoting).
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        if !self.headers.is_empty() {
            let _ = writeln!(
                out,
                "{}",
                self.headers
                    .iter()
                    .map(|h| field(h))
                    .collect::<Vec<_>>()
                    .join(",")
            );
        }
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                r.iter().map(|c| field(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Format an optional MAPE as the figures print it.
pub fn fmt_mape(m: Option<f64>) -> String {
    match m {
        Some(v) => format!("{v:.1}"),
        None => "-".to_string(),
    }
}

/// Format a percentage.
pub fn fmt_pct(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new("demo").headers(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["beta-long", "22"]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let s = table().render();
        assert!(s.contains("== demo =="));
        let lines: Vec<&str> = s.lines().collect();
        // Title, header, separator, two rows.
        assert_eq!(lines.len(), 5);
        assert!(lines[2].starts_with('-'));
        // Right-aligned: "alpha" padded to "beta-long" width.
        assert!(lines[3].contains("    alpha"));
    }

    #[test]
    fn csv_quotes_when_needed() {
        let mut t = Table::new("").headers(["a", "b"]);
        t.row(["x,y", "he said \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new("").headers(["a", "b", "c"]);
        t.row(["only"]);
        let s = t.render();
        assert!(s.contains("only"));
        assert_eq!(t.row_count(), 1);
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_mape(Some(12.345)), "12.3");
        assert_eq!(fmt_mape(None), "-");
        assert_eq!(fmt_pct(50.0), "50.0");
    }
}
