//! Calibration check: run the August campaign and print the statistics
//! the paper reports, so the testbed's tuning can be eyeballed against
//! §6.1 / Figures 1-2 / Figure 7.

use wanpred_predict::SizeClass;
use wanpred_testbed::{fig07, fig08_11, fig12_13, run_campaign, summary, CampaignConfig, Pair};

fn main() {
    let cfg = CampaignConfig::august(42);
    let start = std::time::Instant::now();
    let r = run_campaign(&cfg);
    eprintln!("campaign simulated in {:.2?}", start.elapsed());

    for pair in Pair::ALL {
        let counts = fig07(&r, pair);
        println!(
            "{}: all={} per-class={:?} (paper: ~350-450 total)",
            counts.pair, counts.all, counts.per_class
        );
        let log = r.log(pair);
        let bws: Vec<f64> = log.records().iter().map(|x| x.bandwidth_mbs()).collect();
        let min = bws.iter().copied().fold(f64::INFINITY, f64::min);
        let max = bws.iter().copied().fold(0.0f64, f64::max);
        println!(
            "  gridftp bandwidth: {:.2}..{:.2} MB/s (paper: 1.5..10.2)",
            min, max
        );
        let probes = r.probes(pair);
        let pmax = probes
            .iter()
            .map(|p| p.bandwidth_mbs())
            .fold(0.0f64, f64::max);
        println!(
            "  nws probes: {} samples, max {:.3} MB/s (paper: <0.3)",
            probes.len(),
            pmax
        );
        let s = summary(&r, pair);
        println!(
            "  worst large-class MAPE {:.1}% (paper: ~25%), worst overall {:.1}%, classification benefit {:.1} points",
            s.worst_large_class_mape, s.worst_overall_mape, s.mean_classification_benefit
        );
        for class in SizeClass::ALL {
            let cells = fig08_11(&r, pair, class);
            let avg: f64 = {
                let ms: Vec<f64> = cells.iter().filter_map(|c| c.mape).collect();
                if ms.is_empty() {
                    f64::NAN
                } else {
                    ms.iter().sum::<f64>() / ms.len() as f64
                }
            };
            println!(
                "  class {:>5}: mean-over-predictors MAPE {:.1}%",
                class.label(),
                avg
            );
        }
        let cls = fig12_13(&r, pair);
        let improved = cls
            .iter()
            .filter(|c| matches!((c.unclassified, c.classified), (Some(u), Some(x)) if x < u))
            .count();
        println!(
            "  classification improves {}/{} predictors",
            improved,
            cls.len()
        );
    }
}
